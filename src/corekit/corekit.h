// Umbrella header: the full corekit public API.
//
// corekit reproduces "Finding the Best k in Core Decomposition: A Time and
// Space Optimal Solution" (ICDE 2020).  Typical usage:
//
//   #include "corekit/corekit.h"
//
//   corekit::Graph g = corekit::ReadSnapEdgeList("graph.txt").value();
//   auto cores = corekit::ComputeCoreDecomposition(g);
//   corekit::OrderedGraph ordered(g, cores);
//   auto profile =
//       corekit::FindBestCoreSet(ordered, corekit::Metric::kAverageDegree);
//   // profile.best_k, profile.scores[k], profile.primaries[k] ...
//
// See README.md for the architecture overview and examples/ for runnable
// programs.

#pragma once

#include "corekit/apps/anomaly_detection.h"
#include "corekit/apps/community_search.h"
#include "corekit/apps/core_clustering.h"
#include "corekit/apps/core_resilience.h"
#include "corekit/apps/degeneracy_coloring.h"
#include "corekit/apps/densest_subgraph.h"
#include "corekit/apps/spread_simulation.h"
#include "corekit/apps/max_clique.h"
#include "corekit/apps/max_flow.h"
#include "corekit/apps/size_constrained_core.h"
#include "corekit/core/approx_triangles.h"
#include "corekit/core/baseline.h"
#include "corekit/distributed/distributed_core.h"
#include "corekit/dynamic/dynamic_core.h"
#include "corekit/external/semi_external_core.h"
#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/hierarchy_export.h"
#include "corekit/core/hierarchy_index.h"
#include "corekit/core/metrics.h"
#include "corekit/core/metric_combination.h"
#include "corekit/core/multi_metric.h"
#include "corekit/core/naive_oracle.h"
#include "corekit/core/union_find_forest.h"
#include "corekit/core/onion_layers.h"
#include "corekit/core/primary_values.h"
#include "corekit/core/result_io.h"
#include "corekit/core/triangle_scoring.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/engine/core_engine.h"
#include "corekit/engine/stage_stats.h"
#include "corekit/gen/generators.h"
#include "corekit/gen/hyperbolic.h"
#include "corekit/gen/lfr_like.h"
#include "corekit/parallel/frontier_peel.h"
#include "corekit/parallel/frontier_truss.h"
#include "corekit/parallel/parallel_core.h"
#include "corekit/parallel/parallel_ordering.h"
#include "corekit/parallel/parallel_triangles.h"
#include "corekit/graph/connected_components.h"
#include "corekit/truss/best_single_truss.h"
#include "corekit/truss/best_truss_set.h"
#include "corekit/truss/truss_baseline.h"
#include "corekit/truss/truss_decomposition.h"
#include "corekit/truss/truss_forest.h"
#include "corekit/graph/ckg_format.h"
#include "corekit/graph/compressed_csr.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/graph/file_view.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/graph/parallel_edge_list.h"
#include "corekit/graph/parallel_graph_builder.h"
#include "corekit/graph/graph_stats.h"
#include "corekit/graph/metis_io.h"
#include "corekit/graph/mutable_adjacency.h"
#include "corekit/graph/power_law.h"
#include "corekit/graph/subgraph.h"
#include "corekit/graph/types.h"
#include "corekit/simd/dispatch.h"
#include "corekit/simd/intersect.h"
#include "corekit/util/bucket_queue.h"
#include "corekit/util/thread_pool.h"
#include "corekit/weighted/s_core.h"
#include "corekit/weighted/weighted_graph.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"
#include "corekit/util/status.h"
#include "corekit/viz/svg_fingerprint.h"
#include "corekit/util/table_printer.h"
#include "corekit/util/timer.h"
