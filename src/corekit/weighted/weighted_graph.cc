#include "corekit/weighted/weighted_graph.h"

#include <algorithm>
#include <numeric>

namespace corekit {

WeightedGraph::WeightedGraph(std::vector<EdgeId> offsets,
                             std::vector<VertexId> neighbors,
                             std::vector<double> weights)
    : offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      weights_(std::move(weights)) {
  COREKIT_CHECK(!offsets_.empty());
  COREKIT_CHECK_EQ(offsets_.front(), 0u);
  COREKIT_CHECK_EQ(offsets_.back(), neighbors_.size());
  COREKIT_CHECK_EQ(weights_.size(), neighbors_.size());
}

double WeightedGraph::Strength(VertexId v) const {
  const auto weights = Weights(v);
  return std::accumulate(weights.begin(), weights.end(), 0.0);
}

double WeightedGraph::TotalWeight() const {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0) / 2.0;
}

Graph WeightedGraph::Skeleton() const {
  auto offsets = offsets_;
  auto neighbors = neighbors_;
  return Graph(std::move(offsets), std::move(neighbors));
}

void WeightedGraphBuilder::AddEdge(VertexId u, VertexId v, double weight) {
  COREKIT_DCHECK(u < num_vertices_);
  COREKIT_DCHECK(v < num_vertices_);
  COREKIT_CHECK_GT(weight, 0.0);
  if (u == v) return;  // self-loops carry no strength in the s-core model
  edges_.push_back({u, v, weight});
}

WeightedGraph WeightedGraphBuilder::Build() {
  const VertexId n = num_vertices_;

  // Normalize to u < v, sort, merge duplicates by summing weights.
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  std::vector<WeightedEdge> merged;
  merged.reserve(edges_.size());
  for (const WeightedEdge& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Two-pass CSR scatter, both directions.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const WeightedEdge& e : merged) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> neighbors(offsets.back());
  std::vector<double> weights(offsets.back());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const WeightedEdge& e : merged) {
    neighbors[cursor[e.u]] = e.v;
    weights[cursor[e.u]++] = e.weight;
    neighbors[cursor[e.v]] = e.u;
    weights[cursor[e.v]++] = e.weight;
  }
  return WeightedGraph(std::move(offsets), std::move(neighbors),
                       std::move(weights));
}

WeightedGraph RandomlyWeighted(const Graph& graph, double max_weight,
                               std::uint64_t seed) {
  COREKIT_CHECK_GT(max_weight, 0.0);
  Rng rng(seed);
  WeightedGraphBuilder builder(graph.NumVertices());
  for (const auto& [u, v] : graph.ToEdgeList()) {
    // (0, max_weight]: strictly positive.
    builder.AddEdge(u, v, (1.0 - rng.NextDouble()) * max_weight);
  }
  return builder.Build();
}

}  // namespace corekit
