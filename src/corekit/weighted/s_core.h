// s-core decomposition of weighted graphs (Eidsaa & Almaas 2013, the
// weighted generalization referenced in Section VII of the paper), plus
// the best-s search that transfers the paper's paradigm to it.
//
// The s-core S_s is the maximal subgraph in which every vertex has
// strength (weighted degree) >= s.  Peeling the minimum-strength vertex
// and recording the running maximum of removal strengths yields each
// vertex's s-value: v belongs to S_s iff s_value(v) >= s.  Strengths are
// reals, so the peel uses a lazy min-heap (O(m log n)) instead of bin
// sort — the only place the weighted setting costs more than O(m).
//
// FindBestSCore then mirrors Algorithm 2: walk the peel order backwards
// (densest suffix first), maintain weighted primary values
// incrementally, and score the subgraph at every distinct s-value
// threshold.  O(m) after the decomposition.

#pragma once

#include <vector>

#include "corekit/weighted/weighted_graph.h"

namespace corekit {

struct SCoreDecomposition {
  // s_value[v]: the largest s such that v is in the s-core.
  std::vector<double> s_value;
  // Vertices in peel (non-decreasing s-value) order.
  std::vector<VertexId> peel_order;
  // Largest s-value (0 for the empty graph).
  double smax = 0.0;
};

// Lazy-heap peeling.  O(m log n) time, O(n + m) space.
SCoreDecomposition ComputeSCoreDecomposition(const WeightedGraph& graph);

// Definition-driven oracle for tests: O(n^2 d).
SCoreDecomposition NaiveSCoreDecomposition(const WeightedGraph& graph);

// Weighted analogues of the primary values.
struct WeightedPrimaryValues {
  std::uint64_t num_vertices = 0;
  double internal_weight_x2 = 0.0;  // 2 * total weight inside S
  double boundary_weight = 0.0;     // weight of edges leaving S
};

// Weighted community metrics (all functions of the weighted primaries).
enum class WeightedMetric : int {
  // 2 W(S) / n(S): the weighted average degree (mean strength inside S).
  kAverageStrength = 0,
  // 1 - b_w(S) / (2 W(S) + b_w(S)): weighted conductance goodness.
  kWeightedConductance = 1,
  // W(S) / C(n(S), 2): weighted internal density.
  kWeightedDensity = 2,
};
const char* WeightedMetricName(WeightedMetric metric);
double EvaluateWeightedMetric(WeightedMetric metric,
                              const WeightedPrimaryValues& values);

// Score profile over the distinct s-value thresholds.
struct SCoreProfile {
  // Ascending distinct s-values; level i is the s-core set at threshold
  // thresholds[i] (i = 0 is the whole graph when min s-value is reached
  // by all vertices).
  std::vector<double> thresholds;
  std::vector<double> scores;
  std::vector<WeightedPrimaryValues> primaries;
  // Index of the best threshold (largest threshold on ties).
  std::size_t best_index = 0;
  double best_s = 0.0;
  double best_score = 0.0;
};

SCoreProfile FindBestSCore(const WeightedGraph& graph,
                           const SCoreDecomposition& cores,
                           WeightedMetric metric);

}  // namespace corekit
