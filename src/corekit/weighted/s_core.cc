#include "corekit/weighted/s_core.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "corekit/util/logging.h"

namespace corekit {

SCoreDecomposition ComputeSCoreDecomposition(const WeightedGraph& graph) {
  const VertexId n = graph.NumVertices();
  SCoreDecomposition result;
  result.s_value.assign(n, 0.0);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  std::vector<double> strength(n);
  for (VertexId v = 0; v < n; ++v) strength[v] = graph.Strength(v);

  // Lazy min-heap of (strength, vertex); stale entries are skipped.
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (VertexId v = 0; v < n; ++v) heap.emplace(strength[v], v);

  std::vector<bool> removed(n, false);
  double running_max = 0.0;
  while (!heap.empty()) {
    const auto [s, v] = heap.top();
    heap.pop();
    if (removed[v] || s != strength[v]) continue;  // stale
    removed[v] = true;
    running_max = std::max(running_max, s);
    result.s_value[v] = running_max;
    result.peel_order.push_back(v);

    const auto nbrs = graph.Neighbors(v);
    const auto weights = graph.Weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (removed[u]) continue;
      strength[u] -= weights[i];
      heap.emplace(strength[u], u);
    }
  }
  result.smax = running_max;
  return result;
}

SCoreDecomposition NaiveSCoreDecomposition(const WeightedGraph& graph) {
  const VertexId n = graph.NumVertices();
  SCoreDecomposition result;
  result.s_value.assign(n, 0.0);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  std::vector<bool> removed(n, false);
  double running_max = 0.0;
  for (VertexId step = 0; step < n; ++step) {
    // Recompute every alive strength and take the minimum (ties by id).
    VertexId argmin = kInvalidVertex;
    double min_strength = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (removed[v]) continue;
      double s = 0.0;
      const auto nbrs = graph.Neighbors(v);
      const auto weights = graph.Weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!removed[nbrs[i]]) s += weights[i];
      }
      if (argmin == kInvalidVertex || s < min_strength) {
        argmin = v;
        min_strength = s;
      }
    }
    removed[argmin] = true;
    running_max = std::max(running_max, min_strength);
    result.s_value[argmin] = running_max;
    result.peel_order.push_back(argmin);
  }
  result.smax = running_max;
  return result;
}

const char* WeightedMetricName(WeightedMetric metric) {
  switch (metric) {
    case WeightedMetric::kAverageStrength:
      return "average strength";
    case WeightedMetric::kWeightedConductance:
      return "weighted conductance";
    case WeightedMetric::kWeightedDensity:
      return "weighted density";
  }
  return "?";
}

double EvaluateWeightedMetric(WeightedMetric metric,
                              const WeightedPrimaryValues& values) {
  switch (metric) {
    case WeightedMetric::kAverageStrength:
      return values.num_vertices == 0
                 ? 0.0
                 : values.internal_weight_x2 /
                       static_cast<double>(values.num_vertices);
    case WeightedMetric::kWeightedConductance: {
      const double volume = values.internal_weight_x2 + values.boundary_weight;
      return volume == 0.0 ? 1.0 : 1.0 - values.boundary_weight / volume;
    }
    case WeightedMetric::kWeightedDensity: {
      if (values.num_vertices < 2) return 0.0;
      return values.internal_weight_x2 /
             (static_cast<double>(values.num_vertices) *
              static_cast<double>(values.num_vertices - 1));
    }
  }
  COREKIT_LOG(FATAL) << "unknown weighted metric";
  return 0.0;
}

SCoreProfile FindBestSCore(const WeightedGraph& graph,
                           const SCoreDecomposition& cores,
                           WeightedMetric metric) {
  SCoreProfile profile;
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_EQ(cores.peel_order.size(), n);
  if (n == 0) return profile;

  // Walk the peel order backwards: the suffix starting at position i is
  // the s-core set at threshold s_value[peel_order[i]].  Record one level
  // per distinct s-value (the coarsest position of each value).
  std::vector<bool> in_set(n, false);
  WeightedPrimaryValues running;

  for (VertexId i = n; i-- > 0;) {
    const VertexId v = cores.peel_order[i];
    in_set[v] = true;
    ++running.num_vertices;
    const auto nbrs = graph.Neighbors(v);
    const auto weights = graph.Weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (in_set[nbrs[j]]) {
        running.internal_weight_x2 += 2.0 * weights[j];
        running.boundary_weight -= weights[j];
      } else {
        running.boundary_weight += weights[j];
      }
    }
    // A level closes when this vertex's s-value differs from the next
    // coarser vertex's (or we've absorbed everything).
    const bool level_boundary =
        i == 0 ||
        cores.s_value[cores.peel_order[i - 1]] != cores.s_value[v];
    if (level_boundary) {
      profile.thresholds.push_back(cores.s_value[v]);
      profile.primaries.push_back(running);
      profile.scores.push_back(EvaluateWeightedMetric(metric, running));
    }
  }
  // Recorded coarse-to-... the walk emits levels from the densest suffix
  // outward, i.e. thresholds descending; flip to ascending for callers.
  std::reverse(profile.thresholds.begin(), profile.thresholds.end());
  std::reverse(profile.primaries.begin(), profile.primaries.end());
  std::reverse(profile.scores.begin(), profile.scores.end());

  profile.best_index = 0;
  for (std::size_t i = 1; i < profile.scores.size(); ++i) {
    if (profile.scores[i] >= profile.scores[profile.best_index]) {
      profile.best_index = i;  // >= : largest threshold wins ties
    }
  }
  profile.best_s = profile.thresholds[profile.best_index];
  profile.best_score = profile.scores[profile.best_index];
  return profile;
}

}  // namespace corekit
