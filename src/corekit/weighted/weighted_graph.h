// Weighted undirected simple graph (CSR + parallel weight array): the
// substrate for the weighted-core direction the paper discusses in
// Section VII ("the model of k-core is extended to weighted graphs where
// each edge has its weight and each vertex has its weighted degree").
//
// Weights are positive doubles; a vertex's *strength* is the sum of its
// incident edge weights (the weighted degree of [23], [27], [60]).
// Construction mirrors GraphBuilder: arbitrary insertion order,
// self-loops dropped, duplicate edges merged by *summing* their weights
// (parallel interactions accumulate, the convention of the weighted
// k-shell literature).

#pragma once

#include <span>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

class WeightedGraph {
 public:
  WeightedGraph() : offsets_{0} {}

  // Validated CSR arrays; use WeightedGraphBuilder.
  WeightedGraph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors,
                std::vector<double> weights);

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId NumEdges() const { return offsets_.back() / 2; }

  VertexId Degree(VertexId v) const {
    COREKIT_DCHECK(v < NumVertices());
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const VertexId> Neighbors(VertexId v) const {
    COREKIT_DCHECK(v < NumVertices());
    return {neighbors_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }
  // Weights parallel to Neighbors(v).
  std::span<const double> Weights(VertexId v) const {
    COREKIT_DCHECK(v < NumVertices());
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  // Strength (weighted degree) of v: sum of incident edge weights.
  double Strength(VertexId v) const;

  // Total edge weight of the graph (each undirected edge once).
  double TotalWeight() const;

  // The unweighted skeleton (shares no storage; built on demand).
  Graph Skeleton() const;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<VertexId> neighbors_;
  std::vector<double> weights_;  // parallel to neighbors_
};

class WeightedGraphBuilder {
 public:
  explicit WeightedGraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  // Adds an undirected weighted edge; weight must be positive.
  // Duplicates (either orientation) are merged by summing weights.
  void AddEdge(VertexId u, VertexId v, double weight);

  WeightedGraph Build();

 private:
  struct WeightedEdge {
    VertexId u;
    VertexId v;
    double weight;
  };
  VertexId num_vertices_;
  std::vector<WeightedEdge> edges_;
};

// Lifts an unweighted graph to a weighted one with deterministic random
// weights in (0, max_weight] — the synthetic stand-in for weighted
// datasets (interaction networks, co-authorship with collaboration
// counts).
WeightedGraph RandomlyWeighted(const Graph& graph, double max_weight,
                               std::uint64_t seed);

}  // namespace corekit
