#include "corekit/graph/edge_list_io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "corekit/graph/edge_list_parse.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/graph/types.h"

namespace corekit {

namespace {

constexpr char kBinaryMagic[4] = {'C', 'K', 'G', '1'};

// RAII stdio handle.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

}  // namespace

Result<Graph> ReadSnapEdgeList(const std::string& path) {
  File file(path, "r");
  if (!file.ok()) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }

  std::unordered_map<std::uint64_t, VertexId> relabel;
  EdgeList edges;
  auto intern = [&relabel](std::uint64_t raw) {
    auto [it, inserted] =
        relabel.try_emplace(raw, static_cast<VertexId>(relabel.size()));
    (void)inserted;
    return it->second;
  };

  char line[edge_list_internal::kMaxLineBytes + 1];
  std::size_t line_no = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_no;
    if (std::strchr(line, '\n') == nullptr) {
      // fgets filled the buffer without reaching a newline.  Unless this
      // is the final line of a file with no trailing newline, the line is
      // longer than the buffer and would silently split into bogus edges.
      const int next = std::fgetc(file.get());
      if (next != EOF) {
        return Status::Corruption("line exceeds " +
                                  std::to_string(sizeof(line) - 1) +
                                  " bytes at " + path + ":" +
                                  std::to_string(line_no));
      }
    }
    const char* p = line;
    const char* end = line + std::strlen(line);
    if (edge_list_internal::ClassifyLine(&p, end) ==
        edge_list_internal::LineKind::kSkip) {
      continue;  // blank or comment
    }
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    for (std::uint64_t* out : {&raw_u, &raw_v}) {
      switch (edge_list_internal::ParseUint(&p, end, out)) {
        case edge_list_internal::ParseUintResult::kOk:
          break;
        case edge_list_internal::ParseUintResult::kNoDigits:
          return Status::Corruption("malformed edge at " + path + ":" +
                                    std::to_string(line_no));
        case edge_list_internal::ParseUintResult::kOverflow:
          return Status::Corruption("vertex id overflows 64 bits at " + path +
                                    ":" + std::to_string(line_no));
      }
    }
    // Intern u before v explicitly: argument evaluation order is
    // unspecified, and first-appearance ids are a cross-reader contract
    // (the parallel reader reproduces them bit for bit).
    const VertexId u = intern(raw_u);
    const VertexId v = intern(raw_v);
    edges.emplace_back(u, v);
  }
  if (std::ferror(file.get())) {
    return Status::IoError("read error on '" + path + "'");
  }

  return GraphBuilder::FromEdges(static_cast<VertexId>(relabel.size()), edges);
}

Status WriteSnapEdgeList(const Graph& graph, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  std::fprintf(file.get(), "# corekit edge list: n=%u m=%llu\n",
               graph.NumVertices(),
               static_cast<unsigned long long>(graph.NumEdges()));
  const VertexId n = graph.NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(file.get(), "%u %u\n", u, v);
    }
  }
  if (std::ferror(file.get())) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::OK();
}

Status WriteBinaryGraph(const Graph& graph, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  const std::uint64_t n = graph.NumVertices();
  const std::uint64_t slots = graph.NeighborArray().size();
  bool ok = std::fwrite(kBinaryMagic, 1, 4, file.get()) == 4;
  ok = ok && std::fwrite(&n, sizeof(n), 1, file.get()) == 1;
  ok = ok && std::fwrite(&slots, sizeof(slots), 1, file.get()) == 1;
  ok = ok && (n == 0 ||
              std::fwrite(graph.Offsets().data(), sizeof(EdgeId), n + 1,
                          file.get()) == n + 1);
  ok = ok && (slots == 0 ||
              std::fwrite(graph.NeighborArray().data(), sizeof(VertexId),
                          slots, file.get()) == slots);
  if (!ok) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

Result<Graph> ReadBinaryGraph(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  char magic[4];
  if (std::fread(magic, 1, 4, file.get()) != 4 ||
      std::memcmp(magic, kBinaryMagic, 4) != 0) {
    return Status::Corruption("'" + path + "' is not a corekit binary graph");
  }
  std::uint64_t n = 0;
  std::uint64_t slots = 0;
  if (std::fread(&n, sizeof(n), 1, file.get()) != 1 ||
      std::fread(&slots, sizeof(slots), 1, file.get()) != 1) {
    return Status::Corruption("truncated header in '" + path + "'");
  }
  if (n > std::numeric_limits<VertexId>::max() - 1) {
    return Status::Corruption("vertex count overflow in '" + path + "'");
  }
  if (slots > std::numeric_limits<std::uint64_t>::max() / sizeof(VertexId)) {
    return Status::Corruption("slot count overflow in '" + path + "'");
  }
  // Before allocating (n + 1) offsets and `slots` neighbors, check the
  // file actually holds that payload: a corrupted header with an absurd
  // n or slots would otherwise drive a giant allocation (and an OOM
  // abort) ahead of any validation.
  const long payload_start = std::ftell(file.get());
  if (payload_start >= 0 && std::fseek(file.get(), 0, SEEK_END) == 0) {
    const long file_end = std::ftell(file.get());
    const std::uint64_t expected =
        (n + 1) * sizeof(EdgeId) + slots * sizeof(VertexId);
    if (file_end < payload_start ||
        static_cast<std::uint64_t>(file_end - payload_start) != expected) {
      return Status::Corruption("payload size mismatch in '" + path + "'");
    }
    if (std::fseek(file.get(), payload_start, SEEK_SET) != 0) {
      return Status::IoError("seek error on '" + path + "'");
    }
  }
  std::vector<EdgeId> offsets(n + 1, 0);
  std::vector<VertexId> neighbors(slots);
  if (n + 1 > 0 &&
      std::fread(offsets.data(), sizeof(EdgeId), n + 1, file.get()) != n + 1) {
    return Status::Corruption("truncated offsets in '" + path + "'");
  }
  if (slots > 0 && std::fread(neighbors.data(), sizeof(VertexId), slots,
                              file.get()) != slots) {
    return Status::Corruption("truncated neighbors in '" + path + "'");
  }
  if (offsets.front() != 0 || offsets.back() != slots) {
    return Status::Corruption("inconsistent CSR in '" + path + "'");
  }
  // Validate the full CSR invariant (monotone offsets; in-range, sorted,
  // self-loop-free adjacency) so a corrupted payload comes back as a
  // Status instead of tripping Graph's internal checks.
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1] || offsets[v + 1] > slots) {
      return Status::Corruption("non-monotone offsets in '" + path + "'");
    }
    for (EdgeId i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (neighbors[i] >= n || neighbors[i] == v ||
          (i > offsets[v] && neighbors[i - 1] >= neighbors[i])) {
        return Status::Corruption("invalid adjacency in '" + path + "'");
      }
    }
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace corekit
