// Read-only view of a whole file: mmap'd where available, an owned
// buffer filled by stdio otherwise.  The fallback also catches files
// mmap cannot handle (pipes, pseudo-files) and doubles as a portable
// test axis (force_fallback).
//
// Extracted from the PR 5 parallel edge-list ingester so the binary
// graph format (.ckg) and the text reader share one mmap abstraction.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "corekit/util/status.h"

#if defined(__unix__) || defined(__APPLE__)
#define COREKIT_HAVE_MMAP 1
#endif

namespace corekit {

class FileView {
 public:
  FileView() = default;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;
  ~FileView();

  // Opens `path` for reading.  With mmap available (and force_fallback
  // off) a regular file is mapped MAP_PRIVATE with MADV_SEQUENTIAL;
  // everything else — or any mmap refusal — falls back to a full stdio
  // read into an owned buffer.  `out` must be a fresh (unopened) view.
  static Status Open(const std::string& path, bool force_fallback,
                     FileView* out);

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }

  // True when the bytes are a shared mapping rather than an owned copy
  // (observability for the zero-copy load paths and their tests).
  bool is_mapped() const;

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<char> buffer_;  // fallback storage
#if defined(COREKIT_HAVE_MMAP)
  void* mapped_ = nullptr;
#endif
};

}  // namespace corekit
