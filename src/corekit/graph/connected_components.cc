#include "corekit/graph/connected_components.h"

#include <vector>

namespace corekit {

std::vector<std::vector<VertexId>> ComponentLabels::Groups() const {
  std::vector<std::vector<VertexId>> groups(num_components);
  for (VertexId v = 0; v < label.size(); ++v) {
    if (label[v] != kInvalidComponent) groups[label[v]].push_back(v);
  }
  return groups;
}

namespace {

ComponentLabels BfsComponents(const Graph& graph,
                              const std::vector<bool>* in_subset) {
  const VertexId n = graph.NumVertices();
  ComponentLabels result;
  result.label.assign(n, ComponentLabels::kInvalidComponent);

  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId s = 0; s < n; ++s) {
    if (in_subset != nullptr && !(*in_subset)[s]) continue;
    if (result.label[s] != ComponentLabels::kInvalidComponent) continue;
    const VertexId comp = result.num_components++;
    result.label[s] = comp;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (const VertexId w : graph.Neighbors(u)) {
        if (in_subset != nullptr && !(*in_subset)[w]) continue;
        if (result.label[w] == ComponentLabels::kInvalidComponent) {
          result.label[w] = comp;
          queue.push_back(w);
        }
      }
    }
  }
  return result;
}

}  // namespace

ComponentLabels ConnectedComponents(const Graph& graph) {
  return BfsComponents(graph, nullptr);
}

ComponentLabels InducedConnectedComponents(
    const Graph& graph, const std::vector<bool>& in_subset) {
  COREKIT_CHECK_EQ(in_subset.size(), graph.NumVertices());
  return BfsComponents(graph, &in_subset);
}

}  // namespace corekit
