#include "corekit/graph/power_law.h"

#include <cmath>

#include "corekit/util/logging.h"

namespace corekit {

PowerLawFit FitDiscretePowerLaw(const std::vector<VertexId>& samples,
                                VertexId xmin) {
  COREKIT_CHECK_GE(xmin, 1u);
  PowerLawFit fit;
  fit.xmin = xmin;
  double log_sum = 0.0;
  for (const VertexId x : samples) {
    if (x < xmin) continue;
    ++fit.tail_size;
    log_sum += std::log(static_cast<double>(x) /
                        (static_cast<double>(xmin) - 0.5));
  }
  if (fit.tail_size == 0 || log_sum <= 0.0) return fit;
  fit.alpha = 1.0 + static_cast<double>(fit.tail_size) / log_sum;
  fit.std_error =
      (fit.alpha - 1.0) / std::sqrt(static_cast<double>(fit.tail_size));
  return fit;
}

PowerLawFit FitDegreePowerLaw(const Graph& graph, VertexId xmin) {
  std::vector<VertexId> degrees;
  degrees.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    degrees.push_back(graph.Degree(v));
  }
  return FitDiscretePowerLaw(degrees, xmin);
}

}  // namespace corekit
