#include "corekit/graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace corekit {

Graph GraphBuilder::Build() {
  const VertexId n = num_vertices_;

  // Pass 1: count directed slots (both directions of every kept edge).
  // Self-loops are dropped here; duplicates are dropped after sorting the
  // per-vertex lists, so the counts below are upper bounds that we shrink
  // in a compaction pass.
  std::vector<EdgeId> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    ++counts[u + 1];
    ++counts[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) counts[v + 1] += counts[v];

  // Pass 2: scatter.
  std::vector<VertexId> adj(counts.back());
  std::vector<EdgeId> cursor(counts.begin(), counts.end() - 1);
  for (const auto& [u, v] : edges_) {
    if (u == v) continue;
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Pass 3: sort each adjacency list and compact away duplicate edges.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  EdgeId write = 0;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeId begin = counts[v];
    const EdgeId end = counts[v + 1];
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(begin),
              adj.begin() + static_cast<std::ptrdiff_t>(end));
    offsets[v] = write;
    for (EdgeId i = begin; i < end; ++i) {
      if (i > begin && adj[i] == adj[i - 1]) continue;  // duplicate
      adj[write++] = adj[i];
    }
  }
  offsets[n] = write;
  adj.resize(write);
  adj.shrink_to_fit();

  return Graph(std::move(offsets), std::move(adj));
}

Graph GraphBuilder::FromEdges(VertexId num_vertices, const EdgeList& edges) {
  GraphBuilder builder(num_vertices);
  builder.AddEdges(edges);
  return builder.Build();
}

}  // namespace corekit
