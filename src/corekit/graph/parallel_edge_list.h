// Parallel cold path, ingestion stage: mmap'd chunked SNAP parsing.
//
// ReadSnapEdgeList walks a file one fgets line at a time; on SNAP-scale
// inputs that serial scan dominates end-to-end wall clock because the
// paper's compute pipeline is O(m).  This reader maps the file (mmap on
// POSIX, a plain fread of the whole file as the portable fallback),
// splits it at newline boundaries into chunks, and parses the chunks on
// a shared ThreadPool.
//
// Determinism and error parity with the serial reader:
//   - Chunk boundaries are aligned so each chunk owns exactly the lines
//     that *start* inside it; concatenating per-chunk results in chunk
//     order reproduces the file-order edge sequence.
//   - Vertex ids are relabeled densely in first-appearance file order, so
//     the numbering is identical to ReadSnapEdgeList's.
//   - Errors carry the same line-numbered Corruption messages: chunks
//     record line counts, so the first failing chunk (in file order) can
//     reconstruct the absolute line number of the first bad line.

#pragma once

#include <cstddef>
#include <string>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"
#include "corekit/util/status.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Output of the parsing stage: edges already relabeled into the dense
// [0, num_vertices) space, in file order, before CSR normalization.
struct ParsedEdgeList {
  VertexId num_vertices = 0;
  EdgeList edges;
};

struct ParallelIngestOptions {
  // Chunk granularity in bytes; 0 picks automatically from the file size
  // and thread count.  Tests shrink this to force lines, comments and
  // errors to straddle chunk boundaries.
  std::size_t chunk_bytes = 0;
  // Skips mmap and exercises the portable read-into-buffer fallback.
  bool force_fallback = false;
};

// Parses a SNAP-format text edge list in parallel.  Accepts exactly the
// files ReadSnapEdgeList accepts and rejects exactly the files it
// rejects, with the same messages.
Result<ParsedEdgeList> ParseSnapEdgeListParallel(
    const std::string& path, ThreadPool& pool,
    const ParallelIngestOptions& options = {});

// Parse + parallel CSR normalization.  The returned Graph is bitwise
// identical to ReadSnapEdgeList(path)'s.
Result<Graph> ReadSnapEdgeListParallel(
    const std::string& path, ThreadPool& pool,
    const ParallelIngestOptions& options = {});

}  // namespace corekit
