// A mutable adjacency view layered over the immutable CSR `Graph`.
//
// `Graph` is deliberately frozen after construction (sorted CSR, shared
// by every downstream artifact), which makes per-edge updates O(m).
// `MutableAdjacency` keeps a borrowed base CSR plus small sorted
// per-vertex delta lists (`added_`, `removed_`) so that edge
// insertions/deletions are O(log deg + delta), neighbor iteration stays
// ascending, and the common no-delta vertex iterates the raw base span.
// When the deltas grow past a fraction of the base, the view compacts
// itself into a fresh owned CSR, keeping iteration amortized O(deg).
//
// This is the storage substrate for dynamic::DynamicCoreIndex and, via
// it, for CoreEngine::ApplyBatch.  Not thread-safe: callers serialize
// writers against readers (the engine does so with its slot mutexes).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

class MutableAdjacency {
 public:
  // An empty graph on `num_vertices` vertices (no base CSR).
  explicit MutableAdjacency(VertexId num_vertices);

  // A view over `base`; borrows it, so `base` must outlive this object
  // (Compact() folds the deltas into an owned CSR but still reads the
  // borrowed base while doing so).
  explicit MutableAdjacency(const Graph& base);

  VertexId NumVertices() const {
    return static_cast<VertexId>(degree_.size());
  }
  EdgeId NumEdges() const { return num_edges_; }
  VertexId Degree(VertexId v) const { return degree_[v]; }

  // True edge membership (self-loops never exist).  O(log deg).
  bool HasEdge(VertexId u, VertexId v) const;

  // Insert/delete the undirected edge {u, v}.  Returns false — with no
  // state change — for self-loops, duplicate inserts and deletes of
  // absent edges.  Vertices must be in range (COREKIT_CHECK).
  bool AddEdge(VertexId u, VertexId v);
  bool RemoveEdge(VertexId u, VertexId v);

  // |N(u) ∩ N(v)| under the current edge set — the number of triangles
  // the edge {u, v} closes.  O(deg(u) + deg(v) log deg(u)).
  std::uint64_t CommonNeighborCount(VertexId u, VertexId v) const;

  // Visits the current neighbors of `v` in ascending order.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    const std::span<const VertexId> base = BaseNeighbors(v);
    const std::vector<VertexId>& add = added_[v];
    const std::vector<VertexId>& del = removed_[v];
    if (add.empty() && del.empty()) {
      for (const VertexId u : base) fn(u);
      return;
    }
    std::size_t bi = 0;
    std::size_t ai = 0;
    std::size_t di = 0;
    while (bi < base.size() || ai < add.size()) {
      const bool take_base =
          ai == add.size() || (bi < base.size() && base[bi] < add[ai]);
      if (take_base) {
        const VertexId u = base[bi++];
        while (di < del.size() && del[di] < u) ++di;
        if (di < del.size() && del[di] == u) {
          ++di;
          continue;
        }
        fn(u);
      } else {
        fn(add[ai++]);
      }
    }
  }

  // Sorted copy of the current neighbor list.
  std::vector<VertexId> Neighbors(VertexId v) const;

  // Freezes the current edge set into a standalone CSR.
  Graph Materialize() const;

  // Folds the deltas into an owned base CSR; afterwards every vertex is
  // on the fast no-delta path.  Called automatically once the deltas
  // exceed a fraction of the base size.
  void Compact();

  // Total entries across all delta lists (diagnostic; drives Compact).
  std::size_t DeltaEntries() const { return delta_entries_; }

 private:
  std::span<const VertexId> BaseNeighbors(VertexId v) const {
    return base_ != nullptr ? base_->Neighbors(v)
                            : std::span<const VertexId>{};
  }
  bool InBase(VertexId v, VertexId u) const;
  void MaybeCompact();

  const Graph* base_ = nullptr;  // borrowed, or &owned_base_ after Compact
  Graph owned_base_;
  // Per-vertex sorted deltas.  Invariants: added_[v] is disjoint from
  // the base list, removed_[v] is a subset of it, and the two never
  // share an entry.
  std::vector<std::vector<VertexId>> added_;
  std::vector<std::vector<VertexId>> removed_;
  std::vector<VertexId> degree_;
  EdgeId num_edges_ = 0;
  std::size_t delta_entries_ = 0;
};

}  // namespace corekit
