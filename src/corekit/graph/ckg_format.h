// Versioned, checksummed, mmap-able binary graph format (.ckg).
//
// Layout (all integers little-endian):
//
//   offset  0  magic[8]        "CKGRAPH\n"
//   offset  8  u32 version     currently 1
//   offset 12  u32 flags       bit 0: payload is compressed CSR
//   offset 16  u64 n           vertex count
//   offset 24  u64 directed    directed edge slots (2m)
//   offset 32  u64 payload     payload byte count (== file size - 64)
//   offset 40  u64 checksum    FNV-1a 64 over the payload bytes
//   offset 48  u64 reserved[2] zero
//
// Plain payload (flags bit 0 clear) — the sections are exactly Graph's
// CSR arrays, 8-byte aligned relative to the header, so a load can map
// the file and point Graph::FromView at them with zero copies:
//
//   offsets    (n+1) x u64
//   neighbors  2m    x u32
//
// Compressed payload (flags bit 0 set) — CompressedCsr's sections:
//
//   byte_offsets (n+1) x u64
//   degrees      n     x u32
//   blob         byte_offsets[n] x u8
//
// Readers fail closed: every structural claim the header or payload
// makes (magic, version, sizes, checksum, CSR invariants, per-vertex
// decode) is verified before any byte is trusted, and violations come
// back as Status::Corruption, never a crash.  This is the successor of
// the legacy headerless "CKG1" format in edge_list_io.h, which remains
// readable for existing files.

#pragma once

#include <cstdint>
#include <string>

#include "corekit/graph/compressed_csr.h"
#include "corekit/graph/graph.h"
#include "corekit/util/status.h"

namespace corekit {

struct CkgWriteOptions {
  // Store the adjacency as compressed CSR (fewer bytes/edge; loads
  // decode) instead of plain CSR (larger; loads are zero-copy).
  bool compressed = false;
};

struct CkgReadOptions {
  // Force the stdio read path instead of mmap (test axis; also what
  // non-mmap platforms always do).  Plain payloads then own a buffer
  // copy instead of a mapping, with identical results.
  bool force_fallback = false;
};

// Per-file metadata, readable without loading the payload.
struct CkgInfo {
  bool compressed = false;
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;  // undirected m
  std::uint64_t payload_bytes = 0;
};

// Writes `graph` to `path` in .ckg form.
Status WriteCkgGraph(const Graph& graph, const std::string& path,
                     const CkgWriteOptions& options = {});

// Loads a .ckg of either flavor as a Graph.  Plain payloads become a
// zero-copy view over the mapped file (see Graph::IsView); compressed
// payloads are validated and decoded into an owning Graph.
Result<Graph> ReadCkgGraph(const std::string& path,
                           const CkgReadOptions& options = {});

// Loads a compressed-flavor .ckg as a zero-copy CompressedCsr view
// (fails with Corruption on a plain-flavor file).  Every per-vertex
// stream is decode-validated before the view is returned.
Result<CompressedCsr> ReadCkgCompressed(const std::string& path,
                                        const CkgReadOptions& options = {});

// Reads and validates only the 64-byte header.
Result<CkgInfo> ReadCkgInfo(const std::string& path);

// True if `path` ends in the canonical ".ckg" extension.
bool HasCkgExtension(const std::string& path);

}  // namespace corekit
