#include "corekit/graph/parallel_graph_builder.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "corekit/graph/graph_builder.h"

namespace corekit {

Graph BuildGraphParallel(VertexId num_vertices, const EdgeList& edges,
                         ThreadPool& pool) {
  const std::size_t n = num_vertices;
  const std::size_t num_ranges = pool.num_threads();
  if (num_ranges <= 1 || n == 0) {
    return GraphBuilder::FromEdges(num_vertices, edges);
  }
  const std::size_t m = edges.size();
  const auto range_bounds = [m, num_ranges](std::size_t r) {
    return std::pair<std::size_t, std::size_t>{m * r / num_ranges,
                                               m * (r + 1) / num_ranges};
  };

  // Pass 1: per-range degree histograms.  hist[r][v] counts the directed
  // slots range r's slice of the edge list contributes to vertex v.
  std::vector<std::vector<EdgeId>> hist(num_ranges);
  pool.ParallelFor(num_ranges, 1, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      std::vector<EdgeId>& h = hist[r];
      h.assign(n, 0);
      const auto [eb, ee] = range_bounds(r);
      for (std::size_t i = eb; i < ee; ++i) {
        const auto& [u, v] = edges[i];
        if (u == v) continue;
        ++h[u];
        ++h[v];
      }
    }
  });

  // Turn the counts into per-range write cursors: hist[r][v] becomes the
  // offset of range r's slice inside v's adjacency block and degree[v]
  // the block's total width (duplicates still included).
  std::vector<EdgeId> degree(n, 0);
  pool.ParallelFor(n, 4096, [&](std::size_t vb, std::size_t ve) {
    for (std::size_t v = vb; v < ve; ++v) {
      EdgeId running = 0;
      for (std::size_t r = 0; r < num_ranges; ++r) {
        const EdgeId c = hist[r][v];
        hist[r][v] = running;
        running += c;
      }
      degree[v] = running;
    }
  });
  std::vector<EdgeId> counts(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) counts[v + 1] = counts[v] + degree[v];

  // Pass 2: scatter.  Each range writes only through its own cursors, so
  // every slot is written exactly once — race-free without atomics.
  std::vector<VertexId> adj(counts.back());
  pool.ParallelFor(num_ranges, 1, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      std::vector<EdgeId>& cursor = hist[r];
      const auto [eb, ee] = range_bounds(r);
      for (std::size_t i = eb; i < ee; ++i) {
        const auto& [u, v] = edges[i];
        if (u == v) continue;
        adj[counts[u] + cursor[u]++] = v;
        adj[counts[v] + cursor[v]++] = u;
      }
    }
  });
  hist.clear();
  hist.shrink_to_fit();

  // Pass 3: sort each adjacency block and count its unique prefix.  The
  // sorted-unique result is what GraphBuilder produces, independent of
  // the scatter order above.  `degree` is reused for the unique counts.
  pool.ParallelFor(n, 1024, [&](std::size_t vb, std::size_t ve) {
    for (std::size_t v = vb; v < ve; ++v) {
      const auto first = adj.begin() + static_cast<std::ptrdiff_t>(counts[v]);
      const auto last = adj.begin() + static_cast<std::ptrdiff_t>(counts[v + 1]);
      std::sort(first, last);
      degree[v] = static_cast<EdgeId>(std::unique(first, last) - first);
    }
  });

  // Compact the unique prefixes into the final arrays.
  std::vector<EdgeId> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree[v];
  std::vector<VertexId> neighbors(offsets.back());
  pool.ParallelFor(n, 4096, [&](std::size_t vb, std::size_t ve) {
    for (std::size_t v = vb; v < ve; ++v) {
      std::copy_n(adj.begin() + static_cast<std::ptrdiff_t>(counts[v]),
                  degree[v],
                  neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]));
    }
  });
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace corekit
