// Discrete power-law exponent estimation (Clauset–Shalizi–Newman MLE).
//
// Table III's networks are heavy-tailed; the benchmark stand-ins claim
// the same character.  This estimator makes that claim checkable: for a
// degree sequence with tail x >= xmin,
//
//   alpha ~= 1 + n_tail / sum ln(x / (xmin - 1/2)),
//
// the standard discrete MLE approximation, with its asymptotic standard
// error (alpha - 1)/sqrt(n_tail).  Social-network degree tails land at
// alpha in roughly (2, 3.5]; ER degrees (Poisson) blow the estimate up.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"

namespace corekit {

struct PowerLawFit {
  double alpha = 0.0;
  double std_error = 0.0;
  // Tail observations used (degree >= xmin).
  std::uint64_t tail_size = 0;
  VertexId xmin = 1;
};

// Fits the degree tail of `graph` at the given cutoff.  Degrees below
// xmin (and isolated vertices) are ignored; tail_size == 0 when nothing
// qualifies.
PowerLawFit FitDegreePowerLaw(const Graph& graph, VertexId xmin);

// MLE over an explicit sample (exposed for tests and non-degree data).
PowerLawFit FitDiscretePowerLaw(const std::vector<VertexId>& samples,
                                VertexId xmin);

}  // namespace corekit
