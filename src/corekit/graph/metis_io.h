// METIS graph-format I/O.
//
// METIS (.graph) is the other lingua franca of graph repositories next to
// SNAP edge lists (Network Repository ships both; hollywood-2009 and
// bn-Human-Jung of Table III are commonly distributed this way).  Format:
// a header line "n m [fmt]" followed by one line per vertex listing its
// neighbors as 1-indexed ids; '%' lines are comments.  Only the
// unweighted variants (fmt absent, "0", or "00") are supported — corekit
// graphs are unweighted at the I/O boundary.

#pragma once

#include <string>

#include "corekit/graph/graph.h"
#include "corekit/util/status.h"

namespace corekit {

// Reads a METIS .graph file.  Self-loops and duplicate mentions are
// dropped; asymmetric adjacency (u lists v but not vice versa) is
// tolerated and symmetrized.
Result<Graph> ReadMetisGraph(const std::string& path);

// Writes `graph` in METIS format (header with exact n and m, one
// adjacency line per vertex, 1-indexed).
Status WriteMetisGraph(const Graph& graph, const std::string& path);

}  // namespace corekit
