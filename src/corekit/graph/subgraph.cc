#include "corekit/graph/subgraph.h"

#include <algorithm>

#include "corekit/graph/graph_builder.h"

namespace corekit {

InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<VertexId>& vertices) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> to_local(n, kInvalidVertex);
  for (VertexId i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    COREKIT_CHECK(v < n);
    COREKIT_CHECK(to_local[v] == kInvalidVertex) << "duplicate vertex " << v;
    to_local[v] = i;
  }

  GraphBuilder builder(static_cast<VertexId>(vertices.size()));
  for (VertexId i = 0; i < vertices.size(); ++i) {
    const VertexId u = vertices[i];
    for (const VertexId w : graph.Neighbors(u)) {
      const VertexId lw = to_local[w];
      if (lw != kInvalidVertex && u < w) builder.AddEdge(i, lw);
    }
  }

  InducedSubgraph result;
  result.graph = builder.Build();
  result.to_parent = vertices;
  return result;
}

InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<bool>& mask) {
  COREKIT_CHECK_EQ(mask.size(), graph.NumVertices());
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < mask.size(); ++v) {
    if (mask[v]) vertices.push_back(v);
  }
  return ExtractInducedSubgraph(graph, vertices);
}

}  // namespace corekit
