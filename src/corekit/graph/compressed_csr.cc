#include "corekit/graph/compressed_csr.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "corekit/util/logging.h"

namespace corekit {

namespace csr_codec {

namespace {

// Minimal little-endian byte length of a value (1..4).
unsigned ByteLength(std::uint32_t value) {
  if (value < (1u << 8)) return 1;
  if (value < (1u << 16)) return 2;
  if (value < (1u << 24)) return 3;
  return 4;
}

}  // namespace

void EncodeSortedList(std::span<const std::uint32_t> values,
                      std::vector<std::uint8_t>* out) {
  std::uint32_t prev = 0;
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t group = std::min<std::size_t>(4, values.size() - i);
    std::uint8_t control = 0;
    std::uint8_t data[16];
    std::size_t data_len = 0;
    for (std::size_t k = 0; k < group; ++k) {
      const std::uint32_t value = values[i + k];
      // First value absolute; later values store gap-1 (gaps are >= 1
      // because the list is strictly increasing).
      std::uint32_t delta = (i + k == 0) ? value : value - prev - 1;
      prev = value;
      const unsigned len = ByteLength(delta);
      control = static_cast<std::uint8_t>(control | ((len - 1) << (2 * k)));
      for (unsigned b = 0; b < len; ++b) {
        data[data_len++] = static_cast<std::uint8_t>(delta & 0xffu);
        delta >>= 8;
      }
    }
    out->push_back(control);
    out->insert(out->end(), data, data + data_len);
    i += group;
  }
}

bool DecodeSortedList(std::span<const std::uint8_t> bytes, std::size_t count,
                      std::vector<std::uint32_t>* out, std::size_t* consumed) {
  out->clear();
  out->reserve(count);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  while (i < count) {
    if (pos >= bytes.size()) return false;  // truncated control byte
    const std::uint8_t control = bytes[pos++];
    const std::size_t group = std::min<std::size_t>(4, count - i);
    // The encoder zeroes unused tail lanes; anything else is corruption.
    if (group < 4 && (control >> (2 * group)) != 0) return false;
    for (std::size_t k = 0; k < group; ++k) {
      const unsigned len = ((control >> (2 * k)) & 3u) + 1;
      if (pos + len > bytes.size()) return false;  // truncated data
      std::uint32_t delta = 0;
      for (unsigned b = 0; b < len; ++b) {
        delta |= static_cast<std::uint32_t>(bytes[pos + b]) << (8 * b);
      }
      pos += len;
      const std::uint64_t value = (i + k == 0) ? delta : prev + delta + 1;
      if (value > std::numeric_limits<std::uint32_t>::max()) return false;
      out->push_back(static_cast<std::uint32_t>(value));
      prev = value;
    }
    i += group;
  }
  *consumed = pos;
  return true;
}

}  // namespace csr_codec

CompressedCsr::CompressedCsr() : owned_byte_offsets_{0} { Rebind(); }

void CompressedCsr::Rebind() {
  byte_offsets_ = owned_byte_offsets_;
  degrees_ = owned_degrees_;
  blob_ = owned_blob_;
}

CompressedCsr CompressedCsr::FromGraph(const Graph& graph) {
  CompressedCsr csr;
  const VertexId n = graph.NumVertices();
  csr.owned_byte_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  csr.owned_degrees_.resize(n);
  csr.num_directed_ = 2 * graph.NumEdges();
  csr.owned_blob_.reserve(static_cast<std::size_t>(csr.num_directed_));
  for (VertexId v = 0; v < n; ++v) {
    csr.owned_degrees_[v] = graph.Degree(v);
    csr_codec::EncodeSortedList(graph.Neighbors(v), &csr.owned_blob_);
    csr.owned_byte_offsets_[static_cast<std::size_t>(v) + 1] =
        csr.owned_blob_.size();
  }
  csr.Rebind();
  return csr;
}

CompressedCsr CompressedCsr::FromParts(
    std::span<const std::uint64_t> byte_offsets,
    std::span<const std::uint32_t> degrees,
    std::span<const std::uint8_t> blob, EdgeId num_directed,
    std::shared_ptr<const void> backing) {
  CompressedCsr csr;
  csr.owned_byte_offsets_.clear();
  csr.backing_ = std::move(backing);
  csr.byte_offsets_ = byte_offsets;
  csr.degrees_ = degrees;
  csr.blob_ = blob;
  csr.num_directed_ = num_directed;
  COREKIT_CHECK(!csr.byte_offsets_.empty());
  COREKIT_CHECK_EQ(csr.byte_offsets_.size(), csr.degrees_.size() + 1);
  COREKIT_CHECK_EQ(csr.byte_offsets_.back(), csr.blob_.size());
  return csr;
}

CompressedCsr::CompressedCsr(const CompressedCsr& other)
    : owned_byte_offsets_(other.owned_byte_offsets_),
      owned_degrees_(other.owned_degrees_),
      owned_blob_(other.owned_blob_),
      backing_(other.backing_),
      num_directed_(other.num_directed_) {
  if (backing_ == nullptr) {
    Rebind();
  } else {
    byte_offsets_ = other.byte_offsets_;
    degrees_ = other.degrees_;
    blob_ = other.blob_;
  }
}

CompressedCsr& CompressedCsr::operator=(const CompressedCsr& other) {
  if (this != &other) *this = CompressedCsr(other);
  return *this;
}

void CompressedCsr::DecodeNeighbors(VertexId v,
                                    std::vector<VertexId>* out) const {
  COREKIT_DCHECK(v < NumVertices());
  const std::uint64_t begin = byte_offsets_[v];
  const std::uint64_t end = byte_offsets_[static_cast<std::size_t>(v) + 1];
  std::size_t consumed = 0;
  const bool ok = csr_codec::DecodeSortedList(
      blob_.subspan(static_cast<std::size_t>(begin),
                    static_cast<std::size_t>(end - begin)),
      degrees_[v], out, &consumed);
  COREKIT_CHECK(ok);
  COREKIT_CHECK_EQ(consumed, static_cast<std::size_t>(end - begin));
}

Graph CompressedCsr::Decompress() const {
  const VertexId n = NumVertices();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v) + 1] = offsets[v] + degrees_[v];
  }
  std::vector<VertexId> neighbors(static_cast<std::size_t>(offsets.back()));
  std::vector<VertexId> list;
  for (VertexId v = 0; v < n; ++v) {
    DecodeNeighbors(v, &list);
    std::copy(list.begin(), list.end(),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]));
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

std::uint64_t CompressedCsr::TotalBytes() const {
  return static_cast<std::uint64_t>(byte_offsets_.size_bytes()) +
         static_cast<std::uint64_t>(degrees_.size_bytes()) +
         static_cast<std::uint64_t>(blob_.size_bytes());
}

double CompressedCsr::BytesPerEdge() const {
  const EdgeId m = NumEdges();
  return m == 0 ? 0.0
                : static_cast<double>(TotalBytes()) / static_cast<double>(m);
}

}  // namespace corekit
