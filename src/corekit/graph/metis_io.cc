#include "corekit/graph/metis_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corekit/graph/graph_builder.h"

namespace corekit {

namespace {

// Reads one logical line (unbounded length) into `line`; false on EOF.
bool ReadLine(std::FILE* file, std::string& line) {
  line.clear();
  int c;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') return true;
    line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

// Parses whitespace-separated unsigned integers from `text` into `out`.
bool ParseLine(const std::string& text, std::vector<std::uint64_t>& out) {
  out.clear();
  const char* p = text.c_str();
  while (*p != '\0') {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    if (*p == '\0') break;
    if (*p < '0' || *p > '9') return false;
    std::uint64_t value = 0;
    while (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    out.push_back(value);
  }
  return true;
}

}  // namespace

Result<Graph> ReadMetisGraph(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  std::string line;
  std::vector<std::uint64_t> numbers;

  // Header (skipping comments).
  while (true) {
    if (!ReadLine(file, line)) {
      return Status::Corruption("'" + path + "': missing METIS header");
    }
    if (!line.empty() && line[0] == '%') continue;
    if (!ParseLine(line, numbers) || numbers.size() < 2) {
      return Status::Corruption("'" + path + "': malformed METIS header");
    }
    break;
  }
  if (numbers.size() > 2 && numbers[2] != 0) {
    return Status::Unimplemented(
        "'" + path + "': weighted METIS variants are not supported");
  }
  const std::uint64_t n = numbers[0];
  const std::uint64_t declared_m = numbers[1];
  if (n > std::numeric_limits<VertexId>::max() - 1) {
    return Status::Corruption("'" + path + "': vertex count overflow");
  }

  GraphBuilder builder(static_cast<VertexId>(n));
  std::uint64_t vertex = 0;
  while (vertex < n) {
    if (!ReadLine(file, line)) {
      return Status::Corruption("'" + path + "': truncated adjacency (" +
                                std::to_string(vertex) + " of " +
                                std::to_string(n) + " lines)");
    }
    if (!line.empty() && line[0] == '%') continue;
    if (!ParseLine(line, numbers)) {
      return Status::Corruption("'" + path + "': malformed adjacency line " +
                                std::to_string(vertex + 1));
    }
    for (const std::uint64_t raw : numbers) {
      if (raw == 0 || raw > n) {
        return Status::Corruption("'" + path + "': neighbor id " +
                                  std::to_string(raw) + " out of [1, " +
                                  std::to_string(n) + "]");
      }
      builder.AddEdge(static_cast<VertexId>(vertex),
                      static_cast<VertexId>(raw - 1));
    }
    ++vertex;
  }
  Graph graph = builder.Build();
  // The header's m is advisory in the wild; warn-level mismatch is
  // tolerated (duplicates and loops are dropped), but a wildly different
  // count signals a parse problem.
  if (declared_m != 0 && graph.NumEdges() > 2 * declared_m) {
    return Status::Corruption("'" + path + "': edge count mismatch");
  }
  return graph;
}

Status WriteMetisGraph(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  std::fprintf(file, "%u %llu\n", graph.NumVertices(),
               static_cast<unsigned long long>(graph.NumEdges()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nbrs = graph.Neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      std::fprintf(file, i == 0 ? "%u" : " %u", nbrs[i] + 1);
    }
    std::fputc('\n', file);
  }
  if (std::ferror(file)) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace corekit
