// Whole-graph statistics (Table III of the paper: n, m, davg, kmax) plus
// degree-distribution summaries used to sanity-check the synthetic
// dataset stand-ins against the originals' shapes.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"

namespace corekit {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double average_degree = 0.0;
  VertexId max_degree = 0;
  VertexId min_degree = 0;
  // Degeneracy kmax (largest non-empty core); filled by ComputeGraphStats,
  // which runs a core decomposition.
  VertexId degeneracy = 0;
  VertexId num_components = 0;
  VertexId largest_component_size = 0;
};

// Computes the Table III row for `graph` (includes an O(m) core
// decomposition and a components pass).
GraphStats ComputeGraphStats(const Graph& graph);

// Degree histogram: hist[d] = number of vertices of degree d,
// size max_degree + 1 (empty for the empty graph).
std::vector<EdgeId> DegreeHistogram(const Graph& graph);

}  // namespace corekit
