// GraphBuilder: normalizes arbitrary edge lists into simple CSR graphs.
//
// Accepts edges in any order, with duplicates, reversed duplicates and
// self-loops, and produces the undirected simple Graph the paper's
// algorithms assume.  Two-pass counting-sort construction, O(n + m) time.

#pragma once

#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

class GraphBuilder {
 public:
  // `num_vertices` fixes the id space [0, num_vertices); edges touching
  // out-of-range vertices are a programming error.
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  // Appends an undirected edge.  Order of endpoints is irrelevant;
  // self-loops and duplicates are dropped during Build().
  void AddEdge(VertexId u, VertexId v) {
    COREKIT_DCHECK(u < num_vertices_);
    COREKIT_DCHECK(v < num_vertices_);
    edges_.emplace_back(u, v);
  }

  // Bulk append.
  void AddEdges(const EdgeList& edges) {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }

  std::size_t NumPendingEdges() const { return edges_.size(); }

  // Consumes the accumulated edges and produces the normalized graph.
  // The builder is left empty and reusable.
  Graph Build();

  // One-shot convenience: normalize `edges` over [0, num_vertices).
  static Graph FromEdges(VertexId num_vertices, const EdgeList& edges);

 private:
  VertexId num_vertices_;
  EdgeList edges_;
};

}  // namespace corekit
