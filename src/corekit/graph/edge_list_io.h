// Edge-list I/O: SNAP-style text files and a compact binary format.
//
// The paper evaluates on SNAP (http://snap.stanford.edu) and Network
// Repository datasets, both distributed as whitespace-separated edge lists
// with '#' or '%' comment lines.  ReadSnapEdgeList accepts exactly that
// format, relabels arbitrary (possibly sparse) vertex ids into the dense
// [0, n) space, and normalizes into a simple undirected Graph, so the real
// datasets drop into the benchmark harnesses unchanged.
//
// The binary format (magic "CKG1") stores the normalized CSR arrays for
// fast reloads of large graphs.

#pragma once

#include <string>

#include "corekit/graph/graph.h"
#include "corekit/util/status.h"

namespace corekit {

// Reads a SNAP-format text edge list.  Lines starting with '#' or '%' are
// comments; every other non-empty line must hold two integer vertex ids.
// Ids are relabeled densely in order of first appearance.  Self-loops and
// duplicate edges are dropped.
Result<Graph> ReadSnapEdgeList(const std::string& path);

// Writes `graph` as a SNAP-format text edge list (one "u v" line per
// undirected edge, u < v), with a comment header.
Status WriteSnapEdgeList(const Graph& graph, const std::string& path);

// Binary CSR snapshot (magic, n, m, offsets, neighbors), little-endian.
Status WriteBinaryGraph(const Graph& graph, const std::string& path);
Result<Graph> ReadBinaryGraph(const std::string& path);

}  // namespace corekit
