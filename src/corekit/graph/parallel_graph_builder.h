// Parallel CSR construction: the cold-path counterpart of GraphBuilder.
//
// BuildGraphParallel normalizes an edge list into the same simple
// undirected CSR Graph that GraphBuilder::FromEdges produces — bitwise
// identical offsets and neighbor arrays — but does the counting, scatter,
// per-vertex sort and dedup-compaction in parallel on a ThreadPool.
//
// Technique: two-pass counting sort with per-thread degree histograms.
// Each thread counts its slice of the edge list into a private histogram;
// a prefix pass turns the histograms into disjoint per-thread write
// cursors inside each vertex's adjacency block, so the scatter is
// race-free and deterministic.  Because both paths finish by sorting each
// adjacency list and dropping duplicates, the final arrays are identical
// regardless of the intermediate scatter order.

#pragma once

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Normalizes `edges` over the id space [0, num_vertices) exactly like
// GraphBuilder::FromEdges (self-loops and duplicates dropped, adjacency
// sorted).  Falls back to the serial builder when the pool has a single
// thread.
Graph BuildGraphParallel(VertexId num_vertices, const EdgeList& edges,
                         ThreadPool& pool);

}  // namespace corekit
