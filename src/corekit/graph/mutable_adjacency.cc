#include "corekit/graph/mutable_adjacency.h"

#include <algorithm>
#include <utility>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

// Sorted-vector membership / insertion / erasure for the delta lists,
// which stay short (Compact bounds them at a fraction of the base).
bool SortedContains(const std::vector<VertexId>& list, VertexId u) {
  return std::binary_search(list.begin(), list.end(), u);
}

void SortedInsert(std::vector<VertexId>& list, VertexId u) {
  list.insert(std::lower_bound(list.begin(), list.end(), u), u);
}

void SortedErase(std::vector<VertexId>& list, VertexId u) {
  const auto it = std::lower_bound(list.begin(), list.end(), u);
  COREKIT_DCHECK(it != list.end() && *it == u);
  list.erase(it);
}

}  // namespace

MutableAdjacency::MutableAdjacency(VertexId num_vertices)
    : added_(num_vertices), removed_(num_vertices), degree_(num_vertices, 0) {}

MutableAdjacency::MutableAdjacency(const Graph& base)
    : base_(&base),
      added_(base.NumVertices()),
      removed_(base.NumVertices()),
      degree_(base.NumVertices()),
      num_edges_(base.NumEdges()) {
  for (VertexId v = 0; v < base.NumVertices(); ++v) degree_[v] = base.Degree(v);
}

bool MutableAdjacency::InBase(VertexId v, VertexId u) const {
  const std::span<const VertexId> list = BaseNeighbors(v);
  return std::binary_search(list.begin(), list.end(), u);
}

bool MutableAdjacency::HasEdge(VertexId u, VertexId v) const {
  COREKIT_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v) return false;
  if (SortedContains(added_[u], v)) return true;
  return InBase(u, v) && !SortedContains(removed_[u], v);
}

bool MutableAdjacency::AddEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  if (SortedContains(removed_[u], v)) {
    // Restores a base edge: drop the tombstones instead of re-adding.
    SortedErase(removed_[u], v);
    SortedErase(removed_[v], u);
    delta_entries_ -= 2;
  } else {
    SortedInsert(added_[u], v);
    SortedInsert(added_[v], u);
    delta_entries_ += 2;
  }
  ++degree_[u];
  ++degree_[v];
  ++num_edges_;
  MaybeCompact();
  return true;
}

bool MutableAdjacency::RemoveEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  if (SortedContains(added_[u], v)) {
    SortedErase(added_[u], v);
    SortedErase(added_[v], u);
    delta_entries_ -= 2;
  } else {
    SortedInsert(removed_[u], v);
    SortedInsert(removed_[v], u);
    delta_entries_ += 2;
  }
  --degree_[u];
  --degree_[v];
  --num_edges_;
  MaybeCompact();
  return true;
}

std::uint64_t MutableAdjacency::CommonNeighborCount(VertexId u,
                                                    VertexId v) const {
  COREKIT_CHECK(u < NumVertices() && v < NumVertices());
  if (u == v) return 0;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const std::vector<VertexId> smaller = Neighbors(u);
  std::uint64_t common = 0;
  ForEachNeighbor(v, [&](VertexId w) {
    if (std::binary_search(smaller.begin(), smaller.end(), w)) ++common;
  });
  return common;
}

std::vector<VertexId> MutableAdjacency::Neighbors(VertexId v) const {
  std::vector<VertexId> out;
  out.reserve(degree_[v]);
  ForEachNeighbor(v, [&](VertexId u) { out.push_back(u); });
  return out;
}

Graph MutableAdjacency::Materialize() const {
  const VertexId n = NumVertices();
  std::vector<EdgeId> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree_[v];
  }
  std::vector<VertexId> neighbors(offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    EdgeId at = offsets[v];
    ForEachNeighbor(v, [&](VertexId u) { neighbors[at++] = u; });
    COREKIT_DCHECK(at == offsets[v + 1]);
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

void MutableAdjacency::Compact() {
  Graph folded = Materialize();
  owned_base_ = std::move(folded);
  base_ = &owned_base_;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    added_[v].clear();
    removed_[v].clear();
  }
  delta_entries_ = 0;
}

void MutableAdjacency::MaybeCompact() {
  // Amortization: a compaction costs O(n + m); trigger it only once the
  // deltas could have paid for it.
  const std::size_t base_entries =
      base_ != nullptr ? base_->NeighborArray().size() : 0;
  const std::size_t threshold = std::max<std::size_t>(1024, base_entries / 4);
  if (delta_entries_ >= threshold) Compact();
}

}  // namespace corekit
