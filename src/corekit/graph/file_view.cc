#include "corekit/graph/file_view.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(COREKIT_HAVE_MMAP)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace corekit {

FileView::~FileView() {
#if defined(COREKIT_HAVE_MMAP)
  if (mapped_ != nullptr) ::munmap(mapped_, size_);
#endif
}

bool FileView::is_mapped() const {
#if defined(COREKIT_HAVE_MMAP)
  return mapped_ != nullptr;
#else
  return false;
#endif
}

Status FileView::Open(const std::string& path, bool force_fallback,
                      FileView* out) {
#if defined(COREKIT_HAVE_MMAP)
  if (!force_fallback) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IoError("cannot open '" + path + "': " +
                             std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const std::size_t size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return Status::OK();  // empty file, empty view
      }
      void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping holds its own reference
      if (mapped != MAP_FAILED) {
#if defined(MADV_SEQUENTIAL)
        ::madvise(mapped, size, MADV_SEQUENTIAL);
#endif
        out->mapped_ = mapped;
        out->data_ = static_cast<const char*>(mapped);
        out->size_ = size;
        return Status::OK();
      }
      // mmap refused (unusual filesystem); fall back to stdio below.
    } else {
      ::close(fd);  // not a regular file; stdio handles or rejects it
    }
  }
#else
  (void)force_fallback;
#endif
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  std::vector<char> buffer;
  char tmp[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(tmp, 1, sizeof(tmp), f)) > 0) {
    buffer.insert(buffer.end(), tmp, tmp + got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on '" + path + "'");
  out->buffer_ = std::move(buffer);
  out->data_ = out->buffer_.data();
  out->size_ = out->buffer_.size();
  return Status::OK();
}

}  // namespace corekit
