// Fundamental graph typedefs shared across corekit.

#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace corekit {

// Vertices are dense 32-bit ids in [0, n).  2^32-1 vertices is enough for
// every graph in the paper's evaluation (FriendSter has 6.6e7 vertices).
using VertexId = std::uint32_t;

// Edge counts and CSR offsets are 64-bit: FriendSter has 1.8e9 undirected
// edges, i.e. 3.6e9 directed CSR slots, which overflows 32 bits.
using EdgeId = std::uint64_t;

// An undirected edge as an unordered pair of endpoints.
using Edge = std::pair<VertexId, VertexId>;

// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// Edge list convenience alias used by builders and generators.
using EdgeList = std::vector<Edge>;

}  // namespace corekit
