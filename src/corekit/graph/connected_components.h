// Connected components over a Graph or an induced vertex subset.
//
// k-cores are *connected* maximal subgraphs, so connectivity is the bridge
// between the k-core-set view (Problem 1) and the single-k-core view
// (Problem 2) of the paper.

#pragma once

#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// Result of a components computation: a label in [0, num_components) per
// vertex (kInvalidComponent for vertices outside the queried subset).
struct ComponentLabels {
  static constexpr VertexId kInvalidComponent = kInvalidVertex;

  std::vector<VertexId> label;   // per vertex
  VertexId num_components = 0;

  // Groups vertex ids by component label (size num_components).
  std::vector<std::vector<VertexId>> Groups() const;
};

// Components of the whole graph.  O(n + m) BFS.
ComponentLabels ConnectedComponents(const Graph& graph);

// Components of the subgraph induced by `in_subset` (vertex mask of size n).
// Vertices with in_subset[v] == false receive kInvalidComponent.
ComponentLabels InducedConnectedComponents(const Graph& graph,
                                           const std::vector<bool>& in_subset);

}  // namespace corekit
