#include "corekit/graph/ckg_format.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "corekit/graph/file_view.h"

namespace corekit {

namespace {

constexpr char kMagic[8] = {'C', 'K', 'G', 'R', 'A', 'P', 'H', '\n'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagCompressed = 1u << 0;
constexpr std::uint32_t kKnownFlags = kFlagCompressed;
constexpr std::size_t kHeaderBytes = 64;

// The on-disk header.  Field order matches the layout comment in
// ckg_format.h; integers are host-endian (corekit targets
// little-endian platforms, and the checksum catches accidental
// cross-endian reads as corruption).
struct CkgHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t num_vertices;
  std::uint64_t num_directed;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
  std::uint64_t reserved[2];
};
static_assert(sizeof(CkgHeader) == kHeaderBytes);

// Streaming FNV-1a 64.
class Fnv1a {
 public:
  void Update(const void* bytes, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ = (hash_ ^ p[i]) * 1099511628211ull;
    }
  }
  std::uint64_t Digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

// RAII stdio handle (mirrors edge_list_io.cc).
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(what + " in '" + path + "'");
}

// Validates everything the header claims that can be checked against
// the in-memory file image — magic, version, flags, counts, payload
// size, checksum — and returns the parsed copy.
Result<CkgHeader> ParseAndCheckHeader(const char* data, std::size_t size,
                                      const std::string& path) {
  if (size < kHeaderBytes) return Corrupt(path, "truncated header");
  CkgHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("'" + path + "' is not a .ckg graph");
  }
  if (header.version != kVersion) {
    return Corrupt(path, "unsupported version " +
                             std::to_string(header.version));
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    return Corrupt(path, "unknown flags");
  }
  if (header.num_vertices >
      std::numeric_limits<VertexId>::max() - 1) {
    return Corrupt(path, "vertex count overflow");
  }
  if (header.num_directed % 2 != 0) {
    return Corrupt(path, "odd directed edge count");
  }
  // Degree sums cap directed slots at n * (n - 1); cheaper bound: each
  // payload flavor stores at least one byte per directed edge.
  if (header.payload_bytes != size - kHeaderBytes) {
    return Corrupt(path, "payload size mismatch");
  }
  if (header.num_directed > header.payload_bytes) {
    return Corrupt(path, "directed edge count exceeds payload");
  }
  Fnv1a fnv;
  fnv.Update(data + kHeaderBytes, header.payload_bytes);
  if (fnv.Digest() != header.checksum) {
    return Corrupt(path, "checksum mismatch");
  }
  return header;
}

// Opens `path` into a shared FileView so graph views can hold it alive.
Result<std::shared_ptr<FileView>> OpenView(const std::string& path,
                                           bool force_fallback) {
  auto view = std::make_shared<FileView>();
  const Status status = FileView::Open(path, force_fallback, view.get());
  if (!status.ok()) return status;
  return view;
}

// Section pointers for a plain payload; assumes header checks passed.
struct PlainSections {
  std::span<const EdgeId> offsets;
  std::span<const VertexId> neighbors;
};

Result<PlainSections> CheckPlainPayload(const char* data,
                                        const CkgHeader& header,
                                        const std::string& path) {
  const std::uint64_t n = header.num_vertices;
  const std::uint64_t slots = header.num_directed;
  const std::uint64_t expected =
      (n + 1) * sizeof(EdgeId) + slots * sizeof(VertexId);
  if (header.payload_bytes != expected) {
    return Corrupt(path, "plain payload size mismatch");
  }
  // The header sits at a 64-byte boundary of a page-aligned mapping (or
  // a max_align_t-aligned fallback buffer), so both sections are
  // naturally aligned for their element types.
  const auto* offsets =
      reinterpret_cast<const EdgeId*>(data + kHeaderBytes);
  const auto* neighbors = reinterpret_cast<const VertexId*>(
      data + kHeaderBytes + (n + 1) * sizeof(EdgeId));
  if (offsets[0] != 0 || offsets[n] != slots) {
    return Corrupt(path, "inconsistent CSR");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1] || offsets[v + 1] > slots) {
      return Corrupt(path, "non-monotone offsets");
    }
    for (EdgeId i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (neighbors[i] >= n || neighbors[i] == v ||
          (i > offsets[v] && neighbors[i - 1] >= neighbors[i])) {
        return Corrupt(path, "invalid adjacency");
      }
    }
  }
  return PlainSections{
      {offsets, static_cast<std::size_t>(n) + 1},
      {neighbors, static_cast<std::size_t>(slots)}};
}

// Section pointers for a compressed payload; every per-vertex stream
// is decode-validated.
struct CompressedSections {
  std::span<const std::uint64_t> byte_offsets;
  std::span<const std::uint32_t> degrees;
  std::span<const std::uint8_t> blob;
};

Result<CompressedSections> CheckCompressedPayload(const char* data,
                                                  const CkgHeader& header,
                                                  const std::string& path) {
  const std::uint64_t n = header.num_vertices;
  const std::uint64_t fixed =
      (n + 1) * sizeof(std::uint64_t) + n * sizeof(std::uint32_t);
  if (header.payload_bytes < fixed) {
    return Corrupt(path, "compressed payload too small");
  }
  const std::uint64_t blob_bytes = header.payload_bytes - fixed;
  const auto* byte_offsets =
      reinterpret_cast<const std::uint64_t*>(data + kHeaderBytes);
  const auto* degrees = reinterpret_cast<const std::uint32_t*>(
      data + kHeaderBytes + (n + 1) * sizeof(std::uint64_t));
  const auto* blob =
      reinterpret_cast<const std::uint8_t*>(data + kHeaderBytes + fixed);
  if (byte_offsets[0] != 0 || byte_offsets[n] != blob_bytes) {
    return Corrupt(path, "inconsistent byte offsets");
  }
  std::uint64_t degree_sum = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (byte_offsets[v] > byte_offsets[v + 1]) {
      return Corrupt(path, "non-monotone byte offsets");
    }
    degree_sum += degrees[v];
  }
  if (degree_sum != header.num_directed) {
    return Corrupt(path, "degree sum mismatch");
  }
  // Decode-validate every vertex: the stream must decode exactly, fill
  // exactly its byte range, and yield in-range self-loop-free ids (the
  // codec itself guarantees strictly increasing values).
  std::vector<std::uint32_t> list;
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t begin = byte_offsets[v];
    const std::uint64_t end = byte_offsets[v + 1];
    std::size_t consumed = 0;
    if (!csr_codec::DecodeSortedList(
            {blob + begin, static_cast<std::size_t>(end - begin)},
            degrees[v], &list, &consumed) ||
        consumed != end - begin) {
      return Corrupt(path, "undecodable adjacency stream");
    }
    for (const std::uint32_t u : list) {
      if (u >= n || u == v) return Corrupt(path, "invalid adjacency");
    }
  }
  return CompressedSections{
      {byte_offsets, static_cast<std::size_t>(n) + 1},
      {degrees, static_cast<std::size_t>(n)},
      {blob, static_cast<std::size_t>(blob_bytes)}};
}

}  // namespace

bool HasCkgExtension(const std::string& path) {
  constexpr std::string_view kExt = ".ckg";
  return path.size() >= kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

Status WriteCkgGraph(const Graph& graph, const std::string& path,
                     const CkgWriteOptions& options) {
  CkgHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_vertices = graph.NumVertices();
  header.num_directed = graph.NeighborArray().size();

  CompressedCsr compressed;
  std::vector<std::span<const char>> sections;
  if (options.compressed) {
    compressed = CompressedCsr::FromGraph(graph);
    header.flags = kFlagCompressed;
    sections = {
        {reinterpret_cast<const char*>(compressed.ByteOffsets().data()),
         compressed.ByteOffsets().size_bytes()},
        {reinterpret_cast<const char*>(compressed.Degrees().data()),
         compressed.Degrees().size_bytes()},
        {reinterpret_cast<const char*>(compressed.Blob().data()),
         compressed.Blob().size_bytes()}};
  } else {
    sections = {
        {reinterpret_cast<const char*>(graph.Offsets().data()),
         graph.Offsets().size_bytes()},
        {reinterpret_cast<const char*>(graph.NeighborArray().data()),
         graph.NeighborArray().size_bytes()}};
  }

  Fnv1a fnv;
  for (const auto section : sections) {
    header.payload_bytes += section.size();
    fnv.Update(section.data(), section.size());
  }
  header.checksum = fnv.Digest();

  File file(path, "wb");
  if (!file.ok()) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  bool ok =
      std::fwrite(&header, sizeof(header), 1, file.get()) == 1;
  for (const auto section : sections) {
    ok = ok && (section.empty() ||
                std::fwrite(section.data(), 1, section.size(), file.get()) ==
                    section.size());
  }
  if (!ok) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

Result<Graph> ReadCkgGraph(const std::string& path,
                           const CkgReadOptions& options) {
  Result<std::shared_ptr<FileView>> view =
      OpenView(path, options.force_fallback);
  if (!view.ok()) return view.status();
  Result<CkgHeader> header =
      ParseAndCheckHeader((*view)->data(), (*view)->size(), path);
  if (!header.ok()) return header.status();

  if ((header->flags & kFlagCompressed) != 0) {
    Result<CompressedSections> sections =
        CheckCompressedPayload((*view)->data(), *header, path);
    if (!sections.ok()) return sections.status();
    // Compressed payloads decode into an owning graph; the view is
    // only needed during decompression.
    return CompressedCsr::FromParts(sections->byte_offsets,
                                    sections->degrees, sections->blob,
                                    header->num_directed, *view)
        .Decompress();
  }

  Result<PlainSections> sections =
      CheckPlainPayload((*view)->data(), *header, path);
  if (!sections.ok()) return sections.status();
  return Graph::FromView(sections->offsets, sections->neighbors, *view);
}

Result<CompressedCsr> ReadCkgCompressed(const std::string& path,
                                        const CkgReadOptions& options) {
  Result<std::shared_ptr<FileView>> view =
      OpenView(path, options.force_fallback);
  if (!view.ok()) return view.status();
  Result<CkgHeader> header =
      ParseAndCheckHeader((*view)->data(), (*view)->size(), path);
  if (!header.ok()) return header.status();
  if ((header->flags & kFlagCompressed) == 0) {
    return Corrupt(path, "expected compressed payload");
  }
  Result<CompressedSections> sections =
      CheckCompressedPayload((*view)->data(), *header, path);
  if (!sections.ok()) return sections.status();
  return CompressedCsr::FromParts(sections->byte_offsets, sections->degrees,
                                  sections->blob, header->num_directed,
                                  *view);
}

Result<CkgInfo> ReadCkgInfo(const std::string& path) {
  // Header-only read: size + checksum claims about the payload are
  // still verified (the payload must be present and hash correctly),
  // which keeps "info says X" trustworthy for tooling.
  Result<std::shared_ptr<FileView>> view =
      OpenView(path, /*force_fallback=*/false);
  if (!view.ok()) return view.status();
  Result<CkgHeader> header =
      ParseAndCheckHeader((*view)->data(), (*view)->size(), path);
  if (!header.ok()) return header.status();
  CkgInfo info;
  info.compressed = (header->flags & kFlagCompressed) != 0;
  info.num_vertices = static_cast<VertexId>(header->num_vertices);
  info.num_edges = header->num_directed / 2;
  info.payload_bytes = header->payload_bytes;
  return info;
}

}  // namespace corekit
