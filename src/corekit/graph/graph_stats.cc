#include "corekit/graph/graph_stats.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "corekit/graph/connected_components.h"

namespace corekit {

namespace {

// Degeneracy by the classic O(n + m) bin-sort peel (Matula–Beck).  The
// full decomposition lives in core/core_decomposition.cc; this local copy
// keeps the graph layer below core/ (corekit_lint enforces that layering),
// and a graph-level stat should not drag in the solver stack anyway.
VertexId Degeneracy(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return 0;
  VertexId max_degree = 0;
  std::vector<VertexId> degree(n);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Vertices bin-sorted by current degree: bin[d] is the first position of
  // degree d in `order`; pos[v] inverts `order`.
  std::vector<VertexId> bin(static_cast<std::size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (std::size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> order(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      order[pos[v]] = v;
    }
  }
  VertexId degeneracy = 0;
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    degeneracy = std::max(degeneracy, degree[v]);
    for (const VertexId u : graph.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;
      // Swap u with the first vertex of its degree bucket, then shrink
      // the bucket: u's degree drops by one in O(1).
      const VertexId d = degree[u];
      const VertexId first = order[bin[d]];
      std::swap(order[pos[u]], order[bin[d]]);
      std::swap(pos[u], pos[first]);
      ++bin[d];
      --degree[u];
    }
  }
  return degeneracy;
}

}  // namespace

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.average_degree = graph.AverageDegree();

  const VertexId n = graph.NumVertices();
  if (n == 0) return stats;

  stats.min_degree = graph.Degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId d = graph.Degree(v);
    stats.max_degree = std::max(stats.max_degree, d);
    stats.min_degree = std::min(stats.min_degree, d);
  }

  stats.degeneracy = Degeneracy(graph);

  const ComponentLabels components = ConnectedComponents(graph);
  stats.num_components = components.num_components;
  std::vector<VertexId> sizes(components.num_components, 0);
  for (const VertexId label : components.label) ++sizes[label];
  for (const VertexId size : sizes) {
    stats.largest_component_size = std::max(stats.largest_component_size, size);
  }
  return stats;
}

std::vector<EdgeId> DegreeHistogram(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return {};
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, graph.Degree(v));
  }
  std::vector<EdgeId> hist(static_cast<std::size_t>(max_degree) + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++hist[graph.Degree(v)];
  return hist;
}

}  // namespace corekit
