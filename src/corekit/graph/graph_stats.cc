#include "corekit/graph/graph_stats.h"

#include <algorithm>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/connected_components.h"

namespace corekit {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.average_degree = graph.AverageDegree();

  const VertexId n = graph.NumVertices();
  if (n == 0) return stats;

  stats.min_degree = graph.Degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId d = graph.Degree(v);
    stats.max_degree = std::max(stats.max_degree, d);
    stats.min_degree = std::min(stats.min_degree, d);
  }

  stats.degeneracy = ComputeCoreDecomposition(graph).kmax;

  const ComponentLabels components = ConnectedComponents(graph);
  stats.num_components = components.num_components;
  std::vector<VertexId> sizes(components.num_components, 0);
  for (const VertexId label : components.label) ++sizes[label];
  for (const VertexId size : sizes) {
    stats.largest_component_size = std::max(stats.largest_component_size, size);
  }
  return stats;
}

std::vector<EdgeId> DegreeHistogram(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return {};
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, graph.Degree(v));
  }
  std::vector<EdgeId> hist(static_cast<std::size_t>(max_degree) + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++hist[graph.Degree(v)];
  return hist;
}

}  // namespace corekit
