#include "corekit/graph/graph.h"

#include <algorithm>
#include <utility>

#include "corekit/simd/intersect.h"

namespace corekit {

Graph::Graph() : owned_offsets_{0} { Rebind(); }

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : owned_offsets_(std::move(offsets)),
      owned_neighbors_(std::move(neighbors)) {
  Rebind();
  Validate();
}

Graph Graph::FromView(std::span<const EdgeId> offsets,
                      std::span<const VertexId> neighbors,
                      std::shared_ptr<const void> backing) {
  Graph graph;
  graph.owned_offsets_.clear();
  graph.backing_ = std::move(backing);
  graph.offsets_ = offsets;
  graph.neighbors_ = neighbors;
  graph.Validate();
  return graph;
}

Graph::Graph(const Graph& other)
    : owned_offsets_(other.owned_offsets_),
      owned_neighbors_(other.owned_neighbors_),
      backing_(other.backing_) {
  if (backing_ == nullptr) {
    Rebind();
  } else {
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) *this = Graph(other);
  return *this;
}

void Graph::Rebind() {
  offsets_ = owned_offsets_;
  neighbors_ = owned_neighbors_;
}

void Graph::Validate() const {
  COREKIT_CHECK(!offsets_.empty());
  COREKIT_CHECK_EQ(offsets_.front(), 0u);
  COREKIT_CHECK_EQ(offsets_.back(), neighbors_.size());
#ifndef NDEBUG
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    COREKIT_DCHECK(offsets_[v] <= offsets_[v + 1]);
    for (EdgeId i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      COREKIT_DCHECK(neighbors_[i] < n);
      COREKIT_DCHECK(neighbors_[i] != v);  // no self-loops
      if (i > offsets_[v]) {
        COREKIT_DCHECK(neighbors_[i - 1] < neighbors_[i]);  // sorted, unique
      }
    }
  }
#endif
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  COREKIT_DCHECK(u < NumVertices());
  COREKIT_DCHECK(v < NumVertices());
  if (Degree(u) > Degree(v)) std::swap(u, v);
  return simd::SortedContains(Neighbors(u), v);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList edges;
  edges.reserve(NumEdges());
  const VertexId n = NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace corekit
