#include "corekit/graph/graph.h"

#include <algorithm>

namespace corekit {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  COREKIT_CHECK(!offsets_.empty());
  COREKIT_CHECK_EQ(offsets_.front(), 0u);
  COREKIT_CHECK_EQ(offsets_.back(), neighbors_.size());
#ifndef NDEBUG
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    COREKIT_DCHECK(offsets_[v] <= offsets_[v + 1]);
    for (EdgeId i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      COREKIT_DCHECK(neighbors_[i] < n);
      COREKIT_DCHECK(neighbors_[i] != v);  // no self-loops
      if (i > offsets_[v]) {
        COREKIT_DCHECK(neighbors_[i - 1] < neighbors_[i]);  // sorted, unique
      }
    }
  }
#endif
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  COREKIT_DCHECK(u < NumVertices());
  COREKIT_DCHECK(v < NumVertices());
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList edges;
  edges.reserve(NumEdges());
  const VertexId n = NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace corekit
