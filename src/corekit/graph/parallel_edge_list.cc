#include "corekit/graph/parallel_edge_list.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "corekit/graph/edge_list_parse.h"
#include "corekit/graph/file_view.h"
#include "corekit/graph/parallel_graph_builder.h"

namespace corekit {

namespace {

using edge_list_internal::ClassifyLine;
using edge_list_internal::kMaxLineBytes;
using edge_list_internal::LineKind;
using edge_list_internal::ParseUint;
using edge_list_internal::ParseUintResult;

// Per-chunk parse output.  `pairs` holds raw (pre-relabel) endpoint ids
// in file order; `num_lines` counts every line started in the chunk so
// errors can be mapped back to absolute line numbers.
struct ChunkResult {
  enum class Error { kNone, kMalformed, kOverflow, kOverlong };

  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  std::size_t num_lines = 0;
  std::uint64_t max_raw = 0;
  Error error = Error::kNone;
  std::size_t error_line = 0;  // 1-based within the chunk
};

// Parses the lines starting in [begin, end).  A line may extend past
// `end`; it is still owned (and fully read) by this chunk, and the next
// chunk's range starts after its newline.
void ParseChunk(const char* data, std::size_t file_size, std::size_t begin,
                std::size_t end, ChunkResult* out) {
  std::size_t pos = begin;
  while (pos < end) {
    const char* line_begin = data + pos;
    const void* nl = std::memchr(line_begin, '\n', file_size - pos);
    const char* line_end =
        nl != nullptr ? static_cast<const char*>(nl) : data + file_size;
    ++out->num_lines;
    const std::size_t len = static_cast<std::size_t>(line_end - line_begin);
    // The serial reader's fixed-buffer contract: a line longer than 4095
    // content bytes is a Corruption, except a final unterminated line of
    // exactly 4095 bytes (where fgets sees EOF instead of more data).
    const bool at_eof = line_end == data + file_size;
    if (len > kMaxLineBytes || (len == kMaxLineBytes && !at_eof)) {
      out->error = ChunkResult::Error::kOverlong;
      out->error_line = out->num_lines;
      return;
    }
    const char* p = line_begin;
    if (ClassifyLine(&p, line_end) == LineKind::kEdge) {
      std::uint64_t raw_u = 0;
      std::uint64_t raw_v = 0;
      for (std::uint64_t* raw : {&raw_u, &raw_v}) {
        switch (ParseUint(&p, line_end, raw)) {
          case ParseUintResult::kOk:
            break;
          case ParseUintResult::kNoDigits:
            out->error = ChunkResult::Error::kMalformed;
            out->error_line = out->num_lines;
            return;
          case ParseUintResult::kOverflow:
            out->error = ChunkResult::Error::kOverflow;
            out->error_line = out->num_lines;
            return;
        }
      }
      out->pairs.emplace_back(raw_u, raw_v);
      out->max_raw = std::max({out->max_raw, raw_u, raw_v});
    }
    pos = static_cast<std::size_t>(line_end - data) + (nl != nullptr ? 1 : 0);
  }
}

}  // namespace

Result<ParsedEdgeList> ParseSnapEdgeListParallel(
    const std::string& path, ThreadPool& pool,
    const ParallelIngestOptions& options) {
  FileView view;
  const Status open_status = FileView::Open(path, options.force_fallback, &view);
  if (!open_status.ok()) return open_status;

  ParsedEdgeList result;
  const std::size_t size = view.size();
  if (size == 0) return result;  // empty file -> empty graph
  const char* data = view.data();

  std::size_t chunk_bytes = options.chunk_bytes;
  if (chunk_bytes == 0) {
    // A few chunks per thread so one skewed chunk cannot serialize the
    // tail, but large enough to amortize per-chunk dispatch.
    const std::size_t target =
        size / (static_cast<std::size_t>(pool.num_threads()) * 4 + 1) + 1;
    chunk_bytes = std::clamp<std::size_t>(target, std::size_t{1} << 16,
                                          std::size_t{1} << 26);
  }

  // Chunk i owns the lines that *start* in [starts[i], starts[i + 1]).
  // A raw boundary lands mid-line; the owning chunk keeps that whole
  // line and the next chunk begins at the first line start at or after
  // the boundary.
  const std::size_t num_chunks = (size + chunk_bytes - 1) / chunk_bytes;
  std::vector<std::size_t> starts;
  starts.reserve(num_chunks + 1);
  starts.push_back(0);
  for (std::size_t i = 1; i < num_chunks; ++i) {
    const std::size_t raw = i * chunk_bytes;
    std::size_t start = 0;
    if (data[raw - 1] == '\n') {
      start = raw;
    } else {
      const void* nl = std::memchr(data + raw, '\n', size - raw);
      start = nl != nullptr
                  ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                             data) +
                        1
                  : size;
    }
    // A line longer than chunk_bytes can swallow whole raw boundaries;
    // keep starts strictly increasing so no chunk is empty.
    if (start > starts.back() && start < size) starts.push_back(start);
  }
  starts.push_back(size);

  const std::size_t chunk_count = starts.size() - 1;
  std::vector<ChunkResult> chunks(chunk_count);
  pool.ParallelFor(chunk_count, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t i = cb; i < ce; ++i) {
      ParseChunk(data, size, starts[i], starts[i + 1], &chunks[i]);
    }
  });

  // First error in chunk order == first error in file order (each chunk
  // stops at its first error, and all chunks before it are error-free,
  // so their line counts are complete).
  std::size_t lines_before = 0;
  std::size_t total_pairs = 0;
  std::uint64_t max_raw = 0;
  for (const ChunkResult& chunk : chunks) {
    if (chunk.error != ChunkResult::Error::kNone) {
      const std::string at =
          " at " + path + ":" + std::to_string(lines_before + chunk.error_line);
      switch (chunk.error) {
        case ChunkResult::Error::kMalformed:
          return Status::Corruption("malformed edge" + at);
        case ChunkResult::Error::kOverflow:
          return Status::Corruption("vertex id overflows 64 bits" + at);
        case ChunkResult::Error::kOverlong:
          return Status::Corruption(
              "line exceeds " + std::to_string(kMaxLineBytes) + " bytes" + at);
        case ChunkResult::Error::kNone:
          break;
      }
    }
    lines_before += chunk.num_lines;
    total_pairs += chunk.pairs.size();
    max_raw = std::max(max_raw, chunk.max_raw);
  }

  // Relabel serially in chunk (== file) order so ids are assigned in
  // first-appearance order, matching ReadSnapEdgeList exactly.  When the
  // raw id space is not absurdly sparse a direct-mapped table replaces
  // the hash map; both assign identical ids.
  result.edges.reserve(total_pairs);
  if (total_pairs == 0) return result;
  const bool dense_ok =
      max_raw < std::max<std::uint64_t>(std::uint64_t{1} << 20,
                                        8 * static_cast<std::uint64_t>(
                                                total_pairs));
  if (dense_ok) {
    std::vector<VertexId> map(static_cast<std::size_t>(max_raw) + 1,
                              kInvalidVertex);
    VertexId next = 0;
    for (const ChunkResult& chunk : chunks) {
      for (const auto& [raw_u, raw_v] : chunk.pairs) {
        VertexId& mu = map[static_cast<std::size_t>(raw_u)];
        if (mu == kInvalidVertex) mu = next++;
        VertexId& mv = map[static_cast<std::size_t>(raw_v)];
        if (mv == kInvalidVertex) mv = next++;
        result.edges.emplace_back(mu, mv);
      }
    }
    result.num_vertices = next;
  } else {
    std::unordered_map<std::uint64_t, VertexId> relabel;
    auto intern = [&relabel](std::uint64_t raw) {
      const auto [it, inserted] =
          relabel.try_emplace(raw, static_cast<VertexId>(relabel.size()));
      (void)inserted;
      return it->second;
    };
    for (const ChunkResult& chunk : chunks) {
      for (const auto& [raw_u, raw_v] : chunk.pairs) {
        // u before v, explicitly sequenced like the dense path (and the
        // serial reader): argument evaluation order is unspecified.
        const VertexId u = intern(raw_u);
        const VertexId v = intern(raw_v);
        result.edges.emplace_back(u, v);
      }
    }
    result.num_vertices = static_cast<VertexId>(relabel.size());
  }
  return result;
}

Result<Graph> ReadSnapEdgeListParallel(const std::string& path,
                                       ThreadPool& pool,
                                       const ParallelIngestOptions& options) {
  Result<ParsedEdgeList> parsed =
      ParseSnapEdgeListParallel(path, pool, options);
  if (!parsed.ok()) return parsed.status();
  return BuildGraphParallel(parsed->num_vertices, parsed->edges, pool);
}

}  // namespace corekit
