// Compressed CSR adjacency: per-vertex delta-encoded neighbor gaps in
// group-varint (StreamVByte-style) byte streams, decodable per vertex
// without touching any other vertex.
//
// Encoding per vertex: the first neighbor id is stored absolutely;
// every later value stores (gap - 1), which is exact because adjacency
// lists are strictly increasing.  Values are packed four at a time
// behind a control byte whose 2-bit lanes give each value's byte
// length (1..4, little-endian, minimal).  A vertex of degree d starts
// at byte_offsets[v] and occupies byte_offsets[v+1] - byte_offsets[v]
// bytes; degree-0 vertices occupy zero bytes.
//
// Space: degrees[n] (4 B) + byte_offsets[n+1] (8 B) + blob.  The blob
// averages 1-2 bytes per directed edge on the bench graphs versus 4 in
// plain CSR, so the format wins bytes/edge whenever average degree
// exceeds ~1.6 (every bench dataset qualifies); bench/ext_compression
// reports the measured ratio per dataset.
//
// Like Graph, the container has an owning mode (FromGraph) and a
// zero-copy view mode (FromParts with a backing allocation, used by
// the .ckg reader over an mmap'd file).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

namespace csr_codec {

// Appends the group-varint delta encoding of a strictly increasing
// sequence to `out`.  Empty input appends nothing.
void EncodeSortedList(std::span<const std::uint32_t> values,
                      std::vector<std::uint8_t>* out);

// Decodes exactly `count` values from the front of `bytes` into `out`
// (cleared first).  Returns false — leaving *out unspecified — if the
// stream is truncated, a value overflows 32 bits, or an unused control
// lane in the tail group is nonzero (the encoder always emits zeros
// there, so nonzero means corruption).  On success *consumed is the
// number of bytes read.
bool DecodeSortedList(std::span<const std::uint8_t> bytes, std::size_t count,
                      std::vector<std::uint32_t>* out, std::size_t* consumed);

}  // namespace csr_codec

class CompressedCsr {
 public:
  // An empty graph (0 vertices).
  CompressedCsr();

  // Compresses a plain CSR graph.  O(m) time, owns its arrays.
  static CompressedCsr FromGraph(const Graph& graph);

  // Wraps externally owned sections without copying; `backing` keeps
  // them alive (the .ckg reader passes the mmap'd file).  The caller
  // must have validated the sections: byte_offsets has n+1 monotone
  // entries ending at blob.size(), degrees sums to num_directed, and
  // every per-vertex stream decodes to a valid adjacency list.
  static CompressedCsr FromParts(std::span<const std::uint64_t> byte_offsets,
                                 std::span<const std::uint32_t> degrees,
                                 std::span<const std::uint8_t> blob,
                                 EdgeId num_directed,
                                 std::shared_ptr<const void> backing);

  CompressedCsr(const CompressedCsr& other);
  CompressedCsr& operator=(const CompressedCsr& other);
  CompressedCsr(CompressedCsr&&) noexcept = default;
  CompressedCsr& operator=(CompressedCsr&&) noexcept = default;

  VertexId NumVertices() const {
    return static_cast<VertexId>(byte_offsets_.size() - 1);
  }
  EdgeId NumEdges() const { return num_directed_ / 2; }
  VertexId Degree(VertexId v) const { return degrees_[v]; }

  // Decodes v's adjacency list into `out` (cleared first).  CHECK-fails
  // on undecodable bytes — impossible for FromGraph data and excluded
  // for FromParts data by the caller's validation contract.
  void DecodeNeighbors(VertexId v, std::vector<VertexId>* out) const;

  // Expands back to plain CSR.  Exact inverse of FromGraph.
  Graph Decompress() const;

  // Bytes of the three sections (what a .ckg compressed payload
  // stores); excludes allocator slack.
  std::uint64_t TotalBytes() const;

  // TotalBytes over undirected edge count (0 for edgeless graphs).
  double BytesPerEdge() const;

  // Section access for the .ckg writer.
  std::span<const std::uint64_t> ByteOffsets() const { return byte_offsets_; }
  std::span<const std::uint32_t> Degrees() const { return degrees_; }
  std::span<const std::uint8_t> Blob() const { return blob_; }

 private:
  void Rebind();

  std::vector<std::uint64_t> owned_byte_offsets_;
  std::vector<std::uint32_t> owned_degrees_;
  std::vector<std::uint8_t> owned_blob_;
  std::shared_ptr<const void> backing_;  // view mode: keeps spans alive
  std::span<const std::uint64_t> byte_offsets_;  // n+1 entries
  std::span<const std::uint32_t> degrees_;       // n entries
  std::span<const std::uint8_t> blob_;
  EdgeId num_directed_ = 0;  // 2m
};

}  // namespace corekit
