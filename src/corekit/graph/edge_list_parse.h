// Shared line-level parsing primitives for the SNAP edge-list readers.
//
// The serial reader (edge_list_io.cc) and the parallel chunked reader
// (parallel_edge_list.cc) must agree byte for byte on what a line means —
// the same comment handling, the same integer grammar, the same overflow
// rule — or the differential tests that pin the parallel cold path to the
// serial one would chase phantom mismatches.  This header is that single
// definition.  Internal: not exported through corekit.h.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace corekit {
namespace edge_list_internal {

// The serial reader parses through a fixed fgets buffer of 4096 bytes;
// lines longer than 4095 content bytes are a Corruption (they would
// otherwise silently split into bogus edges).  The parallel reader has no
// buffer but enforces the same contract so both paths accept exactly the
// same files.
inline constexpr std::size_t kMaxLineBytes = 4095;

enum class ParseUintResult {
  kOk,
  kNoDigits,
  kOverflow,  // the literal does not fit in 64 bits
};

// Parses an unsigned decimal integer from [*p, end); advances *p past the
// digits on success.  Leading ' ', '\t' and ',' separators are skipped
// (SNAP and Network Repository files mix all three).
inline ParseUintResult ParseUint(const char** p, const char* end,
                                 std::uint64_t* out) {
  const char* s = *p;
  while (s != end && (*s == ' ' || *s == '\t' || *s == ',')) ++s;
  if (s == end || *s < '0' || *s > '9') return ParseUintResult::kNoDigits;
  std::uint64_t value = 0;
  while (s != end && *s >= '0' && *s <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*s - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return ParseUintResult::kOverflow;  // would wrap silently otherwise
    }
    value = value * 10 + digit;
    ++s;
  }
  *p = s;
  *out = value;
  return ParseUintResult::kOk;
}

enum class LineKind {
  kSkip,  // blank or comment line
  kEdge,  // must parse as two integers
};

// Classifies the line content [*p, end) (terminating newline excluded)
// and advances *p past leading blanks, mirroring the serial reader's
// pre-parse skip.
inline LineKind ClassifyLine(const char** p, const char* end) {
  const char* s = *p;
  while (s != end && (*s == ' ' || *s == '\t')) ++s;
  *p = s;
  if (s == end || *s == '\n' || *s == '\r' || *s == '#' || *s == '%') {
    return LineKind::kSkip;
  }
  return LineKind::kEdge;
}

}  // namespace edge_list_internal
}  // namespace corekit
