// Induced-subgraph extraction.
//
// The baseline algorithms (Sections III-A and IV-B of the paper) and the
// naive test oracles repeatedly materialize the subgraph induced by a
// k-core (set); this module provides that operation with an id mapping
// back to the parent graph.

#pragma once

#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// A subgraph induced by a vertex subset of a parent graph, with dense local
// ids and a mapping back to parent ids.
struct InducedSubgraph {
  Graph graph;
  // local id -> parent id; size graph.NumVertices().
  std::vector<VertexId> to_parent;
};

// Extracts the subgraph induced by `vertices` (parent ids, need not be
// sorted; duplicates are a programming error).  O(sum of degrees).
InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<VertexId>& vertices);

// Mask overload; vertices with mask[v] == true are kept, in increasing id
// order.
InducedSubgraph ExtractInducedSubgraph(const Graph& graph,
                                       const std::vector<bool>& mask);

}  // namespace corekit
