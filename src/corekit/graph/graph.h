// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the storage substrate every algorithm in corekit runs on.  It
// mirrors the paper's setting exactly: undirected, unweighted, simple
// (no self-loops, no parallel edges), static.  Construction goes through
// GraphBuilder (graph_builder.h), which normalizes arbitrary edge lists.
//
// Memory: offsets[n+1] (8 bytes each) + neighbors[2m] (4 bytes each), i.e.
// the O(m) space bound the paper's optimality argument assumes.
//
// Storage comes in two modes behind one API.  The common mode owns its
// CSR vectors.  The view mode (FromView) borrows pre-validated arrays
// from an external allocation — typically an mmap'd .ckg file — and
// keeps that allocation alive through a type-erased shared_ptr, so a
// cold start never copies the adjacency.

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "corekit/graph/types.h"
#include "corekit/util/logging.h"

namespace corekit {

class Graph {
 public:
  // An empty graph (0 vertices).
  Graph();

  // Takes ownership of validated CSR arrays.  `offsets` has n+1 entries with
  // offsets[0] == 0 and offsets[n] == neighbors.size(); each adjacency list
  // must be sorted, self-loop-free and duplicate-free.  Validated with
  // CHECKs in debug builds; use GraphBuilder rather than calling this
  // directly.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors);

  // Wraps externally owned CSR arrays without copying.  `backing` keeps
  // the memory behind both spans alive for the graph's lifetime (and
  // the lifetime of every copy).  Same validity contract — and the same
  // debug-build validation — as the owning constructor; the .ckg reader
  // fully validates untrusted bytes before calling this.
  static Graph FromView(std::span<const EdgeId> offsets,
                        std::span<const VertexId> neighbors,
                        std::shared_ptr<const void> backing);

  // Copies rebind the spans onto the copy's own vectors in owned mode
  // and share `backing` in view mode.  Moves are cheap; a moved-from
  // graph is valid only for destruction or assignment.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  // Number of vertices n.
  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  // Number of undirected edges m.
  EdgeId NumEdges() const { return offsets_.back() / 2; }

  // Degree of v in the whole graph.
  VertexId Degree(VertexId v) const {
    COREKIT_DCHECK(v < NumVertices());
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbors of v, sorted ascending by vertex id.
  std::span<const VertexId> Neighbors(VertexId v) const {
    COREKIT_DCHECK(v < NumVertices());
    return {neighbors_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  // True if the undirected edge (u, v) exists.  O(log deg) via binary search
  // on the smaller adjacency list.
  bool HasEdge(VertexId u, VertexId v) const;

  // Average degree 2m/n (0 for the empty graph).
  double AverageDegree() const {
    const VertexId n = NumVertices();
    return n == 0 ? 0.0
                  : static_cast<double>(offsets_.back()) /
                        static_cast<double>(n);
  }

  // Raw CSR access for algorithms that re-permute the graph (Algorithm 1).
  std::span<const EdgeId> Offsets() const { return offsets_; }
  std::span<const VertexId> NeighborArray() const { return neighbors_; }

  // True when the CSR arrays live in external (e.g. mmap'd) memory.
  bool IsView() const { return backing_ != nullptr; }

  // Materializes the edge list with u < v per edge, ordered by (u, v).
  EdgeList ToEdgeList() const;

 private:
  // CHECKs the CSR invariants on whatever the spans currently cover.
  void Validate() const;
  // Points the spans at the owned vectors.
  void Rebind();

  std::vector<EdgeId> owned_offsets_;
  std::vector<VertexId> owned_neighbors_;
  std::shared_ptr<const void> backing_;  // view mode: keeps spans alive
  std::span<const EdgeId> offsets_;      // n+1 entries
  std::span<const VertexId> neighbors_;  // 2m entries
};

}  // namespace corekit
