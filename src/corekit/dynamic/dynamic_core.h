// Incremental core maintenance: coreness under edge insertions and
// deletions without recomputation (the traversal/subcore algorithms of
// Sariyuce et al., VLDB 2013 — the streaming counterpart of the paper's
// static setting, and the substrate one needs to keep best-k answers
// fresh on evolving graphs).
//
// Key structural facts the algorithms exploit:
//   * one edge update changes any vertex's coreness by at most 1;
//   * after inserting (u, v), only vertices in the *subcore* of the
//     lower-coreness endpoint — coreness-k vertices reachable from it
//     through coreness-k paths — can gain;
//   * after deleting (u, v), only coreness-k vertices in the affected
//     subcore can lose (k = the smaller endpoint coreness).
//
// Insertion runs a candidate BFS plus an eviction cascade; deletion runs
// a degree-support cascade.  Both touch O(|subcore|) vertices — on real
// graphs orders of magnitude below n (see bench/ext_dynamic).
//
// Storage is a MutableAdjacency (graph/mutable_adjacency.h): a borrowed
// base CSR plus small sorted deltas, so adopting an engine's existing
// Graph costs O(n) instead of an O(m) adjacency copy.  ApplyBatch is the
// engine-facing entry point: it applies a batch of updates, accumulates
// subcore footprints, and reports the triangle/triplet count deltas the
// engine needs for selective cache invalidation.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/mutable_adjacency.h"
#include "corekit/graph/types.h"

namespace corekit {

// What one ApplyBatch did, in the units the engine's invalidation logic
// keys on.
struct DynamicBatchStats {
  std::uint32_t inserted = 0;  // edges actually added
  std::uint32_t deleted = 0;   // edges actually removed
  // Updates that changed nothing: self-loops, out-of-range endpoints,
  // duplicate inserts, deletes of absent edges.
  std::uint32_t rejected = 0;
  // Summed subcore footprints across the applied updates.
  std::uint64_t footprint = 0;
  // Vertices whose coreness moved (with multiplicity across updates).
  std::uint64_t coreness_changed = 0;
  // Exact change in the global triangle count / in Σ_v C(deg(v), 2).
  // Zero deltas let the engine keep those artifacts without rebuilding.
  std::int64_t triangle_delta = 0;
  std::int64_t triplet_delta = 0;
};

class DynamicCoreIndex {
 public:
  // An empty (edgeless) dynamic graph on `num_vertices` vertices.
  explicit DynamicCoreIndex(VertexId num_vertices);

  // Bulk-loads an existing graph (O(m) decomposition once).  Borrows
  // `graph`, which must outlive this index.
  explicit DynamicCoreIndex(const Graph& graph);

  // Adopts a graph whose exact coreness is already known (the engine's
  // cached decomposition), skipping the O(m) bulk peel.  Borrows
  // `graph`; `coreness.size()` must equal `graph.NumVertices()`.
  DynamicCoreIndex(const Graph& graph, std::vector<VertexId> coreness);

  VertexId NumVertices() const { return adj_.NumVertices(); }
  EdgeId NumEdges() const { return adj_.NumEdges(); }
  VertexId Degree(VertexId v) const { return adj_.Degree(v); }

  // Current coreness of v, maintained exactly.
  VertexId Coreness(VertexId v) const { return coreness_[v]; }
  const std::vector<VertexId>& CorenessArray() const { return coreness_; }
  // Largest current coreness (recomputed on demand, O(n)).
  VertexId Kmax() const;

  bool HasEdge(VertexId u, VertexId v) const;

  // Inserts the undirected edge (u, v).  Returns false (and changes
  // nothing) if the edge already exists or u == v.
  bool InsertEdge(VertexId u, VertexId v);

  // Removes the undirected edge (u, v).  Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  // Applies `inserts` then `deletes`, tolerating no-op updates (each is
  // counted as rejected rather than CHECK-failing, so replayed traces
  // and adversarial batches cannot crash a serving engine).  Returns the
  // accumulated stats, including the exact triangle/triplet deltas.
  DynamicBatchStats ApplyBatch(const EdgeList& inserts,
                               const EdgeList& deletes);

  // |N(u) ∩ N(v)| — triangles the edge (u, v) closes.
  std::uint64_t CommonNeighborCount(VertexId u, VertexId v) const {
    return adj_.CommonNeighborCount(u, v);
  }

  // Materializes the current graph as an immutable CSR snapshot.
  Graph Snapshot() const { return adj_.Materialize(); }

  // Number of vertices examined by the last Insert/Remove (the subcore
  // footprint; exposed for the maintenance benchmarks).
  std::size_t LastUpdateFootprint() const { return last_footprint_; }
  // Number of vertices whose coreness changed in the last Insert/Remove.
  std::size_t LastCorenessChanged() const { return last_changed_; }

 private:
  void IncreaseCase(VertexId root_u, VertexId root_v, VertexId k);
  void DecreaseCase(VertexId u, VertexId v, VertexId k);

  // Neighbors with coreness >= k (the candidate-degree of the traversal
  // algorithms).
  VertexId CountGeq(VertexId v, VertexId k) const;

  MutableAdjacency adj_;
  std::vector<VertexId> coreness_;
  std::size_t last_footprint_ = 0;
  std::size_t last_changed_ = 0;

  // Reusable scratch keyed by vertex, epoch-stamped.
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<VertexId> scratch_count_;
  std::uint32_t epoch_ = 0;
};

}  // namespace corekit
