// Incremental core maintenance: coreness under edge insertions and
// deletions without recomputation (the traversal/subcore algorithms of
// Sariyuce et al., VLDB 2013 — the streaming counterpart of the paper's
// static setting, and the substrate one needs to keep best-k answers
// fresh on evolving graphs).
//
// Key structural facts the algorithms exploit:
//   * one edge update changes any vertex's coreness by at most 1;
//   * after inserting (u, v), only vertices in the *subcore* of the
//     lower-coreness endpoint — coreness-k vertices reachable from it
//     through coreness-k paths — can gain;
//   * after deleting (u, v), only coreness-k vertices in the affected
//     subcore can lose (k = the smaller endpoint coreness).
//
// Insertion runs a candidate BFS plus an eviction cascade; deletion runs
// a degree-support cascade.  Both touch O(|subcore|) vertices — on real
// graphs orders of magnitude below n (see bench/ext_dynamic).

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

class DynamicCoreIndex {
 public:
  // An empty (edgeless) dynamic graph on `num_vertices` vertices.
  explicit DynamicCoreIndex(VertexId num_vertices);

  // Bulk-loads an existing graph (O(m) decomposition once).
  explicit DynamicCoreIndex(const Graph& graph);

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  EdgeId NumEdges() const { return num_edges_; }

  // Current coreness of v, maintained exactly.
  VertexId Coreness(VertexId v) const { return coreness_[v]; }
  const std::vector<VertexId>& CorenessArray() const { return coreness_; }
  // Largest current coreness (recomputed on demand, O(n)).
  VertexId Kmax() const;

  bool HasEdge(VertexId u, VertexId v) const;

  // Inserts the undirected edge (u, v).  Returns false (and changes
  // nothing) if the edge already exists or u == v.
  bool InsertEdge(VertexId u, VertexId v);

  // Removes the undirected edge (u, v).  Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  // Materializes the current graph as an immutable CSR snapshot.
  Graph Snapshot() const;

  // Number of vertices examined by the last Insert/Remove (the subcore
  // footprint; exposed for the maintenance benchmarks).
  std::size_t LastUpdateFootprint() const { return last_footprint_; }

 private:
  void IncreaseCase(VertexId root_u, VertexId root_v, VertexId k);
  void DecreaseCase(VertexId u, VertexId v, VertexId k);

  // Neighbors with coreness >= k (the candidate-degree of the traversal
  // algorithms).
  VertexId CountGeq(VertexId v, VertexId k) const;

  std::vector<std::vector<VertexId>> adjacency_;  // sorted per vertex
  std::vector<VertexId> coreness_;
  EdgeId num_edges_ = 0;
  std::size_t last_footprint_ = 0;

  // Reusable scratch keyed by vertex, epoch-stamped.
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<VertexId> scratch_count_;
  std::uint32_t epoch_ = 0;
};

}  // namespace corekit
