#include "corekit/dynamic/dynamic_core.h"

#include <algorithm>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"

namespace corekit {

DynamicCoreIndex::DynamicCoreIndex(VertexId num_vertices)
    : adjacency_(num_vertices),
      coreness_(num_vertices, 0),
      stamp_(num_vertices, 0),
      scratch_count_(num_vertices, 0) {}

DynamicCoreIndex::DynamicCoreIndex(const Graph& graph)
    : DynamicCoreIndex(graph.NumVertices()) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nbrs = graph.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = graph.NumEdges();
  coreness_ = ComputeCoreDecomposition(graph).coreness;
}

VertexId DynamicCoreIndex::Kmax() const {
  VertexId kmax = 0;
  for (const VertexId c : coreness_) kmax = std::max(kmax, c);
  return kmax;
}

bool DynamicCoreIndex::HasEdge(VertexId u, VertexId v) const {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  const auto& list = adjacency_[u].size() <= adjacency_[v].size()
                         ? adjacency_[u]
                         : adjacency_[v];
  const VertexId target = &list == &adjacency_[u] ? v : u;
  return std::binary_search(list.begin(), list.end(), target);
}

VertexId DynamicCoreIndex::CountGeq(VertexId v, VertexId k) const {
  VertexId count = 0;
  for (const VertexId u : adjacency_[v]) count += coreness_[u] >= k ? 1u : 0u;
  return count;
}

bool DynamicCoreIndex::InsertEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  if (u == v || HasEdge(u, v)) return false;
  adjacency_[u].insert(
      std::lower_bound(adjacency_[u].begin(), adjacency_[u].end(), v), v);
  adjacency_[v].insert(
      std::lower_bound(adjacency_[v].begin(), adjacency_[v].end(), u), u);
  ++num_edges_;
  IncreaseCase(u, v, std::min(coreness_[u], coreness_[v]));
  return true;
}

bool DynamicCoreIndex::RemoveEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  if (u == v || !HasEdge(u, v)) return false;
  const VertexId k = std::min(coreness_[u], coreness_[v]);
  adjacency_[u].erase(
      std::lower_bound(adjacency_[u].begin(), adjacency_[u].end(), v));
  adjacency_[v].erase(
      std::lower_bound(adjacency_[v].begin(), adjacency_[v].end(), u));
  --num_edges_;
  DecreaseCase(u, v, k);
  return true;
}

void DynamicCoreIndex::IncreaseCase(VertexId root_u, VertexId root_v,
                                    VertexId k) {
  // Candidates: coreness-k vertices reachable from the lower-coreness
  // endpoint(s) through coreness-k paths.  Every coreness-k neighbor of a
  // candidate is itself a candidate, so the candidate-degree of w is
  // simply |{x in N(w) : coreness(x) >= k}|.
  ++epoch_;
  std::vector<VertexId> candidates;
  auto try_add = [&](VertexId w) {
    if (coreness_[w] == k && stamp_[w] != epoch_) {
      stamp_[w] = epoch_;
      candidates.push_back(w);
    }
  };
  try_add(root_u);
  try_add(root_v);
  for (std::size_t head = 0; head < candidates.size(); ++head) {
    for (const VertexId x : adjacency_[candidates[head]]) try_add(x);
  }
  last_footprint_ = candidates.size();
  if (candidates.empty()) return;

  // Eviction cascade: a candidate that cannot muster k+1 supporters
  // (higher-coreness neighbors plus surviving candidates) keeps coreness
  // k; its elimination may starve its candidate neighbors.  stamp_[w] ==
  // epoch_ marks "still a live candidate"; scratch_count_ holds the live
  // supporter counts.
  std::vector<VertexId> evict_queue;
  for (const VertexId w : candidates) {
    scratch_count_[w] = CountGeq(w, k);
    if (scratch_count_[w] < k + 1) evict_queue.push_back(w);
  }
  // stamp_ == epoch_ means "still a live candidate".
  while (!evict_queue.empty()) {
    const VertexId w = evict_queue.back();
    evict_queue.pop_back();
    if (stamp_[w] != epoch_) continue;  // already evicted
    stamp_[w] = 0;
    for (const VertexId x : adjacency_[w]) {
      if (stamp_[x] != epoch_) continue;  // not a live candidate
      if (scratch_count_[x]-- == k + 1) evict_queue.push_back(x);
    }
  }
  for (const VertexId w : candidates) {
    if (stamp_[w] == epoch_) {
      coreness_[w] = k + 1;
      stamp_[w] = 0;
    }
  }
}

void DynamicCoreIndex::DecreaseCase(VertexId u, VertexId v, VertexId k) {
  if (k == 0) return;  // an endpoint was isolated; nothing can drop
  // Support cascade: a coreness-k vertex whose >=k-coreness neighbor
  // count falls below k drops to k-1, which may starve its coreness-k
  // neighbors.  Supports are materialized lazily (stamp + scratch).
  ++epoch_;
  std::vector<VertexId> queue;
  auto touch = [&](VertexId w) {
    if (coreness_[w] != k || stamp_[w] == epoch_) return;
    stamp_[w] = epoch_;
    scratch_count_[w] = CountGeq(w, k);
    if (scratch_count_[w] < k) queue.push_back(w);
  };
  touch(u);
  touch(v);

  std::size_t footprint = 2;
  while (!queue.empty()) {
    const VertexId w = queue.back();
    queue.pop_back();
    if (coreness_[w] != k) continue;
    coreness_[w] = k - 1;
    for (const VertexId x : adjacency_[w]) {
      if (coreness_[x] != k) continue;
      ++footprint;
      if (stamp_[x] != epoch_) {
        touch(x);
      } else if (scratch_count_[x]-- == k) {
        queue.push_back(x);
      }
    }
  }
  last_footprint_ = footprint;
}

Graph DynamicCoreIndex::Snapshot() const {
  GraphBuilder builder(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const VertexId u : adjacency_[v]) {
      if (v < u) builder.AddEdge(v, u);
    }
  }
  return builder.Build();
}

}  // namespace corekit
