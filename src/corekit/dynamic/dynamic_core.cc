#include "corekit/dynamic/dynamic_core.h"

#include <algorithm>

#include "corekit/core/core_decomposition.h"
#include "corekit/util/logging.h"

namespace corekit {

DynamicCoreIndex::DynamicCoreIndex(VertexId num_vertices)
    : adj_(num_vertices),
      coreness_(num_vertices, 0),
      stamp_(num_vertices, 0),
      scratch_count_(num_vertices, 0) {}

DynamicCoreIndex::DynamicCoreIndex(const Graph& graph)
    : adj_(graph),
      coreness_(ComputeCoreDecomposition(graph).coreness),
      stamp_(graph.NumVertices(), 0),
      scratch_count_(graph.NumVertices(), 0) {}

DynamicCoreIndex::DynamicCoreIndex(const Graph& graph,
                                   std::vector<VertexId> coreness)
    : adj_(graph),
      coreness_(std::move(coreness)),
      stamp_(graph.NumVertices(), 0),
      scratch_count_(graph.NumVertices(), 0) {
  COREKIT_CHECK(coreness_.size() == graph.NumVertices());
}

VertexId DynamicCoreIndex::Kmax() const {
  VertexId kmax = 0;
  for (const VertexId c : coreness_) kmax = std::max(kmax, c);
  return kmax;
}

bool DynamicCoreIndex::HasEdge(VertexId u, VertexId v) const {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  return adj_.HasEdge(u, v);
}

VertexId DynamicCoreIndex::CountGeq(VertexId v, VertexId k) const {
  VertexId count = 0;
  adj_.ForEachNeighbor(
      v, [&](VertexId u) { count += coreness_[u] >= k ? 1u : 0u; });
  return count;
}

bool DynamicCoreIndex::InsertEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  last_changed_ = 0;
  if (!adj_.AddEdge(u, v)) return false;  // self-loop or duplicate
  IncreaseCase(u, v, std::min(coreness_[u], coreness_[v]));
  return true;
}

bool DynamicCoreIndex::RemoveEdge(VertexId u, VertexId v) {
  COREKIT_CHECK(u < NumVertices());
  COREKIT_CHECK(v < NumVertices());
  last_changed_ = 0;
  const VertexId k = std::min(coreness_[u], coreness_[v]);
  if (!adj_.RemoveEdge(u, v)) return false;  // self-loop or absent
  DecreaseCase(u, v, k);
  return true;
}

DynamicBatchStats DynamicCoreIndex::ApplyBatch(const EdgeList& inserts,
                                               const EdgeList& deletes) {
  DynamicBatchStats stats;
  const VertexId n = NumVertices();
  for (const auto& [u, v] : inserts) {
    if (u >= n || v >= n || u == v) {
      ++stats.rejected;
      continue;
    }
    // Pre-insert degrees drive the triplet delta: deg(u) grows by one,
    // so Σ C(deg, 2) grows by exactly deg_old(u) + deg_old(v).
    const std::uint64_t du = adj_.Degree(u);
    const std::uint64_t dv = adj_.Degree(v);
    if (!InsertEdge(u, v)) {
      ++stats.rejected;
      continue;
    }
    ++stats.inserted;
    stats.footprint += last_footprint_;
    stats.coreness_changed += last_changed_;
    stats.triplet_delta += static_cast<std::int64_t>(du + dv);
    // N(u) ∩ N(v) is unchanged by the edge itself (no self-loops), so
    // counting after the insert is exact.
    stats.triangle_delta +=
        static_cast<std::int64_t>(adj_.CommonNeighborCount(u, v));
  }
  for (const auto& [u, v] : deletes) {
    if (u >= n || v >= n || u == v) {
      ++stats.rejected;
      continue;
    }
    const std::int64_t common =
        static_cast<std::int64_t>(adj_.CommonNeighborCount(u, v));
    if (!RemoveEdge(u, v)) {
      ++stats.rejected;
      continue;
    }
    ++stats.deleted;
    stats.footprint += last_footprint_;
    stats.coreness_changed += last_changed_;
    stats.triangle_delta -= common;
    // Post-delete degrees: Σ C(deg, 2) shrinks by deg_new(u) + deg_new(v).
    stats.triplet_delta -=
        static_cast<std::int64_t>(adj_.Degree(u)) +
        static_cast<std::int64_t>(adj_.Degree(v));
  }
  return stats;
}

void DynamicCoreIndex::IncreaseCase(VertexId root_u, VertexId root_v,
                                    VertexId k) {
  // Candidates: coreness-k vertices reachable from the lower-coreness
  // endpoint(s) through coreness-k paths.  Every coreness-k neighbor of a
  // candidate is itself a candidate, so the candidate-degree of w is
  // simply |{x in N(w) : coreness(x) >= k}|.
  ++epoch_;
  std::vector<VertexId> candidates;
  auto try_add = [&](VertexId w) {
    if (coreness_[w] == k && stamp_[w] != epoch_) {
      stamp_[w] = epoch_;
      candidates.push_back(w);
    }
  };
  try_add(root_u);
  try_add(root_v);
  for (std::size_t head = 0; head < candidates.size(); ++head) {
    adj_.ForEachNeighbor(candidates[head], try_add);
  }
  last_footprint_ = candidates.size();
  if (candidates.empty()) return;

  // Eviction cascade: a candidate that cannot muster k+1 supporters
  // (higher-coreness neighbors plus surviving candidates) keeps coreness
  // k; its elimination may starve its candidate neighbors.  stamp_[w] ==
  // epoch_ marks "still a live candidate"; scratch_count_ holds the live
  // supporter counts.
  std::vector<VertexId> evict_queue;
  for (const VertexId w : candidates) {
    scratch_count_[w] = CountGeq(w, k);
    if (scratch_count_[w] < k + 1) evict_queue.push_back(w);
  }
  // stamp_ == epoch_ means "still a live candidate".
  while (!evict_queue.empty()) {
    const VertexId w = evict_queue.back();
    evict_queue.pop_back();
    if (stamp_[w] != epoch_) continue;  // already evicted
    stamp_[w] = 0;
    adj_.ForEachNeighbor(w, [&](VertexId x) {
      if (stamp_[x] != epoch_) return;  // not a live candidate
      if (scratch_count_[x]-- == k + 1) evict_queue.push_back(x);
    });
  }
  std::size_t promoted = 0;
  for (const VertexId w : candidates) {
    if (stamp_[w] == epoch_) {
      coreness_[w] = k + 1;
      stamp_[w] = 0;
      ++promoted;
    }
  }
  last_changed_ = promoted;
}

void DynamicCoreIndex::DecreaseCase(VertexId u, VertexId v, VertexId k) {
  if (k == 0) return;  // an endpoint was isolated; nothing can drop
  // Support cascade: a coreness-k vertex whose >=k-coreness neighbor
  // count falls below k drops to k-1, which may starve its coreness-k
  // neighbors.  Supports are materialized lazily (stamp + scratch).
  ++epoch_;
  std::vector<VertexId> queue;
  auto touch = [&](VertexId w) {
    if (coreness_[w] != k || stamp_[w] == epoch_) return;
    stamp_[w] = epoch_;
    scratch_count_[w] = CountGeq(w, k);
    if (scratch_count_[w] < k) queue.push_back(w);
  };
  touch(u);
  touch(v);

  std::size_t footprint = 2;
  std::size_t demoted = 0;
  while (!queue.empty()) {
    const VertexId w = queue.back();
    queue.pop_back();
    if (coreness_[w] != k) continue;
    coreness_[w] = k - 1;
    ++demoted;
    adj_.ForEachNeighbor(w, [&](VertexId x) {
      if (coreness_[x] != k) return;
      ++footprint;
      if (stamp_[x] != epoch_) {
        touch(x);
      } else if (scratch_count_[x]-- == k) {
        queue.push_back(x);
      }
    });
  }
  last_footprint_ = footprint;
  last_changed_ = demoted;
}

}  // namespace corekit
