#include "corekit/parallel/frontier_truss.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include "corekit/util/thread_annotations.h"
#include <span>
#include <utility>

#include "corekit/simd/intersect.h"
#include "corekit/util/logging.h"

namespace corekit {

namespace {

// Adjacency lists are sorted VertexId sequences, so the shared
// sorted-set intersection kernel (AVX2-dispatched) counts common
// neighbors directly.  The count fits VertexId: it is at most a degree.
VertexId CountCommonNeighbors(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  return static_cast<VertexId>(simd::IntersectCount(a, b));
}

}  // namespace

std::vector<VertexId> ComputeEdgeSupportsParallel(
    const Graph& graph, const std::vector<EdgeId>& slot_edge,
    ThreadPool& pool, const FrontierPeelOptions& options) {
  const VertexId n = graph.NumVertices();
  const std::size_t chunk = options.chunk > 0 ? options.chunk : 2048;
  std::vector<VertexId> support(graph.NumEdges(), 0);
  // One forward slot per undirected edge: every write below lands on a
  // distinct entry, so no synchronization is needed and the values are
  // exact regardless of schedule.
  pool.ParallelFor(n, chunk, [&](std::size_t begin, std::size_t end) {
    for (auto u = static_cast<VertexId>(begin); u < end; ++u) {
      const EdgeId u_begin = graph.Offsets()[u];
      const auto nbrs = graph.Neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        if (u >= v) continue;
        support[slot_edge[u_begin + i]] =
            CountCommonNeighbors(nbrs, graph.Neighbors(v));
      }
    }
  });
  return support;
}

TrussDecomposition ComputeTrussDecompositionFrontier(
    const Graph& graph, ThreadPool& pool, const FrontierPeelOptions& options) {
  TrussDecomposition result;
  result.edges = graph.ToEdgeList();
  const auto m = static_cast<EdgeId>(result.edges.size());
  result.truss.assign(m, 2);
  if (m == 0) return result;

  const std::size_t chunk = options.chunk > 0 ? options.chunk : 2048;
  const std::vector<EdgeId> slot_edge = MapSlotsToEdges(graph);

  // Residual supports; decremented atomically as triangles die.
  std::vector<std::atomic<VertexId>> support(m);
  VertexId max_support = 0;
  {
    const std::vector<VertexId> initial =
        ComputeEdgeSupportsParallel(graph, slot_edge, pool, options);
    for (EdgeId e = 0; e < m; ++e) {
      support[e].store(initial[e], std::memory_order_relaxed);
      max_support = std::max(max_support, initial[e]);
    }
  }

  // state[e]: 0 = alive, 2 = in the current frontier, 1 = peeled.
  // Written only in serial phases; workers read it while a round runs.
  std::vector<std::uint8_t> state(m, 0);

  std::vector<std::atomic<EdgeId>> stamp(m);
  for (EdgeId e = 0; e < m; ++e) stamp[e].store(0, std::memory_order_relaxed);

  // Bucket structure over settled supports (see frontier_peel.cc; the
  // invariants transfer verbatim with degree -> support).
  std::vector<std::vector<EdgeId>> buckets(
      static_cast<std::size_t>(max_support) + 1);
  for (EdgeId e = 0; e < m; ++e) {
    buckets[support[e].load(std::memory_order_relaxed)].push_back(e);
  }

  Mutex touched_mutex;
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;
  std::vector<EdgeId> touched;
  EdgeId processed = 0;
  EdgeId round = 0;

  result.tmax = 2;
  for (VertexId level = 0; level <= max_support && processed < m; ++level) {
    frontier.clear();
    for (const EdgeId e : buckets[level]) {
      if (state[e] != 0) continue;  // stale entry; e was refiled or peeled
      COREKIT_DCHECK(support[e].load(std::memory_order_relaxed) == level);
      state[e] = 2;
      frontier.push_back(e);
    }
    buckets[level].clear();
    buckets[level].shrink_to_fit();
    std::sort(frontier.begin(), frontier.end());

    while (!frontier.empty()) {
      ++round;
      touched.clear();
      pool.ParallelFor(
          frontier.size(), chunk, [&](std::size_t begin, std::size_t end) {
            std::vector<EdgeId> local;
            auto decrement = [&](EdgeId f) {
              support[f].fetch_sub(1, std::memory_order_relaxed);
              EdgeId seen = stamp[f].load(std::memory_order_relaxed);
              if (seen != round &&
                  stamp[f].compare_exchange_strong(
                      seen, round, std::memory_order_relaxed)) {
                local.push_back(f);
              }
            };
            for (std::size_t i = begin; i < end; ++i) {
              const EdgeId e = frontier[i];
              auto [x, y] = result.edges[e];
              if (graph.Degree(x) > graph.Degree(y)) std::swap(x, y);
              const EdgeId x_begin = graph.Offsets()[x];
              const auto nbrs = graph.Neighbors(x);
              for (std::size_t s = 0; s < nbrs.size(); ++s) {
                const VertexId w = nbrs[s];
                if (w == y) continue;
                const EdgeId yw_slot = EdgeSlotOf(graph, y, w);
                if (yw_slot == kInvalidEdgeSlot) continue;
                const EdgeId a = slot_edge[x_begin + s];   // edge (x, w)
                const EdgeId b = slot_edge[yw_slot];       // edge (y, w)
                const std::uint8_t sa = state[a];
                const std::uint8_t sb = state[b];
                // Triangle (x, y, w) dies with e this round unless it
                // died earlier.  A survivor is decremented by exactly
                // one of the triangle's frontier edges: all of them if
                // it is the only one, else the smallest id.
                if (sa == 1 || sb == 1) continue;
                if (sa == 0 && (sb != 0 ? e < b : true)) decrement(a);
                if (sb == 0 && (sa != 0 ? e < a : true)) decrement(b);
              }
            }
            if (!local.empty()) {
              const MutexLock lock(touched_mutex);
              touched.insert(touched.end(), local.begin(), local.end());
            }
          });

      // Settlement: the frontier's truss numbers are the level's (the
      // claim clamps — an edge whose support fell below the level mid-
      // round still peels at the level, exactly like the serial peel's
      // floor), then claims and refilings from settled supports.
      for (const EdgeId e : frontier) {
        result.truss[e] = level + 2;
        state[e] = 1;
        ++processed;
      }
      result.tmax = std::max<VertexId>(result.tmax, level + 2);

      std::sort(touched.begin(), touched.end());
      next_frontier.clear();
      for (const EdgeId f : touched) {
        if (state[f] != 0) continue;
        const VertexId s = support[f].load(std::memory_order_relaxed);
        if (s <= level) {
          state[f] = 2;
          next_frontier.push_back(f);
        } else {
          buckets[s].push_back(f);
        }
      }
      frontier.swap(next_frontier);
    }
  }
  COREKIT_CHECK_EQ(processed, m);
  return result;
}

TrussDecomposition ComputeTrussDecompositionFrontier(const Graph& graph,
                                                     std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return ComputeTrussDecompositionFrontier(graph, pool);
}

}  // namespace corekit
