#include "corekit/parallel/frontier_peel.h"

#include <algorithm>
#include <atomic>
#include "corekit/util/thread_annotations.h"
#include <utility>

#include "corekit/util/logging.h"

namespace corekit {

FrontierPeelResult ComputeFrontierPeel(const Graph& graph, ThreadPool& pool,
                                       const FrontierPeelOptions& options) {
  const VertexId n = graph.NumVertices();
  const std::size_t chunk = options.chunk > 0 ? options.chunk : 2048;

  FrontierPeelResult result;
  result.cores.coreness.assign(n, 0);
  result.cores.peel_order.reserve(n);
  result.layer.assign(n, 0);
  if (n == 0) return result;

  // Residual degrees, decremented atomically as neighbors peel.  Plain
  // relaxed atomics suffice: every read that decides anything happens in
  // a serial phase after the ParallelFor join (the settlement barrier),
  // which already orders the decrements before the reads.
  std::vector<std::atomic<VertexId>> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId d = graph.Degree(v);
    degree[v].store(d, std::memory_order_relaxed);
    max_degree = std::max(max_degree, d);
  }

  // claimed[v] flips to 1 exactly once, always in a serial phase (seed
  // or settlement); workers only read it while a round runs.
  std::vector<std::uint8_t> claimed(n, 0);

  // stamp[v] = last round that recorded v as touched; the CAS from an
  // older round to the current one elects the single recording thread.
  std::vector<std::atomic<VertexId>> stamp(n);
  for (VertexId v = 0; v < n; ++v) {
    stamp[v].store(0, std::memory_order_relaxed);
  }

  // The bucket structure: every unclaimed vertex is filed under its
  // settled residual degree.  Initial filing is a counting sort by
  // degree (ascending vertex id within a bucket); refiling happens only
  // at settlement, so bucket contents — and therefore every seed
  // frontier — are deterministic.  A vertex is filed at most once per
  // distinct degree value, bounding total pushes by O(n + m).
  std::vector<std::vector<VertexId>> buckets(
      static_cast<std::size_t>(max_degree) + 1);
  {
    std::vector<VertexId> counts(static_cast<std::size_t>(max_degree) + 1, 0);
    for (VertexId v = 0; v < n; ++v) ++counts[graph.Degree(v)];
    for (VertexId d = 0; d <= max_degree; ++d) buckets[d].reserve(counts[d]);
    for (VertexId v = 0; v < n; ++v) buckets[graph.Degree(v)].push_back(v);
  }

  Mutex touched_mutex;
  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;
  std::vector<VertexId> touched;
  VertexId processed = 0;
  VertexId round = 0;

  for (VertexId level = 0; level <= max_degree && processed < n; ++level) {
    // Seed the level from its bucket.  Every unclaimed entry still has
    // residual degree exactly `level`: degrees only decrease, a vertex is
    // refiled whenever its settled degree drops, and any drop to or below
    // the level in progress would have claimed it at that settlement.
    frontier.clear();
    for (const VertexId v : buckets[level]) {
      if (claimed[v]) continue;  // stale entry; v was refiled or peeled
      COREKIT_DCHECK(degree[v].load(std::memory_order_relaxed) == level);
      claimed[v] = 1;
      frontier.push_back(v);
    }
    buckets[level].clear();
    buckets[level].shrink_to_fit();
    std::sort(frontier.begin(), frontier.end());

    while (!frontier.empty()) {
      // Emit the round.  Ascending id within a round; the first vertex
      // of a level's first round therefore has exactly `level` unpeeled
      // neighbors, which is what makes the order replay cleanly in
      // AuditCoreDecomposition.
      ++round;
      for (const VertexId v : frontier) {
        result.cores.coreness[v] = level;
        result.layer[v] = round;
        result.cores.peel_order.push_back(v);
        ++processed;
      }
      result.cores.kmax = level;

      // Parallel phase: peel the frontier, decrementing unclaimed
      // neighbors and recording each touched vertex once.
      touched.clear();
      pool.ParallelFor(
          frontier.size(), chunk, [&](std::size_t begin, std::size_t end) {
            std::vector<VertexId> local;
            for (std::size_t i = begin; i < end; ++i) {
              for (const VertexId u : graph.Neighbors(frontier[i])) {
                if (claimed[u]) continue;
                degree[u].fetch_sub(1, std::memory_order_relaxed);
                VertexId seen = stamp[u].load(std::memory_order_relaxed);
                if (seen != round &&
                    stamp[u].compare_exchange_strong(
                        seen, round, std::memory_order_relaxed)) {
                  local.push_back(u);
                }
              }
            }
            if (!local.empty()) {
              const MutexLock lock(touched_mutex);
              touched.insert(touched.end(), local.begin(), local.end());
            }
          });

      // Settlement: degrees are final for the round.  Which chunk
      // recorded a touched vertex is schedule-dependent, so the merged
      // list is sorted before any decision is taken from it — after
      // that, claims and refilings depend only on settled state.
      std::sort(touched.begin(), touched.end());
      next_frontier.clear();
      for (const VertexId u : touched) {
        const VertexId d = degree[u].load(std::memory_order_relaxed);
        if (d <= level) {
          claimed[u] = 1;
          next_frontier.push_back(u);
        } else {
          buckets[d].push_back(u);
        }
      }
      frontier.swap(next_frontier);
    }
  }
  COREKIT_CHECK_EQ(processed, n);
  result.num_rounds = round;
  return result;
}

CoreDecomposition ComputeCoreDecompositionFrontier(
    const Graph& graph, ThreadPool& pool, const FrontierPeelOptions& options) {
  return ComputeFrontierPeel(graph, pool, options).cores;
}

CoreDecomposition ComputeCoreDecompositionFrontier(const Graph& graph,
                                                   std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return ComputeCoreDecompositionFrontier(graph, pool);
}

}  // namespace corekit
