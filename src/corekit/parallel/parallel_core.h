// Parallel core decomposition: level-synchronous peeling across threads
// (the ParK / Kabir–Madduri family; the "decomposition of large networks
// on a single PC" setting of reference [33] of the paper).
//
// The peel proceeds one coreness level at a time.  Within level k, the
// frontier (vertices whose remaining degree dropped to <= k) is processed
// by a thread pool; degree decrements are atomic fetch-subs, and a vertex
// joins the next frontier exactly when its degree crosses the level — the
// crossing thread owns the enqueue, so each vertex is processed once.
// The output is deterministic (identical to the sequential
// Batagelj–Zaversnik result) regardless of thread schedule, because the
// level-synchronous order fixes every vertex's peel level.
//
// Speedups are bounded by the number of levels (kmax sync barriers) and
// frontier sizes; dense deep graphs parallelize best.

#pragma once

#include <cstdint>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Computes the coreness of every vertex using `num_threads` worker
// threads (0 = hardware concurrency).  The returned peel_order lists
// vertices grouped by level (a valid degeneracy ordering, though a
// different one than the sequential peel's).
CoreDecomposition ComputeCoreDecompositionParallel(
    const Graph& graph, std::uint32_t num_threads = 0);

// Same peel over a caller-provided pool (the CoreEngine path: one pool
// shared across every parallel stage instead of one per call).
CoreDecomposition ComputeCoreDecompositionParallel(const Graph& graph,
                                                   ThreadPool& pool);

}  // namespace corekit
