#include "corekit/parallel/parallel_core.h"

#include <algorithm>
#include <atomic>
#include "corekit/util/thread_annotations.h"
#include <thread>
#include <vector>

#include "corekit/util/logging.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

CoreDecomposition ComputeCoreDecompositionParallel(
    const Graph& graph, std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return ComputeCoreDecompositionParallel(graph, pool);
}

CoreDecomposition ComputeCoreDecompositionParallel(const Graph& graph,
                                                   ThreadPool& pool) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.coreness.assign(n, 0);
  result.peel_order.reserve(n);
  if (n == 0) return result;

  // Remaining degrees, decremented atomically as neighbors peel.
  std::vector<std::atomic<VertexId>> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId d = graph.Degree(v);
    degree[v].store(d, std::memory_order_relaxed);
    max_degree = std::max(max_degree, d);
  }
  // peeled[v]: set exactly once, by the thread that moves v into a
  // frontier.
  std::vector<std::atomic<std::uint8_t>> peeled(n);
  for (VertexId v = 0; v < n; ++v) {
    peeled[v].store(0, std::memory_order_relaxed);
  }

  // Crossings found by a chunk are buffered locally and merged into the
  // shared next frontier under a mutex (the merge is tiny next to the
  // scan).
  Mutex next_mutex;

  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;
  VertexId processed = 0;

  for (VertexId level = 0; level <= max_degree && processed < n; ++level) {
    // Seed the level's frontier: unpeeled vertices at or below the level.
    // (Scanning all vertices per level is O(n * kmax) worst case; a
    // production system would bucket — this substrate favors clarity, and
    // the scan parallelizes trivially.)
    frontier.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (peeled[v].load(std::memory_order_relaxed) == 0 &&
          degree[v].load(std::memory_order_relaxed) <= level) {
        peeled[v].store(1, std::memory_order_relaxed);
        frontier.push_back(v);
      }
    }

    // Drain the level: process the frontier in parallel; crossings into
    // <= level join the next sub-frontier.
    while (!frontier.empty()) {
      next_frontier.clear();
      auto body = [&](std::size_t begin, std::size_t end) {
        std::vector<VertexId> out;  // chunk-local crossings
        for (std::size_t i = begin; i < end; ++i) {
          const VertexId v = frontier[i];
          for (const VertexId u : graph.Neighbors(v)) {
            if (peeled[u].load(std::memory_order_acquire) != 0) continue;
            // fetch_sub returns the previous value; the thread that
            // crosses the threshold claims u.
            const VertexId before =
                degree[u].fetch_sub(1, std::memory_order_acq_rel);
            if (before == level + 1) {
              std::uint8_t expected = 0;
              if (peeled[u].compare_exchange_strong(
                      expected, 1, std::memory_order_acq_rel)) {
                out.push_back(u);
              }
            }
          }
        }
        if (!out.empty()) {
          const MutexLock lock(next_mutex);
          next_frontier.insert(next_frontier.end(), out.begin(), out.end());
        }
      };
      pool.ParallelFor(frontier.size(), 1024, body);

      // Commit the level's results.
      for (const VertexId v : frontier) {
        result.coreness[v] = level;
        result.peel_order.push_back(v);
        ++processed;
      }
      frontier.swap(next_frontier);
    }
    result.kmax = std::max(result.kmax, processed > 0 ? level : 0);
  }
  // kmax is the last level that actually peeled someone.
  result.kmax = 0;
  for (const VertexId c : result.coreness) {
    result.kmax = std::max(result.kmax, c);
  }
  COREKIT_CHECK_EQ(processed, n);
  return result;
}

}  // namespace corekit
