// Frontier-based parallel core decomposition: the bucket-structure peel
// of "Parallel k-Core Decomposition: Theory and Practice" (arXiv
// 2502.08042), adapted to the engine's ThreadPool.
//
// Unlike parallel_core.h's level-synchronous peel — which rescans all n
// vertices to seed every level, O(n * kmax) seeding in the worst case —
// this peel keeps every alive vertex filed in a bucket indexed by its
// settled residual degree.  Level k seeds its first frontier straight
// from bucket[k]; within a round, worker threads decrement neighbor
// degrees atomically and record each touched vertex once (a per-round
// stamp CAS); at the round's settlement barrier the touched set is
// sorted by id and split: vertices whose settled degree crossed the
// level join the next frontier, the rest are refiled into the bucket of
// their new degree.  Total bucket traffic is O(n + m) pushes.
//
// Determinism: every claim decision reads *settled* degrees — membership
// of round r is a pure function of the membership of rounds 1..r-1, and
// round 1 of each level is exactly bucket[k], so the frontier sets are
// independent of thread count, schedule, and chunk size.  Sorting each
// round by vertex id canonicalizes the emitted peel_order as well:
// coreness, kmax, peel_order, and the round (onion-layer) indices are
// all bitwise-identical across any {threads, chunk} configuration, and
// coreness/kmax are bitwise-identical to the sequential
// Batagelj–Zaversnik ComputeCoreDecomposition.  (DESIGN.md §"Frontier
// peeling" carries the full argument, including why the emitted order
// passes AuditCoreDecomposition's peel replay.)

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

struct FrontierPeelOptions {
  // ParallelFor granularity over each round's frontier.  Any positive
  // value yields the same output (determinism does not depend on it);
  // smaller chunks trade scheduling overhead for balance.
  std::size_t chunk = 2048;
};

// Full frontier-peel output: the decomposition plus the per-vertex round
// index.  Rounds are numbered from 1 in peel order; because a round is
// precisely "all alive vertices with residual degree <= the current
// level", the round index of a vertex equals its onion-decomposition
// layer (core/onion_layers.h) — the peel computes both for free.
struct FrontierPeelResult {
  CoreDecomposition cores;
  // layer[v] = 1-based index of the round that peeled v; size n.
  std::vector<VertexId> layer;
  // Total number of (non-empty) rounds == ComputeOnionDecomposition's
  // num_layers.
  VertexId num_rounds = 0;
};

FrontierPeelResult ComputeFrontierPeel(const Graph& graph, ThreadPool& pool,
                                       const FrontierPeelOptions& options = {});

// Decomposition-only wrappers (the CoreEngine warm path).
CoreDecomposition ComputeCoreDecompositionFrontier(
    const Graph& graph, ThreadPool& pool,
    const FrontierPeelOptions& options = {});
CoreDecomposition ComputeCoreDecompositionFrontier(
    const Graph& graph, std::uint32_t num_threads = 0);

}  // namespace corekit
