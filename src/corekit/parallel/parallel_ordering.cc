#include "corekit/parallel/parallel_ordering.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace corekit {

OrderedGraph::OrderedGraph(const Graph& graph, const CoreDecomposition& cores,
                           ThreadPool& pool)
    : graph_(&graph),
      kmax_(cores.kmax),
      coreness_(cores.coreness),
      offsets_(graph.Offsets().begin(), graph.Offsets().end()) {
  COREKIT_CHECK_EQ(coreness_.size(), graph.NumVertices());
  if (pool.num_threads() <= 1 || graph.NumVertices() == 0) {
    BuildSerial();
  } else {
    BuildParallel(pool);
  }
}

void OrderedGraph::BuildParallel(ThreadPool& pool) {
  const VertexId n = graph_->NumVertices();
  const std::size_t num_blocks = pool.num_threads();
  const auto block_bounds =
      [n, num_blocks](std::size_t b) -> std::pair<VertexId, VertexId> {
    const std::uint64_t wide_n = n;
    return {static_cast<VertexId>(wide_n * b / num_blocks),
            static_cast<VertexId>(wide_n * (b + 1) / num_blocks)};
  };

  // --- Order the vertex set V (Algorithm 1, lines 1-4), parallel. --------
  // Each block histograms its ascending-id slice per coreness bin; the
  // prefix pass hands every block a disjoint cursor range inside each
  // bin, so the scatter reproduces the serial ascending-id fill order.
  const std::size_t bins = static_cast<std::size_t>(kmax_) + 1;
  std::vector<std::vector<VertexId>> vhist(num_blocks);
  pool.ParallelFor(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      std::vector<VertexId>& h = vhist[b];
      h.assign(bins, 0);
      const auto [vb, ve] = block_bounds(b);
      for (VertexId v = vb; v < ve; ++v) ++h[coreness_[v]];
    }
  });
  shell_start_.assign(bins + 1, 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (std::size_t k = 0; k < bins; ++k) shell_start_[k + 1] += vhist[b][k];
  }
  for (std::size_t k = 0; k < bins; ++k) shell_start_[k + 1] += shell_start_[k];
  for (std::size_t k = 0; k < bins; ++k) {
    VertexId running = shell_start_[k];
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const VertexId count = vhist[b][k];
      vhist[b][k] = running;
      running += count;
    }
  }
  order_.resize(n);
  pool.ParallelFor(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      const auto [vb, ve] = block_bounds(b);
      for (VertexId v = vb; v < ve; ++v) order_[vhist[b][coreness_[v]]++] = v;
    }
  });
  vhist.clear();
  vhist.shrink_to_fit();

  // --- Order the edge set E (lines 5-12), parallel. ----------------------
  // Serial appends v (walking the rank order) to each neighbor u's list.
  // Split the rank order into blocks, count per (block, u), prefix the
  // counts into per-block cursors inside u's list, scatter.  Block order
  // == rank order, so every list comes out rank-sorted exactly as serial.
  neighbors_.resize(graph_->NeighborArray().size());
  std::vector<std::vector<EdgeId>> ehist(num_blocks);
  pool.ParallelFor(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      std::vector<EdgeId>& h = ehist[b];
      h.assign(n, 0);
      const auto [pb, pe] = block_bounds(b);
      for (VertexId pos = pb; pos < pe; ++pos) {
        for (const VertexId u : graph_->Neighbors(order_[pos])) ++h[u];
      }
    }
  });
  pool.ParallelFor(n, 4096, [&](std::size_t ub, std::size_t ue) {
    for (std::size_t u = ub; u < ue; ++u) {
      EdgeId running = offsets_[u];
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const EdgeId count = ehist[b][u];
        ehist[b][u] = running;
        running += count;
      }
    }
  });
  pool.ParallelFor(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      std::vector<EdgeId>& cursor = ehist[b];
      const auto [pb, pe] = block_bounds(b);
      for (VertexId pos = pb; pos < pe; ++pos) {
        const VertexId v = order_[pos];
        for (const VertexId u : graph_->Neighbors(v)) {
          neighbors_[cursor[u]++] = v;
        }
      }
    }
  });
  ehist.clear();
  ehist.shrink_to_fit();

  // --- Position tags (line 13), parallel: vertices are independent. ------
  same_.assign(n, 0);
  plus_.assign(n, 0);
  high_.assign(n, 0);
  pool.ParallelFor(n, 2048, [&](std::size_t begin, std::size_t end) {
    ComputeTagsRange(static_cast<VertexId>(begin),
                     static_cast<VertexId>(end));
  });

  // --- Rank images, parallel (each entry independent). -------------------
  rank_of_.resize(n);
  pool.ParallelFor(n, 4096, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      rank_of_[order_[r]] = static_cast<VertexId>(r);
    }
  });
  neighbor_ranks_.resize(neighbors_.size());
  pool.ParallelFor(neighbors_.size(), 8192,
                   [&](std::size_t eb, std::size_t ee) {
                     for (std::size_t e = eb; e < ee; ++e) {
                       neighbor_ranks_[e] = rank_of_[neighbors_[e]];
                     }
                   });
}

OrderedGraph BuildOrderedGraphParallel(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return OrderedGraph(graph, cores, pool);
}

}  // namespace corekit
