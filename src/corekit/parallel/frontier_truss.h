// Frontier-based parallel truss decomposition: the frontier_peel.h
// bucket/settlement discipline lifted from vertices to edges.  Support
// peeling parallelizes identically — buckets are indexed by settled
// support, a round peels every alive edge whose support is at or below
// the current level, and atomic support decrements settle at a barrier
// before the next round's membership is decided.
//
// Two edge-specific twists:
//  * Supports are computed in parallel as sorted-adjacency intersections
//    (one forward CSR slot per edge, so writes race-freely target
//    distinct entries); the values are exact triangle counts, identical
//    to the serial mark-array counting in truss/truss_decomposition.cc.
//  * A triangle can lose one, two, or all three of its edges in a single
//    round.  Each frontier edge enumerates all its triangles; a triangle
//    losing two frontier edges decrements its surviving edge through the
//    smaller-id frontier edge only, and a triangle losing all three
//    decrements nothing.  Each destroyed triangle therefore decrements
//    each surviving edge exactly once, keeping every alive edge's
//    support equal to its live-triangle count — the invariant that makes
//    the claim level, and hence every truss number, bitwise-identical to
//    serial ComputeTrussDecomposition (whose in-peel clamping computes
//    the same fixpoint one edge at a time).
//
// Determinism follows exactly as for the vertex peel: claims read only
// settled supports, so frontier membership is independent of thread
// count, schedule, and chunk size.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/parallel/frontier_peel.h"
#include "corekit/truss/truss_decomposition.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Parallel per-edge supports: |N(u) ∩ N(v)| for every undirected edge
// (u, v), via two-pointer merges of the sorted adjacency lists.
// `slot_edge` must be MapSlotsToEdges(graph).  Bitwise-equal to
// ComputeEdgeSupports for every graph.
std::vector<VertexId> ComputeEdgeSupportsParallel(
    const Graph& graph, const std::vector<EdgeId>& slot_edge,
    ThreadPool& pool, const FrontierPeelOptions& options = {});

// Frontier-parallel truss decomposition.  Output (edges, truss, tmax) is
// bitwise-identical to ComputeTrussDecomposition.
TrussDecomposition ComputeTrussDecompositionFrontier(
    const Graph& graph, ThreadPool& pool,
    const FrontierPeelOptions& options = {});
TrussDecomposition ComputeTrussDecompositionFrontier(
    const Graph& graph, std::uint32_t num_threads = 0);

}  // namespace corekit
