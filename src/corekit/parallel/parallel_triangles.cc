#include "corekit/parallel/parallel_triangles.h"

#include <atomic>

#include "corekit/core/triangle_scoring.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

std::uint64_t CountTrianglesParallel(const OrderedGraph& ordered,
                                     std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return CountTrianglesParallel(ordered, pool);
}

std::uint64_t CountTrianglesParallel(const OrderedGraph& ordered,
                                     ThreadPool& pool) {
  const VertexId n = ordered.NumVertices();
  if (n == 0) return 0;

  std::atomic<std::uint64_t> total{0};

  // Scratch-free intersection kernel (triangle_scoring.h): chunks are
  // pure readers of the ordering, so nothing is thread-local.
  pool.ParallelFor(
      n, 2048, [&ordered, &total](std::size_t begin, std::size_t end) {
        std::uint64_t local = 0;
        for (std::size_t i = begin; i < end; ++i) {
          local += CountTrianglesAtVertex(ordered, static_cast<VertexId>(i));
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> CountTrianglesPerVertex(const OrderedGraph& ordered,
                                                   std::uint32_t num_threads) {
  ThreadPool pool(num_threads);
  return CountTrianglesPerVertex(ordered, pool);
}

std::vector<std::uint64_t> CountTrianglesPerVertex(const OrderedGraph& ordered,
                                                   ThreadPool& pool) {
  const VertexId n = ordered.NumVertices();
  std::vector<std::uint64_t> counts(n, 0);
  if (n == 0) return counts;

  // Each vertex's slot is written by exactly one chunk, so no reduction
  // is needed.
  pool.ParallelFor(
      n, 2048, [&ordered, &counts](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          counts[i] =
              CountTrianglesAtVertex(ordered, static_cast<VertexId>(i));
        }
      });
  return counts;
}

}  // namespace corekit
