// Parallel rank-sorted OrderedGraph construction (Algorithm 1 on a pool).
//
// The serial OrderedGraph constructor is two counting sorts (vertices by
// coreness, then the edge set by endpoint rank) plus an independent
// per-vertex tag scan — all of it bin-sort structure that parallelizes
// with the same per-thread-histogram + prefix-sum-placement technique as
// BuildGraphParallel: each thread counts its slice into a private
// histogram, a prefix pass carves disjoint per-thread cursors inside each
// bin, and the scatter reproduces the serial fill order exactly.  The
// result is bitwise identical to the serial constructor on every input.
//
// The entry point is the OrderedGraph(graph, cores, pool) constructor
// declared in core/vertex_ordering.h; its body lives in this layer
// (parallel -> core -> graph -> util) so the core layer stays free of
// threading concerns.

#pragma once

#include "corekit/core/core_decomposition.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Convenience wrapper mirroring the other parallel substrates: builds
// the ordering on a transient pool of `num_threads` (0 = hardware).
OrderedGraph BuildOrderedGraphParallel(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       std::uint32_t num_threads);

}  // namespace corekit
