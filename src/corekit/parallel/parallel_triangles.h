// Parallel triangle counting: the O(m^1.5) Algorithm 3 kernel is
// embarrassingly parallel over lowest-rank vertices (each triangle is
// counted at exactly one vertex, and the per-vertex counting only reads
// shared state).  Each worker carries its own mark scratch; counts reduce
// with an atomic add per chunk.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/vertex_ordering.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

// Exact triangle count, parallel over vertices.  num_threads = 0 picks
// hardware concurrency.  Equals CountTriangles(ordered) exactly.
std::uint64_t CountTrianglesParallel(const OrderedGraph& ordered,
                                     std::uint32_t num_threads = 0);

// Same count over a caller-provided pool (the CoreEngine path: one pool
// shared across every parallel stage instead of one per call).
std::uint64_t CountTrianglesParallel(const OrderedGraph& ordered,
                                     ThreadPool& pool);

// Per-vertex triangle scores, parallel over vertices: counts[v] equals
// CountTrianglesAtVertex(ordered, v, scratch), i.e. the triangles
// attributed to their lowest-rank vertex v.  These are exactly the
// increments the single-core primary-value pass (Algorithm 5) consumes,
// so precomputing them in parallel lifts the last serial triangle work
// off the best-single-core path.
std::vector<std::uint64_t> CountTrianglesPerVertex(
    const OrderedGraph& ordered, std::uint32_t num_threads = 0);
std::vector<std::uint64_t> CountTrianglesPerVertex(
    const OrderedGraph& ordered, ThreadPool& pool);

}  // namespace corekit
