// k-core fingerprint rendering (LaNet-vi style): the large-scale network
// visualization application of core decomposition ([3] Alvarez-Hamelin et
// al., NIPS 2005; also [20], [67] of the paper).
//
// Vertices are placed on concentric rings — radius decreasing with
// coreness (refined by onion layer within each shell), angle grouped by
// connected component with deterministic jitter — and emitted as a
// standalone SVG: the classic "medusa" fingerprint in which the dense
// center core sits in the middle and shells radiate outward.  Vertex
// color encodes coreness; a subsample cap keeps files viewable for large
// graphs.

#pragma once

#include <cstdint>
#include <string>

#include "corekit/core/onion_layers.h"
#include "corekit/graph/graph.h"
#include "corekit/util/status.h"

namespace corekit {

struct SvgFingerprintOptions {
  // Canvas is size x size pixels.
  std::uint32_t size = 900;
  // At most this many vertices are drawn (uniform subsample, seeded);
  // edges are drawn only between drawn vertices, capped at max_edges.
  VertexId max_vertices = 4000;
  EdgeId max_edges = 20000;
  std::uint64_t seed = 1;
};

// Renders the fingerprint of `graph` (with its onion decomposition) as an
// SVG document string.
std::string RenderCoreFingerprintSvg(const Graph& graph,
                                     const OnionDecomposition& onion,
                                     const SvgFingerprintOptions& options = {});

// Convenience: render and write to `path`.
Status WriteCoreFingerprintSvg(const Graph& graph,
                               const OnionDecomposition& onion,
                               const std::string& path,
                               const SvgFingerprintOptions& options = {});

}  // namespace corekit
