#include "corekit/viz/svg_fingerprint.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <sstream>

#include "corekit/graph/connected_components.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

namespace {

// Coreness -> hue sweep from blue (periphery) to red (center), rendered
// as an RGB hex string.
std::string CorenessColor(VertexId coreness, VertexId kmax) {
  const double t = kmax == 0 ? 0.0
                             : static_cast<double>(coreness) /
                                   static_cast<double>(kmax);
  // HSV with h in [240 (blue), 0 (red)], s = 0.85, v = 0.9.
  const double h = 240.0 * (1.0 - t);
  const double s = 0.85;
  const double value = 0.9;
  const double c = value * s;
  const double hp = h / 60.0;
  const double x = c * (1.0 - std::abs(std::fmod(hp, 2.0) - 1.0));
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
  if (hp < 1) {
    r = c;
    g = x;
  } else if (hp < 2) {
    r = x;
    g = c;
  } else if (hp < 3) {
    g = c;
    b = x;
  } else {
    g = x;
    b = c;
  }
  const double m = value - c;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x",
                static_cast<unsigned>((r + m) * 255),
                static_cast<unsigned>((g + m) * 255),
                static_cast<unsigned>((b + m) * 255));
  return buf;
}

}  // namespace

std::string RenderCoreFingerprintSvg(const Graph& graph,
                                     const OnionDecomposition& onion,
                                     const SvgFingerprintOptions& options) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_EQ(onion.layer.size(), n);
  const double size = options.size;
  const double center = size / 2.0;
  const double radius_max = size * 0.46;

  // Subsample vertices deterministically.
  Rng rng(options.seed);
  std::vector<VertexId> drawn;
  if (n <= options.max_vertices) {
    drawn.resize(n);
    for (VertexId v = 0; v < n; ++v) drawn[v] = v;
  } else {
    std::vector<VertexId> all(n);
    for (VertexId v = 0; v < n; ++v) all[v] = v;
    rng.Shuffle(all);
    drawn.assign(all.begin(), all.begin() + options.max_vertices);
    std::sort(drawn.begin(), drawn.end());
  }
  std::vector<bool> is_drawn(n, false);
  for (const VertexId v : drawn) is_drawn[v] = true;

  // Angle: group by connected component (contiguous angular sectors),
  // position within the component by id order, plus jitter.  Radius:
  // deeper onion layers sit closer to the center.
  const ComponentLabels components = ConnectedComponents(graph);
  std::vector<double> angle(n, 0.0);
  {
    // Stable order: by (component, id).
    std::vector<VertexId> order = drawn;
    std::stable_sort(order.begin(), order.end(),
                     [&components](VertexId a, VertexId b) {
                       return components.label[a] < components.label[b];
                     });
    for (std::size_t i = 0; i < order.size(); ++i) {
      const double base = 2.0 * std::numbers::pi * static_cast<double>(i) /
                          static_cast<double>(order.size());
      const double jitter =
          (rng.NextDouble() - 0.5) * 2.0 * std::numbers::pi * 0.01;
      angle[order[i]] = base + jitter;
    }
  }
  const VertexId layers = std::max<VertexId>(1, onion.num_layers);
  std::vector<double> x(n, 0.0);
  std::vector<double> y(n, 0.0);
  for (const VertexId v : drawn) {
    const double depth =
        static_cast<double>(onion.layer[v]) / static_cast<double>(layers + 1);
    const double radius =
        radius_max * (1.0 - depth) + radius_max * 0.04 * rng.NextDouble();
    x[v] = center + radius * std::cos(angle[v]);
    y[v] = center + radius * std::sin(angle[v]);
  }

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.size
      << "\" height=\"" << options.size << "\" viewBox=\"0 0 "
      << options.size << " " << options.size << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"#0b0e14\"/>\n";

  // Edges (capped), faint.
  EdgeId edges_drawn = 0;
  svg << "<g stroke=\"#4a5568\" stroke-opacity=\"0.25\" "
         "stroke-width=\"0.5\">\n";
  for (const VertexId v : drawn) {
    if (edges_drawn >= options.max_edges) break;
    for (const VertexId u : graph.Neighbors(v)) {
      if (u <= v || !is_drawn[u]) continue;
      svg << "<line x1=\"" << x[v] << "\" y1=\"" << y[v] << "\" x2=\""
          << x[u] << "\" y2=\"" << y[u] << "\"/>\n";
      if (++edges_drawn >= options.max_edges) break;
    }
  }
  svg << "</g>\n";

  // Vertices, colored by coreness, sized slightly by coreness.
  svg << "<g stroke=\"none\">\n";
  for (const VertexId v : drawn) {
    const double r =
        1.2 + 2.0 * (onion.kmax == 0
                         ? 0.0
                         : static_cast<double>(onion.coreness[v]) /
                               static_cast<double>(onion.kmax));
    svg << "<circle cx=\"" << x[v] << "\" cy=\"" << y[v] << "\" r=\"" << r
        << "\" fill=\"" << CorenessColor(onion.coreness[v], onion.kmax)
        << "\" fill-opacity=\"0.85\"/>\n";
  }
  svg << "</g>\n</svg>\n";
  return svg.str();
}

Status WriteCoreFingerprintSvg(const Graph& graph,
                               const OnionDecomposition& onion,
                               const std::string& path,
                               const SvgFingerprintOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  const std::string svg = RenderCoreFingerprintSvg(graph, onion, options);
  const bool ok = std::fwrite(svg.data(), 1, svg.size(), file) == svg.size();
  std::fclose(file);
  if (!ok) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

}  // namespace corekit
