// EngineRegistry: many graphs, one memory budget, warm CoreEngines.
//
// A production best-k service holds more graphs than fit in memory as
// fully-warmed engines: the paper's index is O(m) per graph, but the
// engine's cached artifacts (ordering, forest, per-metric profiles)
// multiply that, and tenants come and go.  The registry is the tenancy
// layer: every registered graph keeps its cold representation (the CSR
// Graph) resident, while the *engine caches* built over it are admitted
// and evicted under an LRU policy bounded by a byte budget — the same
// posture as a buffer pool over on-disk pages, or diagon's searcher
// cache over index segments.
//
// Concurrency contract (verified dynamically under TSan by
// tests/engine/engine_registry_test.cc, and statically by Clang's
// -Wthread-safety over the COREKIT_* annotations below — everything the
// registry owns hangs off the single `mutex_`):
//
//   * Acquire() returns a Lease — a ref-counted handle pinning the
//     engine.  Eviction never selects an entry with outstanding leases,
//     and the lease additionally holds the engine's shared_ptr, so a
//     query can never observe a destructed engine even if the registry
//     is torn down around it.  This is the per-graph ref-counting the
//     versioned-slot discipline of PRs 3/6 needs one level up: slots
//     keep old artifact versions alive inside an engine; leases keep
//     whole engines alive across evictions.
//   * Admission is exactly-once per cold Acquire storm: the registry
//     mutex serializes admission, so N racers on an evicted graph elect
//     one admitter and share the one engine — and the engine's own
//     exactly-once build accounting (PR 3) then holds per admission
//     epoch, which the tests assert arithmetically.
//   * Engines that have absorbed ApplyBatch churn (Epoch() > 0) are
//     pinned: their state is not reconstructible from the cold graph,
//     so evicting them would silently roll back acknowledged writes.
//     They count against the budget but are never selected.
//   * The budget is a target, not a hard cap: when every resident
//     engine is leased or pinned, admission proceeds over budget (and
//     the overcommit counter ticks) rather than failing queries.
//
// Footprints are *estimates* (EstimateEngineFootprintBytes): the
// registry charges a deterministic function of (n, m) at admission so
// tests and capacity planning can compute exactly which budget forces
// which eviction.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"
#include "corekit/util/status.h"
#include "corekit/util/thread_annotations.h"

namespace corekit {

// Deterministic estimate of the bytes a fully-warmed CoreEngine holds
// over `graph` — CSR copy, coreness/order/forest/components arrays, and
// per-metric profiles.  Intentionally a pure function of (n, m): tests
// and the bench pick budgets by summing it.
std::uint64_t EstimateEngineFootprintBytes(const Graph& graph);

struct EngineRegistryOptions {
  // Target resident bytes across all admitted engines; 0 = unbounded
  // (nothing is ever evicted).
  std::uint64_t memory_budget_bytes = 0;
  // Options for every engine the registry constructs.
  CoreEngineOptions engine_options;
};

class EngineRegistry {
 public:
  explicit EngineRegistry(EngineRegistryOptions options = {});
  // Leases returned by Acquire() point into the registry; it is pinned.
  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;
  // Destruction requires every lease to have been released (CHECKed):
  // a live lease outliving the registry would reference a destroyed
  // entry.
  ~EngineRegistry();

  // A ref-counted pin on one graph's engine.  Movable, not copyable;
  // releases its reference on destruction.  The engine reference stays
  // valid for the lease's lifetime even if the entry is evicted behind
  // it (the shared_ptr keeps the engine alive until the last lease
  // drops).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    bool valid() const { return engine_ != nullptr; }
    CoreEngine& engine() const { return *engine_; }
    const std::string& graph_name() const { return name_; }

    // Drops the reference early (idempotent).
    void Release();

   private:
    friend class EngineRegistry;
    Lease(EngineRegistry* registry, std::string name,
          std::shared_ptr<CoreEngine> engine)
        : registry_(registry), name_(std::move(name)),
          engine_(std::move(engine)) {}

    EngineRegistry* registry_ = nullptr;
    std::string name_;
    std::shared_ptr<CoreEngine> engine_;
  };

  // Registers a graph under `name`; the graph itself stays resident for
  // the registry's lifetime (it is the cold storage engines rebuild
  // from).  InvalidArgument on duplicate names or empty names.  The
  // engine is NOT built here — the first Acquire admits it.
  Status AddGraph(const std::string& name, Graph graph);

  // Pins `name`'s engine and returns the lease.  Warm path: bump LRU,
  // count a hit.  Cold path: evict LRU idle engines until the budget
  // fits (or nothing is evictable), construct a fresh engine over the
  // resident graph, count an admission.  NotFound for unknown names.
  Result<Lease> Acquire(const std::string& name);

  // Registered names, sorted (stable across evictions — eviction drops
  // engine caches, never graphs).
  std::vector<std::string> GraphNames() const;

  // Point-in-time counters.  resident_bytes is the sum of the charged
  // footprint estimates, not an RSS measurement.
  struct Stats {
    std::uint64_t admissions = 0;   // cold engine constructions
    std::uint64_t evictions = 0;    // engines dropped by LRU pressure
    std::uint64_t hits = 0;         // warm Acquire calls
    std::uint64_t overcommits = 0;  // admissions that ran over budget
                                    // because nothing was evictable
    std::uint64_t resident_bytes = 0;
    std::uint32_t resident_engines = 0;
    std::uint32_t graphs = 0;
  };
  Stats stats() const;

  // Per-graph admission count (how many times `name` went cold-to-warm);
  // 0 for unknown names.  The eviction tests key their exactly-once
  // arithmetic on this.
  std::uint64_t Admissions(const std::string& name) const;

  // Whether `name` currently has a resident engine (test observability).
  bool IsResident(const std::string& name) const;

  const EngineRegistryOptions& options() const { return options_; }

 private:
  // Every field is guarded by the owning registry's mutex_ (reached only
  // through entries_, which is GUARDED_BY(mutex_) — the analysis cannot
  // name another object's capability on a nested struct's members, so
  // the containment edge carries the proof).
  struct Entry {
    std::string name;
    Graph graph;  // node-stable: engines borrow it across admissions
    std::shared_ptr<CoreEngine> engine;  // null while evicted
    std::uint64_t footprint = 0;         // charged while resident
    std::uint64_t admissions = 0;
    std::uint64_t last_used = 0;  // LRU tick
    std::uint32_t active_leases = 0;
  };

  // Called by Lease::Release / ~Lease.
  void ReleaseLease(const std::string& name) COREKIT_EXCLUDES(mutex_);

  // Evicts idle, unpinned engines in LRU order until `incoming` more
  // bytes fit under the budget or nothing is evictable.
  void EvictForAdmission(std::uint64_t incoming) COREKIT_REQUIRES(mutex_);

  EngineRegistryOptions options_;

  mutable Mutex mutex_;
  // unique_ptr values: Entry addresses are stable across map growth
  // (engines borrow entry->graph; leases point back at entries by name).
  std::map<std::string, std::unique_ptr<Entry>> entries_
      COREKIT_GUARDED_BY(mutex_);
  std::uint64_t tick_ COREKIT_GUARDED_BY(mutex_) = 0;
  Stats counters_ COREKIT_GUARDED_BY(mutex_);
};

}  // namespace corekit
