// EngineServer: a multi-client serving harness over one shared CoreEngine.
//
// The paper's space/time-optimal substrate pays for itself when it is
// built once and amortized across many queries; the natural deployment is
// therefore a *server* — one warmed (or cold) CoreEngine answering
// best-k / community-search / counting queries from many clients at once.
// ServeQueryMix is that deployment in miniature: it spawns K client
// threads, each issuing a deterministic pseudo-random mix of queries
// against the shared engine —
//
//   * BestCoreSet(metric)     (Problem 1, Algorithms 2/3)
//   * BestSingleCore(metric)  (Problem 2, Algorithm 5)
//   * Triangles / Triplets    (global counting stages)
//   * Components              (BFS labeling)
//   * an injected extension kind    (e.g. apps-layer community search)
//
// — and reports per-client latency plus an order-independent checksum
// folding every answer.  The mix for client c under seed s is a pure
// function of (s, c, i), so ServeQueryMixSerial (same mix, one thread,
// typically against a fresh engine) produces a reference checksum that a
// concurrent run must reproduce bit-for-bit.  The concurrency test suite
// and bench/ext_concurrency are built on exactly that comparison.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "corekit/engine/core_engine.h"

namespace corekit {

// An optional sixth query kind supplied by a layer above the engine
// (e.g. apps-layer community search: CommunitySearchQueryFold).  Receives
// the shared engine, the metric drawn for this query, and the raw pick
// value; must return a deterministic fold of its answer.  Injected via
// EngineServerOptions so the engine layer never includes apps/ — the
// dependency points downward only (corekit_lint enforces the layering).
using EngineExtensionQuery =
    std::function<std::uint64_t(CoreEngine&, Metric, std::uint64_t pick)>;

struct EngineServerOptions {
  // Client threads to spawn (ServeQueryMix) / client streams to replay
  // (ServeQueryMixSerial).
  std::uint32_t num_clients = 8;
  // Queries each client issues.
  std::uint32_t queries_per_client = 32;
  // Seed for the deterministic query mix.
  std::uint64_t seed = 0xC04EC1D5ULL;
  // When set, the mix draws a sixth query kind answered by this callable
  // (must be thread-safe: every client invokes it concurrently).  Leave
  // empty when benchmarking raw engine stages only.  Changing this
  // changes the kind stream, so serial replays must use the same setting.
  EngineExtensionQuery extension_query;
};

// What one client measured.
struct EngineClientReport {
  std::uint32_t client = 0;
  std::uint64_t queries = 0;
  // Per-client total and worst single-query latency.  In the concurrent
  // harness a cold-stage query includes time spent blocked on (or doing)
  // the build — the latency a real client would see.
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  // Fold of every answer this client saw (tagged by query index, so a
  // reordered or dropped answer changes the value).
  std::uint64_t checksum = 0;
};

struct EngineServeReport {
  std::vector<EngineClientReport> clients;
  // Wall time of the whole serve (threads launched -> all joined).
  double wall_seconds = 0.0;

  std::uint64_t TotalQueries() const;
  double MaxLatencySeconds() const;
  // XOR over client checksums: order-independent, so a concurrent run and
  // a serial replay of the same mix must agree exactly.
  std::uint64_t Checksum() const;
};

// Serves the query mix from options.num_clients concurrent threads, all
// sharing `engine` (and its caches).  Blocks until every client finishes.
EngineServeReport ServeQueryMix(CoreEngine& engine,
                                const EngineServerOptions& options);

// Replays the identical mix on the calling thread, client by client.
// Running this against a fresh engine yields the reference checksum for a
// concurrent run over the same graph and options.
EngineServeReport ServeQueryMixSerial(CoreEngine& engine,
                                      const EngineServerOptions& options);

// --- Mixed churn + query serving (mutable engine mode) --------------------

struct ChurnMixOptions {
  // The client side: same deterministic query mix as ServeQueryMix.
  EngineServerOptions serve;
  // The writer side: one thread applying this many ApplyBatch calls
  // back-to-back while the clients query.
  std::uint32_t num_batches = 16;
  std::uint32_t inserts_per_batch = 6;
  std::uint32_t deletes_per_batch = 2;
  // Churn style.  false (default): inserts are uniform random pairs and
  // deletes target the writer's own earlier inserts — adversarial
  // rewiring whose long-range shortcuts can trigger near-global
  // insertion cascades (good for stress tests).  true: deletes remove
  // edges of the live graph and inserts restore previously removed ones,
  // so the stream perturbs existing structure the way real churn does
  // and per-update footprints stay local (good for benchmarks).
  bool perturb_existing = false;
  // Seed for the writer's edge stream (independent of serve.seed).
  std::uint64_t churn_seed = 0xD15EA5EDULL;
};

struct ChurnServeReport {
  // The client-side report.  NOTE: unlike the static harness, checksums
  // here are interleaving-dependent (each query legitimately observes
  // whichever epoch is current), so they are not comparable to a serial
  // replay — freshness is validated by differential tests instead.
  EngineServeReport queries;
  // Writer-side accounting, accumulated over every batch.
  std::uint32_t batches = 0;
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t coreness_changed = 0;
  double patch_seconds_total = 0.0;
  double patch_seconds_max = 0.0;
  // engine.Epoch() after the writer finished.
  std::uint64_t final_epoch = 0;
};

// Serves the query mix from serve.num_clients threads while one writer
// thread applies num_batches edge-update batches to the same engine —
// the serving-under-churn deployment the mutable engine mode exists for.
// The writer's updates are a pure function of (churn_seed, graph size):
// inserts draw uniform vertex pairs, deletes target edges the writer
// inserted earlier (best-effort; misses count as rejected).  Blocks
// until the writer and every client finish.
ChurnServeReport ServeChurnMix(CoreEngine& engine,
                               const ChurnMixOptions& options);

}  // namespace corekit
