// Per-stage instrumentation for the CoreEngine pipeline.
//
// Every derived artifact the engine can build (decomposition, ordering,
// forest, components, triangle counts, per-metric score profiles) is a
// *stage*.  A StageRecord accumulates, per stage: how often the stage was
// rebuilt (cache misses), how often a request was served from the cache
// (hits), the wall time spent building, an estimate of the bytes the
// artifact occupies, and the number of threads the last build used.
//
// The bench harnesses read individual records (per-stage timing columns of
// Figures 7/8) and the serving layer dumps the whole structure as JSON.

#ifndef COREKIT_ENGINE_STAGE_STATS_H_
#define COREKIT_ENGINE_STAGE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace corekit {

// Version of the JSON layout ToJson() emits.  Consumers (the benchmark
// harness, bench_diff, log shipping) key on this; bump it whenever a
// stage name, field key, or the overall shape changes, and update the
// schema golden test (tests/engine/stage_stats_schema_test.cc) in the
// same commit.
inline constexpr int kStageStatsSchemaVersion = 1;

struct StageRecord {
  std::string name;
  // Times the stage actually ran (== cache misses for lazy artifacts).
  std::uint64_t builds = 0;
  // Requests served from the cached artifact without rebuilding.
  std::uint64_t hits = 0;
  // Total wall seconds across all builds of this stage.
  double seconds = 0.0;
  // Estimated bytes held by the artifact after the last build.
  std::uint64_t bytes = 0;
  // Threads used by the last build (1 for sequential stages).
  std::uint32_t threads = 1;
};

class StageStats {
 public:
  // The record for `name`, created zeroed on first use.  The reference is
  // invalidated by the next Get() of a new name.
  StageRecord& Get(std::string_view name);

  // The record for `name`, or nullptr if the stage never appeared.
  const StageRecord* Find(std::string_view name) const;

  // Records in first-touch order.
  const std::vector<StageRecord>& records() const { return records_; }

  // Aggregates across all stages.
  std::uint64_t TotalBuilds() const;
  std::uint64_t TotalHits() const;
  double TotalSeconds() const;
  std::uint64_t TotalBytes() const;

  // Drops every record (counters restart from zero).
  void Reset() { records_.clear(); }

  // Machine-readable dump for the bench harness / serving layer:
  //   {"schema_version":1,
  //    "stages":[{"name":...,"builds":...,"hits":...,"seconds":...,
  //               "bytes":...,"threads":...},...],
  //    "totals":{"builds":...,"hits":...,"seconds":...,"bytes":...}}
  // The layout is a stable contract (kStageStatsSchemaVersion above);
  // tests/engine/stage_stats_schema_test.cc locks it.
  std::string ToJson() const;

 private:
  std::vector<StageRecord> records_;
};

}  // namespace corekit

#endif  // COREKIT_ENGINE_STAGE_STATS_H_
