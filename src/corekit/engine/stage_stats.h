// Per-stage instrumentation for the CoreEngine pipeline.
//
// Every derived artifact the engine can build (decomposition, ordering,
// forest, components, triangle counts, per-metric score profiles) is a
// *stage*.  A StageRecord accumulates, per stage: how often the stage was
// rebuilt (cache misses), how often a request was served from the cache
// (hits), the wall time spent building, an estimate of the bytes the
// artifact occupies, and the number of threads the last build used.
//
// The bench harnesses read individual records (per-stage timing columns of
// Figures 7/8) and the serving layer dumps the whole structure as JSON.
//
// Thread-safety: full, and machine-checked.  Counters are atomics, so
// concurrent clients of a shared CoreEngine bump hits/builds race-free;
// the record registry (`records_`) is COREKIT_GUARDED_BY(mutex_) —
// Clang's -Wthread-safety verifies every access — and records are
// node-stable (a pointer from Find() stays valid, and live, for the
// StageStats' lifetime).  Reset() zeroes the counters atomically in
// place — concurrent readers never observe a torn counter, though across
// *different* counters they may see a mix of pre- and post-reset values.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "corekit/util/thread_annotations.h"

namespace corekit {

// The stages the CoreEngine pipeline can record, one per lazy artifact.
// kIngest / kBuild are the cold-path stages (file parsing and CSR
// normalization); engines constructed from an in-memory Graph never
// record them.  kCoreSet / kSingleCore are the *base* names of the
// per-metric stages; their records are keyed "coreset[ad]",
// "singlecore[mod]", ... (see CoreEngine::CoreSetStageName).  kCount is
// a sentinel, not a stage.
// kApplyBatch is the mutable-engine stage: one `patches` tick per
// CoreEngine::ApplyBatch call.
enum class EngineStage : int {
  kIngest = 0,  // edge-list file -> relabeled edge list
  kBuild,       // edge list -> normalized CSR Graph
  kDecompose,
  kOrder,
  kForest,
  kComponents,
  kTriangles,
  kTriplets,
  kApplyBatch,  // dynamic edge updates patched into the engine
  kCoreSet,
  kSingleCore,
  kCount,
};

// JSON stage names, indexed by EngineStage.  Entry i must be the
// lowercased enumerator name (minus its `k` prefix); tools/corekit_lint
// (rule `stage-table`) re-derives the correspondence from this header
// and fails CI when the two drift.  Renaming an entry is a StageStats
// schema change (bump kStageStatsSchemaVersion below).
inline constexpr std::string_view kEngineStageNames[] = {
    "ingest",    "build",      "decompose", "order",
    "forest",    "components", "triangles", "triplets",
    "applybatch", "coreset",   "singlecore",
};
static_assert(std::size(kEngineStageNames) ==
                  static_cast<std::size_t>(EngineStage::kCount),
              "kEngineStageNames must have one entry per EngineStage");

constexpr std::string_view EngineStageName(EngineStage stage) {
  return kEngineStageNames[static_cast<int>(stage)];
}

// Version of the JSON layout ToJson() emits.  Consumers (the benchmark
// harness, bench_diff, log shipping) key on this; bump it whenever a
// stage name, field key, or the overall shape changes, and update the
// schema golden test (tests/engine/stage_stats_schema_test.cc) in the
// same commit.  (The counters becoming atomic did not change the shape,
// so the version stayed at 1.  v2 added the cold-path "ingest"/"build"
// stages recorded by CoreEngine::FromEdgeListFile.  v3 added the
// per-stage "patches" counter and the "applybatch" stage for the
// mutable engine; every v2 key survives unchanged.)
inline constexpr int kStageStatsSchemaVersion = 3;

struct StageRecord {
  std::string name;
  // Times the stage actually ran (== cache misses for lazy artifacts).
  std::atomic<std::uint64_t> builds{0};
  // Requests served from the cached artifact without rebuilding.
  std::atomic<std::uint64_t> hits{0};
  // Times the stage was refreshed incrementally instead of rebuilt from
  // scratch (ApplyBatch patching coreness, value-patched triangle and
  // triplet counts, snapshot materializations).  Disjoint from `builds`.
  std::atomic<std::uint64_t> patches{0};
  // Total wall seconds across all builds of this stage.
  std::atomic<double> seconds{0.0};
  // Estimated bytes held by the artifact after the last build.
  std::atomic<std::uint64_t> bytes{0};
  // Threads used by the last build (1 for sequential stages).
  std::atomic<std::uint32_t> threads{1};

  StageRecord() = default;
  // Copies are point-in-time snapshots (each counter loaded atomically);
  // the bench harness stores them per case.
  StageRecord(const StageRecord& other) { *this = other; }
  StageRecord& operator=(const StageRecord& other) {
    name = other.name;
    builds.store(other.builds.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    hits.store(other.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    patches.store(other.patches.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    seconds.store(other.seconds.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    bytes.store(other.bytes.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    threads.store(other.threads.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  // Zeroes every counter (threads back to its 1 default).  Atomic per
  // counter; see the Reset() contract above.
  void Zero() {
    builds.store(0, std::memory_order_relaxed);
    hits.store(0, std::memory_order_relaxed);
    patches.store(0, std::memory_order_relaxed);
    seconds.store(0.0, std::memory_order_relaxed);
    bytes.store(0, std::memory_order_relaxed);
    threads.store(1, std::memory_order_relaxed);
  }
};

class StageStats {
 public:
  // The live record for `name`, created zeroed on first use.  Records are
  // node-stable: the reference stays valid (and keeps counting) for the
  // StageStats' lifetime, across later Get()s of new names.
  StageRecord& Get(std::string_view name) COREKIT_EXCLUDES(mutex_);

  // The live record for `name`, or nullptr if the stage never appeared.
  // The pointer observes later counter updates (tests watch it move).
  const StageRecord* Find(std::string_view name) const
      COREKIT_EXCLUDES(mutex_);

  // Snapshot of every record, in first-touch order.  Returns by value so
  // the copy is consistent with concurrent record creation; individual
  // counters are loaded atomically.
  std::vector<StageRecord> records() const COREKIT_EXCLUDES(mutex_);

  // Aggregates across all stages.
  std::uint64_t TotalBuilds() const;
  std::uint64_t TotalHits() const;
  std::uint64_t TotalPatches() const;
  double TotalSeconds() const;
  std::uint64_t TotalBytes() const;

  // Zeroes every counter in place; the stage rows themselves (and any
  // live pointer from Find()) survive, so a stage touched before the
  // reset reappears in ToJson() with zero counters.  Safe to call while
  // other threads are recording (no torn reads — see the header comment).
  void Reset() COREKIT_EXCLUDES(mutex_);

  // Machine-readable dump for the bench harness / serving layer:
  //   {"schema_version":3,
  //    "stages":[{"name":...,"builds":...,"hits":...,"patches":...,
  //               "seconds":...,"bytes":...,"threads":...},...],
  //    "totals":{"builds":...,"hits":...,"patches":...,"seconds":...,
  //              "bytes":...}}
  // The layout is a stable contract (kStageStatsSchemaVersion above);
  // tests/engine/stage_stats_schema_test.cc locks it.
  std::string ToJson() const;

 private:
  // Guards the registry structure (record creation and iteration); the
  // counters inside each record are atomics and need no lock.
  mutable Mutex mutex_;
  // deque: node-stable, so Get()/Find() references survive growth.
  std::deque<StageRecord> records_ COREKIT_GUARDED_BY(mutex_);
};

}  // namespace corekit
