#include "corekit/engine/stage_stats.h"

#include <cinttypes>
#include <cstdio>

namespace corekit {

namespace {

void AppendCounters(std::string& out, std::uint64_t builds, std::uint64_t hits,
                    double seconds, std::uint64_t bytes) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "\"builds\":%" PRIu64 ",\"hits\":%" PRIu64
                ",\"seconds\":%.6f,\"bytes\":%" PRIu64,
                builds, hits, seconds, bytes);
  out += buffer;
}

}  // namespace

StageRecord& StageStats::Get(std::string_view name) {
  for (StageRecord& record : records_) {
    if (record.name == name) return record;
  }
  records_.emplace_back();
  records_.back().name = std::string(name);
  return records_.back();
}

const StageRecord* StageStats::Find(std::string_view name) const {
  for (const StageRecord& record : records_) {
    if (record.name == name) return &record;
  }
  return nullptr;
}

std::uint64_t StageStats::TotalBuilds() const {
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) total += record.builds;
  return total;
}

std::uint64_t StageStats::TotalHits() const {
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) total += record.hits;
  return total;
}

double StageStats::TotalSeconds() const {
  double total = 0.0;
  for (const StageRecord& record : records_) total += record.seconds;
  return total;
}

std::uint64_t StageStats::TotalBytes() const {
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) total += record.bytes;
  return total;
}

std::string StageStats::ToJson() const {
  std::string out = "{\"schema_version\":" +
                    std::to_string(kStageStatsSchemaVersion) + ",\"stages\":[";
  bool first = true;
  for (const StageRecord& record : records_) {
    if (!first) out += ',';
    first = false;
    // Stage names are fixed identifiers ("decompose", "coreset[ad]", ...);
    // no JSON escaping is required.
    out += "{\"name\":\"" + record.name + "\",";
    AppendCounters(out, record.builds, record.hits, record.seconds,
                   record.bytes);
    out += ",\"threads\":" + std::to_string(record.threads) + "}";
  }
  out += "],\"totals\":{";
  AppendCounters(out, TotalBuilds(), TotalHits(), TotalSeconds(),
                 TotalBytes());
  out += "}}";
  return out;
}

}  // namespace corekit
