#include "corekit/engine/stage_stats.h"

#include <cinttypes>
#include <cstdio>

namespace corekit {

namespace {

void AppendCounters(std::string& out, std::uint64_t builds, std::uint64_t hits,
                    std::uint64_t patches, double seconds,
                    std::uint64_t bytes) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "\"builds\":%" PRIu64 ",\"hits\":%" PRIu64
                ",\"patches\":%" PRIu64 ",\"seconds\":%.6f,\"bytes\":%" PRIu64,
                builds, hits, patches, seconds, bytes);
  out += buffer;
}

}  // namespace

StageRecord& StageStats::Get(std::string_view name) {
  MutexLock lock(mutex_);
  for (StageRecord& record : records_) {
    if (record.name == name) return record;
  }
  records_.emplace_back();
  records_.back().name = std::string(name);
  return records_.back();
}

const StageRecord* StageStats::Find(std::string_view name) const {
  MutexLock lock(mutex_);
  for (const StageRecord& record : records_) {
    if (record.name == name) return &record;
  }
  return nullptr;
}

std::vector<StageRecord> StageStats::records() const {
  MutexLock lock(mutex_);
  return std::vector<StageRecord>(records_.begin(), records_.end());
}

std::uint64_t StageStats::TotalBuilds() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) {
    total += record.builds.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t StageStats::TotalHits() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) {
    total += record.hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t StageStats::TotalPatches() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) {
    total += record.patches.load(std::memory_order_relaxed);
  }
  return total;
}

double StageStats::TotalSeconds() const {
  MutexLock lock(mutex_);
  double total = 0.0;
  for (const StageRecord& record : records_) {
    total += record.seconds.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t StageStats::TotalBytes() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const StageRecord& record : records_) {
    total += record.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void StageStats::Reset() {
  MutexLock lock(mutex_);
  for (StageRecord& record : records_) record.Zero();
}

std::string StageStats::ToJson() const {
  // Snapshot first so the totals always equal the per-stage sums even
  // while other threads keep counting.
  const std::vector<StageRecord> snapshot = records();
  std::string out = "{\"schema_version\":" +
                    std::to_string(kStageStatsSchemaVersion) + ",\"stages\":[";
  std::uint64_t total_builds = 0;
  std::uint64_t total_hits = 0;
  std::uint64_t total_patches = 0;
  double total_seconds = 0.0;
  std::uint64_t total_bytes = 0;
  bool first = true;
  for (const StageRecord& record : snapshot) {
    if (!first) out += ',';
    first = false;
    const std::uint64_t builds = record.builds.load(std::memory_order_relaxed);
    const std::uint64_t hits = record.hits.load(std::memory_order_relaxed);
    const std::uint64_t patches =
        record.patches.load(std::memory_order_relaxed);
    const double seconds = record.seconds.load(std::memory_order_relaxed);
    const std::uint64_t bytes = record.bytes.load(std::memory_order_relaxed);
    total_builds += builds;
    total_hits += hits;
    total_patches += patches;
    total_seconds += seconds;
    total_bytes += bytes;
    // Stage names are fixed identifiers ("decompose", "coreset[ad]", ...);
    // no JSON escaping is required.
    out += "{\"name\":\"" + record.name + "\",";
    AppendCounters(out, builds, hits, patches, seconds, bytes);
    out += ",\"threads\":" +
           std::to_string(record.threads.load(std::memory_order_relaxed)) +
           "}";
  }
  out += "],\"totals\":{";
  AppendCounters(out, total_builds, total_hits, total_patches, total_seconds,
                 total_bytes);
  out += "}}";
  return out;
}

}  // namespace corekit
