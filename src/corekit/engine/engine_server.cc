#include "corekit/engine/engine_server.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <thread>

#include "corekit/util/random.h"
#include "corekit/util/timer.h"

namespace corekit {

namespace {

// One-round fold: order-sensitive within a client (answers are tagged
// with their query index before XOR-ing), stateless across clients.
std::uint64_t MixInto(std::uint64_t h, std::uint64_t v) {
  SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

std::uint64_t DoubleBits(double d) { return std::bit_cast<std::uint64_t>(d); }

// The deterministic per-client workload.  Everything a query does is a
// pure function of (options.seed, client, query index): the stream draws
// the same (kind, metric, vertex) triple in the concurrent harness and
// the serial replay, so checksums are comparable bit-for-bit.
EngineClientReport RunClient(CoreEngine& engine,
                             const EngineServerOptions& options,
                             std::uint32_t client) {
  EngineClientReport report;
  report.client = client;
  SplitMix64 stream(options.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<std::uint64_t>(client) + 1)));
  const std::uint64_t num_kinds = options.extension_query ? 6 : 5;
  constexpr std::uint64_t kNumMetrics =
      sizeof(kAllMetrics) / sizeof(kAllMetrics[0]);
  for (std::uint32_t i = 0; i < options.queries_per_client; ++i) {
    const std::uint64_t kind = stream.Next() % num_kinds;
    const Metric metric = kAllMetrics[stream.Next() % kNumMetrics];
    // Drawn unconditionally so the stream stays aligned across kinds.
    const std::uint64_t pick = stream.Next();
    std::uint64_t fold = 0;
    Timer timer;
    switch (kind) {
      case 0: {
        const CoreSetProfile& profile = engine.BestCoreSet(metric);
        fold = MixInto(MixInto(profile.best_k, DoubleBits(profile.best_score)),
                       profile.scores.size());
        break;
      }
      case 1: {
        const SingleCoreProfile& profile = engine.BestSingleCore(metric);
        fold = MixInto(MixInto(profile.best_k, DoubleBits(profile.best_score)),
                       MixInto(profile.best_node, profile.scores.size()));
        break;
      }
      case 2:
        fold = engine.Triangles();
        break;
      case 3:
        fold = engine.Triplets();
        break;
      case 4: {
        const ComponentLabels& components = engine.Components();
        fold = MixInto(components.num_components, components.label.size());
        break;
      }
      default:  // the injected extension kind (e.g. community search)
        fold = options.extension_query(engine, metric, pick);
        break;
    }
    const double seconds = timer.ElapsedSeconds();
    report.total_seconds += seconds;
    report.max_seconds = std::max(report.max_seconds, seconds);
    report.checksum ^=
        MixInto(fold, (static_cast<std::uint64_t>(i) << 8) | kind);
    ++report.queries;
  }
  return report;
}

}  // namespace

std::uint64_t EngineServeReport::TotalQueries() const {
  std::uint64_t total = 0;
  for (const EngineClientReport& client : clients) total += client.queries;
  return total;
}

double EngineServeReport::MaxLatencySeconds() const {
  double max_seconds = 0.0;
  for (const EngineClientReport& client : clients) {
    max_seconds = std::max(max_seconds, client.max_seconds);
  }
  return max_seconds;
}

std::uint64_t EngineServeReport::Checksum() const {
  std::uint64_t checksum = 0;
  for (const EngineClientReport& client : clients) {
    checksum ^= client.checksum;
  }
  return checksum;
}

EngineServeReport ServeQueryMix(CoreEngine& engine,
                                const EngineServerOptions& options) {
  EngineServeReport report;
  report.clients.resize(options.num_clients);
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(options.num_clients);
  for (std::uint32_t client = 0; client < options.num_clients; ++client) {
    // Each thread writes only its own report slot; no synchronization
    // beyond the join is needed.
    threads.emplace_back([&engine, &options, &report, client] {
      report.clients[client] = RunClient(engine, options, client);
    });
  }
  for (std::thread& thread : threads) thread.join();
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

EngineServeReport ServeQueryMixSerial(CoreEngine& engine,
                                      const EngineServerOptions& options) {
  EngineServeReport report;
  report.clients.reserve(options.num_clients);
  Timer wall;
  for (std::uint32_t client = 0; client < options.num_clients; ++client) {
    report.clients.push_back(RunClient(engine, options, client));
  }
  report.wall_seconds = wall.ElapsedSeconds();
  return report;
}

ChurnServeReport ServeChurnMix(CoreEngine& engine,
                               const ChurnMixOptions& options) {
  ChurnServeReport report;
  // Read the vertex count before any thread runs: the writer's batches
  // may drop/materialize snapshots, and the id space never changes.
  const VertexId n = engine.graph().NumVertices();

  report.queries.clients.resize(options.serve.num_clients);
  // Perturb mode draws deletions from the live edge set; snapshot it
  // before any thread runs (we are the only writer).
  EdgeList pool;
  if (options.perturb_existing) pool = engine.graph().ToEdgeList();
  Timer wall;
  std::thread writer([&engine, &options, &report, n, &pool] {
    SplitMix64 stream(options.churn_seed);
    EdgeList owned;    // random mode: edges this writer inserted
    EdgeList removed;  // perturb mode: deleted edges awaiting restore
    for (std::uint32_t b = 0; b < options.num_batches; ++b) {
      EdgeList inserts;
      EdgeList deletes;
      inserts.reserve(options.inserts_per_batch);
      if (options.perturb_existing) {
        // Restore edges removed by earlier batches, then delete fresh
        // ones; restored edges rejoin the pool only after the delete
        // picks so a batch never inserts and deletes the same edge.
        for (std::uint32_t i = 0;
             i < options.inserts_per_batch && !removed.empty(); ++i) {
          const std::size_t pick = stream.Next() % removed.size();
          inserts.push_back(removed[pick]);
          removed[pick] = removed.back();
          removed.pop_back();
        }
        for (std::uint32_t i = 0;
             i < options.deletes_per_batch && !pool.empty(); ++i) {
          const std::size_t pick = stream.Next() % pool.size();
          deletes.push_back(pool[pick]);
          removed.push_back(pool[pick]);
          pool[pick] = pool.back();
          pool.pop_back();
        }
        pool.insert(pool.end(), inserts.begin(), inserts.end());
      } else {
        for (std::uint32_t i = 0; i < options.inserts_per_batch; ++i) {
          const auto u = static_cast<VertexId>(stream.Next() % n);
          const auto v = static_cast<VertexId>(stream.Next() % n);
          inserts.emplace_back(u, v);
          // Best-effort target list: duplicates/self-loops get rejected
          // on both the insert and any later delete, which ApplyBatch
          // tolerates by design.
          if (u != v) owned.emplace_back(u, v);
        }
        for (std::uint32_t i = 0;
             i < options.deletes_per_batch && !owned.empty(); ++i) {
          const std::size_t pick = stream.Next() % owned.size();
          deletes.push_back(owned[pick]);
          owned[pick] = owned.back();
          owned.pop_back();
        }
      }
      const CoreEngine::BatchResult result =
          engine.ApplyBatch(inserts, deletes);
      ++report.batches;
      report.inserted += result.inserted;
      report.deleted += result.deleted;
      report.rejected += result.rejected;
      report.coreness_changed += result.coreness_changed;
      report.patch_seconds_total += result.seconds;
      report.patch_seconds_max =
          std::max(report.patch_seconds_max, result.seconds);
    }
  });
  std::vector<std::thread> clients;
  clients.reserve(options.serve.num_clients);
  for (std::uint32_t client = 0; client < options.serve.num_clients;
       ++client) {
    clients.emplace_back([&engine, &options, &report, client] {
      report.queries.clients[client] =
          RunClient(engine, options.serve, client);
    });
  }
  writer.join();
  for (std::thread& thread : clients) thread.join();
  report.queries.wall_seconds = wall.ElapsedSeconds();
  report.final_epoch = engine.Epoch();
  return report;
}

}  // namespace corekit
