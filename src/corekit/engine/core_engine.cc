#include "corekit/engine/core_engine.h"

#include <string>
#include <utility>
#include <vector>

#include "corekit/core/triangle_scoring.h"
#include "corekit/graph/ckg_format.h"
#include "corekit/graph/parallel_edge_list.h"
#include "corekit/graph/parallel_graph_builder.h"
#include "corekit/parallel/frontier_peel.h"
#include "corekit/parallel/parallel_ordering.h"
#include "corekit/parallel/parallel_triangles.h"
#include "corekit/util/timer.h"

#ifdef COREKIT_AUDIT
#include "corekit/analysis/invariant_audit.h"
#include "corekit/util/logging.h"
#endif

namespace corekit {

namespace {

#ifdef COREKIT_AUDIT
// Audit-mode stage gate: a published artifact that fails its invariant
// audit is a poisoned cache every later query would consume, so abort
// with the full violation report (sanitizer semantics).  Runs after the
// stage timer stops — audit overhead never skews StageStats.
void CheckStageAudit(const AuditResult& audit, std::string_view stage) {
  COREKIT_CHECK(audit.ok()) << "COREKIT_AUDIT: stage \"" << stage
                            << "\" published a corrupted artifact ("
                            << audit.total_violations << " violations):\n"
                            << audit.Summary();
}

// First-principles triangle count (sum over edges of |N(u) ∩ N(v)|,
// every triangle counted three times).  Independent of the ordered
// kernels, so it cross-checks the value-patched counter.
std::uint64_t BruteTriangleCount(const Graph& graph) {
  std::uint64_t incidences = 0;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      const auto nu = graph.Neighbors(u);
      const auto nv = graph.Neighbors(v);
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nv[j] < nu[i]) {
          ++j;
        } else {
          ++incidences;
          ++i;
          ++j;
        }
      }
    }
  }
  return incidences / 3;
}
#endif

// Fixed stage names come from the EngineStage table (stage_stats.h); the
// per-metric stages append the paper abbreviation: "coreset[ad]",
// "singlecore[mod]", ...
constexpr std::string_view kStageIngest = EngineStageName(EngineStage::kIngest);
constexpr std::string_view kStageBuild = EngineStageName(EngineStage::kBuild);
constexpr std::string_view kStageDecompose =
    EngineStageName(EngineStage::kDecompose);
constexpr std::string_view kStageOrder = EngineStageName(EngineStage::kOrder);
constexpr std::string_view kStageForest = EngineStageName(EngineStage::kForest);
constexpr std::string_view kStageComponents =
    EngineStageName(EngineStage::kComponents);
constexpr std::string_view kStageTriangles =
    EngineStageName(EngineStage::kTriangles);
constexpr std::string_view kStageTriplets =
    EngineStageName(EngineStage::kTriplets);
constexpr std::string_view kStageApplyBatch =
    EngineStageName(EngineStage::kApplyBatch);

// --- Byte estimates ------------------------------------------------------
//
// The artifacts are vectors of POD; sizing them from n/m/kmax (or their
// own element counts) is exact up to allocator slack.  These feed the
// StageRecord::bytes field, which is observability, not accounting.

template <typename T>
std::uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

std::uint64_t DecompositionBytes(const CoreDecomposition& cores) {
  return VectorBytes(cores.coreness) + VectorBytes(cores.peel_order);
}

std::uint64_t OrderedBytes(const Graph& graph, VertexId kmax) {
  const std::uint64_t n = graph.NumVertices();
  const std::uint64_t m = graph.NumEdges();
  // coreness + order + same/plus/high tags + rank_of: 6 per-vertex
  // VertexId arrays; shell_start: kmax+2; offsets: n+1 EdgeIds;
  // neighbors + neighbor_ranks: 2 x 2m VertexIds.
  return 6 * n * sizeof(VertexId) +
         (static_cast<std::uint64_t>(kmax) + 2) * sizeof(VertexId) +
         (n + 1) * sizeof(EdgeId) + 2 * (2 * m) * sizeof(VertexId);
}

std::uint64_t ForestBytes(const CoreForest& forest) {
  std::uint64_t bytes = 0;
  for (const CoreForest::Node& node : forest.nodes()) {
    bytes += sizeof(CoreForest::Node) + VectorBytes(node.children) +
             VectorBytes(node.vertices);
  }
  return bytes;
}

std::uint64_t ComponentBytes(const ComponentLabels& components) {
  return VectorBytes(components.label);
}

std::uint64_t CoreSetProfileBytes(const CoreSetProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

std::uint64_t SingleCoreProfileBytes(const SingleCoreProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

std::uint64_t GraphBytes(const Graph& graph) {
  return static_cast<std::uint64_t>(graph.Offsets().size_bytes()) +
         static_cast<std::uint64_t>(graph.NeighborArray().size_bytes());
}

}  // namespace

std::string CoreEngine::CoreSetStageName(Metric metric) {
  return std::string(EngineStageName(EngineStage::kCoreSet)) + "[" +
         MetricShortName(metric) + "]";
}

std::string CoreEngine::SingleCoreStageName(Metric metric) {
  return std::string(EngineStageName(EngineStage::kSingleCore)) + "[" +
         MetricShortName(metric) + "]";
}

CoreEngine::CoreEngine(const Graph& graph, CoreEngineOptions options)
    : graph_(&graph), options_(options) {
  graph_slot_.published.store(graph_, std::memory_order_release);
  if (options_.eager_ordering) WarmUp();
}

CoreEngine::CoreEngine(Graph&& graph, CoreEngineOptions options)
    : owned_graph_(std::move(graph)),
      graph_(&*owned_graph_),
      options_(options) {
  graph_slot_.published.store(graph_, std::memory_order_release);
  if (options_.eager_ordering) WarmUp();
}

Result<std::unique_ptr<CoreEngine>> CoreEngine::FromEdgeListFile(
    const std::string& path, CoreEngineOptions options) {
  auto pool = std::make_unique<ThreadPool>(options.num_threads);
  const std::uint32_t threads = pool->num_threads();

  Timer timer;
  Result<ParsedEdgeList> parsed = ParseSnapEdgeListParallel(path, *pool);
  if (!parsed.ok()) return parsed.status();
  const double ingest_seconds = timer.ElapsedSeconds();
  const std::uint64_t ingest_bytes = VectorBytes(parsed->edges);

  timer.Reset();
  Graph graph = BuildGraphParallel(parsed->num_vertices, parsed->edges, *pool);
  const double build_seconds = timer.ElapsedSeconds();
  const std::uint64_t build_bytes = GraphBytes(graph);

  // Construct with eager_ordering off so any warm-up runs only after the
  // ingestion pool has been donated (one pool for the whole pipeline).
  CoreEngineOptions ctor_options = options;
  ctor_options.eager_ordering = false;
  auto engine = std::make_unique<CoreEngine>(std::move(graph), ctor_options);
  engine->options_ = options;

  StageRecord& ingest = engine->stats_.Get(kStageIngest);
  ++ingest.builds;
  ingest.seconds += ingest_seconds;
  ingest.bytes = ingest_bytes;
  ingest.threads = threads;
  StageRecord& build = engine->stats_.Get(kStageBuild);
  ++build.builds;
  build.seconds += build_seconds;
  build.bytes = build_bytes;
  build.threads = threads;

  engine->AdoptPool(std::move(pool));
  if (options.eager_ordering) engine->WarmUp();
  return engine;
}

Result<std::unique_ptr<CoreEngine>> CoreEngine::FromBinaryFile(
    const std::string& path, CoreEngineOptions options) {
  Timer timer;
  CkgReadOptions read_options;
  read_options.force_fallback = options.binary_force_fallback;
  Result<Graph> graph = ReadCkgGraph(path, read_options);
  if (!graph.ok()) return graph.status();
  const double ingest_seconds = timer.ElapsedSeconds();
  const std::uint64_t graph_bytes = GraphBytes(*graph);

  CoreEngineOptions ctor_options = options;
  ctor_options.eager_ordering = false;
  // value()&& hands the graph over as an rvalue so the engine owns it
  // (the lvalue form would bind the aliasing const& constructor and
  // dangle once the local Result dies).
  auto engine =
      std::make_unique<CoreEngine>(std::move(graph).value(), ctor_options);
  engine->options_ = options;

  // The whole load (map/read + validate + optional decode) is the
  // ingest stage; the build stage records the snapshot footprint the
  // load produced (for a zero-copy view, bytes the file backs).
  StageRecord& ingest = engine->stats_.Get(kStageIngest);
  ++ingest.builds;
  ingest.seconds += ingest_seconds;
  ingest.bytes = graph_bytes;
  ingest.threads = 1;
  StageRecord& build = engine->stats_.Get(kStageBuild);
  ++build.builds;
  build.bytes = graph_bytes;
  build.threads = 1;

  if (options.eager_ordering) engine->WarmUp();
  return engine;
}

void CoreEngine::WarmUp() {
  Cores();
  Ordered();
}

void CoreEngine::AdoptPool(std::unique_ptr<ThreadPool> pool) {
  std::call_once(pool_once_, [&] { pool_ = std::move(pool); });
}

ThreadPool& CoreEngine::Pool() {
  std::call_once(pool_once_, [&] {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  });
  return *pool_;
}

// The current graph snapshot.  Intentionally outside the Acquire
// protocol: the graph is the substrate, not a query-level artifact, so
// it never counts hits (preserving the pre-mutable stage accounting),
// and its "build" — materializing the dynamic index — depends on
// nothing, so holding the slot mutex throughout is deadlock-free.
const Graph& CoreEngine::CurrentGraph() {
  if (const Graph* p = graph_slot_.published.load(std::memory_order_acquire)) {
    return *p;
  }
  MutexLock lock(graph_slot_.mutex);
  if (const Graph* p = graph_slot_.published.load(std::memory_order_acquire)) {
    return *p;
  }
  // Only ApplyBatch nulls the graph slot, and it installs dyn_ (under
  // this mutex, among all of them) before doing so.
  Timer timer;
  auto snapshot = std::make_unique<const Graph>(dyn_->Snapshot());
  StageRecord& record = stats_.Get(kStageBuild);
  ++record.patches;
  record.seconds += timer.ElapsedSeconds();
  record.bytes = GraphBytes(*snapshot);
  return graph_slot_.Publish(std::move(snapshot), Epoch());
}

const Graph& CoreEngine::graph() { return CurrentGraph(); }

// The per-epoch exactly-once accessor protocol:
//
//   1. Warm fast path: an acquire load of `published` (paired with the
//      builder's release store) also publishes the artifact itself, so
//      warm readers touch no lock.
//   2. Cold path: under the slot mutex, the first thread to find the
//      slot unpublished and not building becomes the builder; racers
//      wait on the condition variable and fall through as hits once the
//      build publishes.  (A condition-variable election rather than
//      std::call_once: a once_flag cannot be re-armed when ApplyBatch
//      invalidates the slot.)
//   3. The builder runs the dependency accessors with NO slot mutex
//      held — builders hold at most one slot mutex at a time, which is
//      what makes ApplyBatch's acquire-every-slot step deadlock-free —
//      then revalidates the epoch under the lock and retries the
//      dependencies if a batch landed in between.
//   4. Accounting: exactly the builder bumps `builds` (or `patches`,
//      inside `build`); every other call — racer or warm — counts a
//      hit, and the dependency accessors run exactly once per build.
//      N threads racing a cold stage therefore report builds == 1 and
//      hits == N - 1, the invariant the concurrency tests assert.
template <typename T, typename EnsureFn, typename BuildFn>
const T& CoreEngine::Acquire(Slot<T>& slot, std::string_view stage,
                             EnsureFn&& ensure, BuildFn&& build) {
  if (const T* p = slot.published.load(std::memory_order_acquire)) {
    ++stats_.Get(stage).hits;
    return *p;
  }
  // Explicit Lock()/Unlock() rather than a scoped lock: the protocol
  // releases the mutex mid-function around the dependency step, and the
  // thread-safety analysis tracks the explicit calls across both loops
  // (the lock is held at every back edge, released on every return).
  slot.mutex.Lock();
  for (;;) {
    if (const T* p = slot.published.load(std::memory_order_acquire)) {
      slot.mutex.Unlock();
      ++stats_.Get(stage).hits;
      return *p;
    }
    if (!slot.building) break;
    slot.ready_cv.Wait(slot.mutex);
  }
  slot.building = true;
  for (;;) {
    slot.mutex.Unlock();
    const std::uint64_t epoch = Epoch();
    auto deps = ensure();
    slot.mutex.Lock();
    if (Epoch() != epoch) continue;  // a batch landed; deps are stale
    const T& built = slot.Publish(build(deps), epoch);
    slot.mutex.Unlock();
    return built;
  }
}

const CoreDecomposition& CoreEngine::Cores() {
  return Acquire(
      cores_, kStageDecompose, [&] { return &CurrentGraph(); },
      [&](const Graph* graph) -> std::unique_ptr<const CoreDecomposition> {
        StageRecord& record = stats_.Get(kStageDecompose);
        std::uint32_t threads = 1;
        std::unique_ptr<CoreDecomposition> cores;
        Timer timer;
        if (dyn_ != nullptr) {
          // Patch path: the dynamic index maintains exact coreness, so
          // only the peel order needs regenerating — the guided O(n+m)
          // shell peel, not the full bin-sort decomposition.
          cores = std::make_unique<CoreDecomposition>(
              DecompositionFromCoreness(*graph, dyn_->CorenessArray()));
          record.seconds += timer.ElapsedSeconds();
          ++record.patches;
        } else if (options_.parallel_peel && Pool().num_threads() > 1) {
          // Frontier-based parallel peel (parallel/frontier_peel.h);
          // bitwise-identical coreness to the serial path.  At one
          // thread the pool buys nothing, so the plain serial peel
          // below keeps that configuration untouched.
          ThreadPool& pool = Pool();
          threads = pool.num_threads();
          timer.Reset();  // exclude lazy pool construction
          cores = std::make_unique<CoreDecomposition>(
              ComputeCoreDecompositionFrontier(*graph, pool));
          record.seconds += timer.ElapsedSeconds();
          ++record.builds;
        } else {
          cores = std::make_unique<CoreDecomposition>(
              ComputeCoreDecomposition(*graph));
          record.seconds += timer.ElapsedSeconds();
          ++record.builds;
        }
        record.bytes = DecompositionBytes(*cores);
        record.threads = threads;
#ifdef COREKIT_AUDIT
        CheckStageAudit(AuditCoreDecomposition(*graph, *cores),
                        kStageDecompose);
#endif
        return cores;
      });
}

const OrderedGraph& CoreEngine::Ordered() {
  struct Deps {
    const Graph* graph;
    const CoreDecomposition* cores;
  };
  return Acquire(
      ordered_, kStageOrder,
      [&] {
        Deps deps;
        deps.graph = &CurrentGraph();
        deps.cores = &Cores();  // accrues to "decompose"
        return deps;
      },
      [&](const Deps& deps) -> std::unique_ptr<const OrderedGraph> {
        std::uint32_t threads = 1;
        std::unique_ptr<OrderedGraph> ordered;
        Timer timer;
        if (options_.parallel_ordering) {
          ThreadPool& pool = Pool();
          threads = pool.num_threads();
          timer.Reset();  // exclude lazy pool construction
          ordered = std::make_unique<OrderedGraph>(*deps.graph, *deps.cores,
                                                   pool);
        } else {
          ordered = std::make_unique<OrderedGraph>(*deps.graph, *deps.cores);
        }
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(kStageOrder);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = OrderedBytes(*deps.graph, ordered->kmax());
        record.threads = threads;
#ifdef COREKIT_AUDIT
        CheckStageAudit(AuditOrderedGraph(*deps.graph, *deps.cores, *ordered),
                        kStageOrder);
#endif
        return ordered;
      });
}

const CoreForest& CoreEngine::Forest() {
  struct Deps {
    const Graph* graph;
    const CoreDecomposition* cores;
  };
  return Acquire(
      forest_, kStageForest,
      [&] {
        Deps deps;
        deps.graph = &CurrentGraph();
        deps.cores = &Cores();
        return deps;
      },
      [&](const Deps& deps) -> std::unique_ptr<const CoreForest> {
        Timer timer;
        auto forest = std::make_unique<CoreForest>(*deps.graph, *deps.cores);
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(kStageForest);
        ++record.builds;
        record.seconds += seconds;
        record.bytes =
            ForestBytes(*forest) +
            // node_of_vertex_ + subtree_size_: one VertexId-sized entry
            // each per vertex / node, dominated by the per-vertex array.
            2 * static_cast<std::uint64_t>(deps.graph->NumVertices()) *
                sizeof(VertexId);
#ifdef COREKIT_AUDIT
        CheckStageAudit(AuditCoreForest(*deps.graph, *deps.cores, *forest),
                        kStageForest);
#endif
        return forest;
      });
}

const ComponentLabels& CoreEngine::Components() {
  return Acquire(
      components_, kStageComponents, [&] { return &CurrentGraph(); },
      [&](const Graph* graph) -> std::unique_ptr<const ComponentLabels> {
        Timer timer;
        auto components =
            std::make_unique<ComponentLabels>(ConnectedComponents(*graph));
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(kStageComponents);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = ComponentBytes(*components);
        return components;
      });
}

std::uint64_t CoreEngine::Triangles() {
  return Acquire(
      triangles_, kStageTriangles,
      [&] { return &Ordered(); },  // accrues to its own stages
      [&](const OrderedGraph* ordered) -> std::unique_ptr<const std::uint64_t> {
        std::uint32_t threads = 1;
        std::uint64_t count = 0;
        Timer timer;
        if (options_.parallel_triangles) {
          ThreadPool& pool = Pool();
          threads = pool.num_threads();
          timer.Reset();
          count = CountTrianglesParallel(*ordered, pool);
        } else {
          count = CountTriangles(*ordered);
        }
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(kStageTriangles);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = sizeof(std::uint64_t);
        record.threads = threads;
        return std::make_unique<const std::uint64_t>(count);
      });
}

std::uint64_t CoreEngine::Triplets() {
  return Acquire(
      triplets_, kStageTriplets, [&] { return &CurrentGraph(); },
      [&](const Graph* graph) -> std::unique_ptr<const std::uint64_t> {
        Timer timer;
        const std::uint64_t count = CountTriplets(*graph);
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(kStageTriplets);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = sizeof(std::uint64_t);
        return std::make_unique<const std::uint64_t>(count);
      });
}

const CoreSetProfile& CoreEngine::BestCoreSet(Metric metric) {
  Slot<CoreSetProfile>* slot;
  {
    // Structural lock only: find-or-create the slot, then release.  The
    // build below runs outside this lock (std::map nodes are stable).
    MutexLock lock(profile_mutex_);
    slot = &core_set_slots_[metric];
  }
  const std::string stage = CoreSetStageName(metric);
  return Acquire(
      *slot, stage,
      [&] { return &Ordered(); },  // accrues to its own stages
      [&](const OrderedGraph* ordered)
          -> std::unique_ptr<const CoreSetProfile> {
        Timer timer;
        auto profile =
            std::make_unique<CoreSetProfile>(FindBestCoreSet(*ordered, metric));
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(stage);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = CoreSetProfileBytes(*profile);
#ifdef COREKIT_AUDIT
        // Raw published loads (not CurrentGraph()/Cores()): the accessors
        // would bump counters and skew the exactly-once accounting the
        // concurrency tests assert.  Ordered() in the dependency step
        // guarantees both are published at this epoch.
        const Graph* graph =
            graph_slot_.published.load(std::memory_order_acquire);
        const CoreDecomposition* cores =
            cores_.published.load(std::memory_order_acquire);
        CheckStageAudit(AuditPrimaryValues(*graph, *cores, profile->primaries),
                        stage);
#endif
        return profile;
      });
}

const SingleCoreProfile& CoreEngine::BestSingleCore(Metric metric) {
  Slot<SingleCoreProfile>* slot;
  {
    MutexLock lock(profile_mutex_);
    slot = &single_core_slots_[metric];
  }
  const std::string stage = SingleCoreStageName(metric);
  struct Deps {
    const OrderedGraph* ordered;
    const CoreForest* forest;
  };
  return Acquire(
      *slot, stage,
      [&] {
        Deps deps;
        deps.ordered = &Ordered();
        deps.forest = &Forest();
        return deps;
      },
      [&](const Deps& deps) -> std::unique_ptr<const SingleCoreProfile> {
        const OrderedGraph& ordered = *deps.ordered;
        const CoreForest& forest = *deps.forest;
        const bool needs_triangles = MetricNeedsTriangles(metric);
        std::uint32_t threads = 1;
        std::vector<std::uint64_t> per_vertex;
        const std::vector<std::uint64_t>* per_vertex_ptr = nullptr;
        Timer timer;
        // Triangle-hungry metrics: precompute the per-vertex scores with
        // the parallel kernel so the O(m^1.5) part of Algorithm 5 comes
        // off the pool instead of the serial scan.  The counts are exact,
        // so the profile is identical either way.
        if (options_.parallel_triangles && needs_triangles &&
            forest.NumNodes() > 0) {
          ThreadPool& pool = Pool();
          threads = pool.num_threads();
          timer.Reset();  // exclude lazy pool construction
          per_vertex = CountTrianglesPerVertex(ordered, pool);
          per_vertex_ptr = &per_vertex;
        }
        // FindBestSingleCore requires a non-empty forest ("empty graph has
        // no k-core").  The engine stays total: the empty graph yields an
        // empty profile (no scores, best_k = 0) instead of tripping the
        // CHECK.
        auto profile = std::make_unique<SingleCoreProfile>();
        if (forest.NumNodes() > 0) {
          *profile =
              FindBestSingleCore(ordered, forest, MetricFunction(metric),
                                 needs_triangles, per_vertex_ptr);
        }
        const double seconds = timer.ElapsedSeconds();
        StageRecord& record = stats_.Get(stage);
        ++record.builds;
        record.seconds += seconds;
        record.bytes = SingleCoreProfileBytes(*profile);
        record.threads = threads;
#ifdef COREKIT_AUDIT
        if (forest.NumNodes() > 0) {
          const Graph* graph =
              graph_slot_.published.load(std::memory_order_acquire);
          CheckStageAudit(
              AuditSingleCorePrimaryValues(*graph, forest,
                                           profile->primaries),
              stage);
        }
#endif
        return profile;
      });
}

CoreEngine::BatchResult CoreEngine::ApplyBatch(const EdgeList& inserts,
                                               const EdgeList& deletes) {
  Timer timer;
  // Writers serialize here; readers never touch this mutex.
  MutexLock update_lock(update_mutex_);
  std::unique_ptr<DynamicCoreIndex> fresh;
  if (dyn_ == nullptr) {
    // First batch: adopt the current snapshot + cached coreness into the
    // dynamic index.  Done before freezing the slots — the accessors use
    // the normal locking protocol, and no other writer can interleave
    // (we hold update_mutex_), so both stay the current versions.
    const Graph& graph = CurrentGraph();
    const CoreDecomposition& cores = Cores();
    fresh = std::make_unique<DynamicCoreIndex>(graph, cores.coreness);
  }

  // Freeze every artifact slot at once, acquiring in fixed declaration
  // order (std::scoped_lock's runtime deadlock avoidance is unnecessary:
  // builders hold at most one slot mutex and never acquire a second
  // while holding it, and ApplyBatch is the only multi-slot acquirer —
  // serialized by update_mutex_ — so the fixed order IS the lock-order
  // DAG the static analysis and the lint lock-order pass check).
  // In-flight builders that already ran their dependency step re-detect
  // the epoch bump and retry.  Explicit Lock()/Unlock() rather than a
  // scoped lock so Clang's thread-safety analysis tracks the
  // acquisitions; no code between here and the unlocks below throws
  // (the dynamic index reports rejects via counters, not exceptions).
  graph_slot_.mutex.Lock();
  cores_.mutex.Lock();
  ordered_.mutex.Lock();
  forest_.mutex.Lock();
  components_.mutex.Lock();
  triangles_.mutex.Lock();
  triplets_.mutex.Lock();
  profile_mutex_.Lock();
  LockProfileSlots();

  if (fresh != nullptr) dyn_ = std::move(fresh);
  const DynamicBatchStats batch = dyn_->ApplyBatch(inserts, deletes);

  BatchResult result;
  result.inserted = batch.inserted;
  result.deleted = batch.deleted;
  result.rejected = batch.rejected;
  result.coreness_changed = batch.coreness_changed;
  result.footprint = batch.footprint;
  result.triangle_delta = batch.triangle_delta;
  result.triplet_delta = batch.triplet_delta;

  const bool effective = batch.inserted + batch.deleted > 0;
  if (effective) {
    const std::uint64_t epoch =
        epoch_.load(std::memory_order_relaxed) + 1;
    // Structure-dependent artifacts: drop, rebuild lazily on next access.
    graph_slot_.published.store(nullptr, std::memory_order_release);
    cores_.published.store(nullptr, std::memory_order_release);
    ordered_.published.store(nullptr, std::memory_order_release);
    forest_.published.store(nullptr, std::memory_order_release);
    components_.published.store(nullptr, std::memory_order_release);
    // Per-metric profiles: dropped slot by slot; the slots themselves
    // (and references into superseded profiles) survive.
    for (auto& [metric, slot] : core_set_slots_) {
      slot.published.store(nullptr, std::memory_order_release);
    }
    for (auto& [metric, slot] : single_core_slots_) {
      slot.published.store(nullptr, std::memory_order_release);
    }
    // Value artifacts: patched in place with the batch's exact deltas —
    // and left untouched (pointer identity preserved) when the batch
    // didn't change them.
    if (const std::uint64_t* triangles =
            triangles_.published.load(std::memory_order_acquire)) {
      if (batch.triangle_delta != 0) {
        triangles_.Publish(
            std::make_unique<const std::uint64_t>(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(*triangles) + batch.triangle_delta)),
            epoch);
        ++stats_.Get(kStageTriangles).patches;
      } else {
        triangles_.built_epoch = epoch;
      }
    }
    if (const std::uint64_t* triplets =
            triplets_.published.load(std::memory_order_acquire)) {
      if (batch.triplet_delta != 0) {
        triplets_.Publish(
            std::make_unique<const std::uint64_t>(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(*triplets) + batch.triplet_delta)),
            epoch);
        ++stats_.Get(kStageTriplets).patches;
      } else {
        triplets_.built_epoch = epoch;
      }
    }
    epoch_.store(epoch, std::memory_order_release);

#ifdef COREKIT_AUDIT
    // Patch-boundary revalidation: the patched coreness must match a
    // cold decomposition of the patched graph, and the value-patched
    // counters must match first-principles recounts.
    const Graph snapshot = dyn_->Snapshot();
    CheckStageAudit(AuditPatchedCoreness(snapshot, dyn_->CorenessArray()),
                    kStageApplyBatch);
    if (const std::uint64_t* triangles =
            triangles_.published.load(std::memory_order_acquire)) {
      const std::uint64_t recount = BruteTriangleCount(snapshot);
      COREKIT_CHECK(*triangles == recount)
          << "COREKIT_AUDIT: patched triangle count " << *triangles
          << " != recount " << recount;
    }
    if (const std::uint64_t* triplets =
            triplets_.published.load(std::memory_order_acquire)) {
      const std::uint64_t recount = CountTriplets(snapshot);
      COREKIT_CHECK(*triplets == recount)
          << "COREKIT_AUDIT: patched triplet count " << *triplets
          << " != recount " << recount;
    }
#endif
  }

  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageApplyBatch);
  ++record.patches;
  record.seconds += seconds;
  // The dynamic index is the artifact this stage maintains: coreness +
  // scratch arrays plus the delta-backed adjacency.
  record.bytes =
      3 * static_cast<std::uint64_t>(dyn_->NumVertices()) * sizeof(VertexId) +
      2 * dyn_->NumEdges() * sizeof(VertexId);
  result.epoch = Epoch();
  result.seconds = seconds;

  UnlockProfileSlots();
  profile_mutex_.Unlock();
  triplets_.mutex.Unlock();
  triangles_.mutex.Unlock();
  components_.mutex.Unlock();
  forest_.mutex.Unlock();
  ordered_.mutex.Unlock();
  cores_.mutex.Unlock();
  graph_slot_.mutex.Unlock();
  return result;
}

void CoreEngine::LockProfileSlots() {
  for (auto& [metric, slot] : core_set_slots_) slot.mutex.Lock();
  for (auto& [metric, slot] : single_core_slots_) slot.mutex.Lock();
}

void CoreEngine::UnlockProfileSlots() {
  for (auto& [metric, slot] : core_set_slots_) slot.mutex.Unlock();
  for (auto& [metric, slot] : single_core_slots_) slot.mutex.Unlock();
}

}  // namespace corekit
