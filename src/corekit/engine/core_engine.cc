#include "corekit/engine/core_engine.h"

#include <string>
#include <utility>

#include "corekit/core/triangle_scoring.h"
#include "corekit/parallel/parallel_core.h"
#include "corekit/parallel/parallel_triangles.h"
#include "corekit/util/timer.h"

namespace corekit {

namespace {

// Stage names.  The per-metric stages append the paper abbreviation:
// "coreset[ad]", "singlecore[mod]", ...
constexpr char kStageDecompose[] = "decompose";
constexpr char kStageOrder[] = "order";
constexpr char kStageForest[] = "forest";
constexpr char kStageComponents[] = "components";
constexpr char kStageTriangles[] = "triangles";
constexpr char kStageTriplets[] = "triplets";

// --- Byte estimates ------------------------------------------------------
//
// The artifacts are vectors of POD; sizing them from n/m/kmax (or their
// own element counts) is exact up to allocator slack.  These feed the
// StageRecord::bytes field, which is observability, not accounting.

template <typename T>
std::uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

std::uint64_t DecompositionBytes(const CoreDecomposition& cores) {
  return VectorBytes(cores.coreness) + VectorBytes(cores.peel_order);
}

std::uint64_t OrderedBytes(const Graph& graph, VertexId kmax) {
  const std::uint64_t n = graph.NumVertices();
  const std::uint64_t m = graph.NumEdges();
  // coreness + order + same/plus/high tags: 5 per-vertex VertexId arrays;
  // shell_start: kmax+2; offsets: n+1 EdgeIds; neighbors: 2m VertexIds.
  return 5 * n * sizeof(VertexId) +
         (static_cast<std::uint64_t>(kmax) + 2) * sizeof(VertexId) +
         (n + 1) * sizeof(EdgeId) + 2 * m * sizeof(VertexId);
}

std::uint64_t ForestBytes(const CoreForest& forest) {
  std::uint64_t bytes = 0;
  for (const CoreForest::Node& node : forest.nodes()) {
    bytes += sizeof(CoreForest::Node) + VectorBytes(node.children) +
             VectorBytes(node.vertices);
  }
  return bytes;
}

std::uint64_t ComponentBytes(const ComponentLabels& components) {
  return VectorBytes(components.label);
}

std::uint64_t CoreSetProfileBytes(const CoreSetProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

std::uint64_t SingleCoreProfileBytes(const SingleCoreProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

}  // namespace

std::string CoreEngine::CoreSetStageName(Metric metric) {
  return std::string("coreset[") + MetricShortName(metric) + "]";
}

std::string CoreEngine::SingleCoreStageName(Metric metric) {
  return std::string("singlecore[") + MetricShortName(metric) + "]";
}

CoreEngine::CoreEngine(const Graph& graph, CoreEngineOptions options)
    : graph_(&graph), options_(options) {
  if (options_.eager_ordering) WarmUp();
}

CoreEngine::CoreEngine(Graph&& graph, CoreEngineOptions options)
    : owned_graph_(std::move(graph)),
      graph_(&*owned_graph_),
      options_(options) {
  if (options_.eager_ordering) WarmUp();
}

void CoreEngine::WarmUp() {
  Cores();
  Ordered();
}

ThreadPool& CoreEngine::Pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  return *pool_;
}

const CoreDecomposition& CoreEngine::Cores() {
  if (cores_.has_value()) {
    ++stats_.Get(kStageDecompose).hits;
    return *cores_;
  }
  std::uint32_t threads = 1;
  Timer timer;
  if (options_.parallel_peel) {
    ThreadPool& pool = Pool();
    threads = pool.num_threads();
    timer.Reset();  // exclude lazy pool construction from the stage time
    cores_ = ComputeCoreDecompositionParallel(*graph_, pool);
  } else {
    cores_ = ComputeCoreDecomposition(*graph_);
  }
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageDecompose);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = DecompositionBytes(*cores_);
  record.threads = threads;
  return *cores_;
}

const OrderedGraph& CoreEngine::Ordered() {
  if (ordered_) {
    ++stats_.Get(kStageOrder).hits;
    return *ordered_;
  }
  const CoreDecomposition& cores = Cores();  // accrues to "decompose"
  Timer timer;
  ordered_ = std::make_unique<OrderedGraph>(*graph_, cores);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageOrder);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = OrderedBytes(*graph_, ordered_->kmax());
  return *ordered_;
}

const CoreForest& CoreEngine::Forest() {
  if (forest_) {
    ++stats_.Get(kStageForest).hits;
    return *forest_;
  }
  const CoreDecomposition& cores = Cores();
  Timer timer;
  forest_ = std::make_unique<CoreForest>(*graph_, cores);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageForest);
  ++record.builds;
  record.seconds += seconds;
  record.bytes =
      ForestBytes(*forest_) +
      // node_of_vertex_ + subtree_size_: one VertexId-sized entry each per
      // vertex / node, dominated by the per-vertex array.
      2 * static_cast<std::uint64_t>(graph_->NumVertices()) * sizeof(VertexId);
  return *forest_;
}

const ComponentLabels& CoreEngine::Components() {
  if (components_.has_value()) {
    ++stats_.Get(kStageComponents).hits;
    return *components_;
  }
  Timer timer;
  components_ = ConnectedComponents(*graph_);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageComponents);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = ComponentBytes(*components_);
  return *components_;
}

std::uint64_t CoreEngine::Triangles() {
  if (triangles_.has_value()) {
    ++stats_.Get(kStageTriangles).hits;
    return *triangles_;
  }
  const OrderedGraph& ordered = Ordered();  // accrues to its own stages
  std::uint32_t threads = 1;
  Timer timer;
  if (options_.parallel_triangles) {
    ThreadPool& pool = Pool();
    threads = pool.num_threads();
    timer.Reset();
    triangles_ = CountTrianglesParallel(ordered, pool);
  } else {
    triangles_ = CountTriangles(ordered);
  }
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageTriangles);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = sizeof(std::uint64_t);
  record.threads = threads;
  return *triangles_;
}

std::uint64_t CoreEngine::Triplets() {
  if (triplets_.has_value()) {
    ++stats_.Get(kStageTriplets).hits;
    return *triplets_;
  }
  Timer timer;
  triplets_ = CountTriplets(*graph_);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageTriplets);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = sizeof(std::uint64_t);
  return *triplets_;
}

const CoreSetProfile& CoreEngine::BestCoreSet(Metric metric) {
  const std::string stage = CoreSetStageName(metric);
  auto it = core_set_profiles_.find(metric);
  if (it != core_set_profiles_.end()) {
    ++stats_.Get(stage).hits;
    return it->second;
  }
  const OrderedGraph& ordered = Ordered();
  Timer timer;
  CoreSetProfile profile = FindBestCoreSet(ordered, metric);
  const double seconds = timer.ElapsedSeconds();
  auto inserted = core_set_profiles_.emplace(metric, std::move(profile));
  StageRecord& record = stats_.Get(stage);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = CoreSetProfileBytes(inserted.first->second);
  return inserted.first->second;
}

const SingleCoreProfile& CoreEngine::BestSingleCore(Metric metric) {
  const std::string stage = SingleCoreStageName(metric);
  auto it = single_core_profiles_.find(metric);
  if (it != single_core_profiles_.end()) {
    ++stats_.Get(stage).hits;
    return it->second;
  }
  const OrderedGraph& ordered = Ordered();
  const CoreForest& forest = Forest();
  Timer timer;
  // FindBestSingleCore requires a non-empty forest ("empty graph has no
  // k-core").  The engine stays total: the empty graph yields an empty
  // profile (no scores, best_k = 0) instead of tripping the CHECK.
  SingleCoreProfile profile;
  if (forest.NumNodes() > 0) {
    profile = FindBestSingleCore(ordered, forest, metric);
  }
  const double seconds = timer.ElapsedSeconds();
  auto inserted = single_core_profiles_.emplace(metric, std::move(profile));
  StageRecord& record = stats_.Get(stage);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = SingleCoreProfileBytes(inserted.first->second);
  return inserted.first->second;
}

}  // namespace corekit
