#include "corekit/engine/core_engine.h"

#include <string>
#include <utility>
#include <vector>

#include "corekit/core/triangle_scoring.h"
#include "corekit/graph/parallel_edge_list.h"
#include "corekit/graph/parallel_graph_builder.h"
#include "corekit/parallel/parallel_core.h"
#include "corekit/parallel/parallel_ordering.h"
#include "corekit/parallel/parallel_triangles.h"
#include "corekit/util/timer.h"

#ifdef COREKIT_AUDIT
#include "corekit/analysis/invariant_audit.h"
#include "corekit/util/logging.h"
#endif

namespace corekit {

namespace {

#ifdef COREKIT_AUDIT
// Audit-mode stage gate: a published artifact that fails its invariant
// audit is a poisoned cache every later query would consume, so abort
// with the full violation report (sanitizer semantics).  Runs after the
// stage timer stops — audit overhead never skews StageStats.
void CheckStageAudit(const AuditResult& audit, std::string_view stage) {
  COREKIT_CHECK(audit.ok()) << "COREKIT_AUDIT: stage \"" << stage
                            << "\" published a corrupted artifact ("
                            << audit.total_violations << " violations):\n"
                            << audit.Summary();
}
#endif

// Fixed stage names come from the EngineStage table (stage_stats.h); the
// per-metric stages append the paper abbreviation: "coreset[ad]",
// "singlecore[mod]", ...
constexpr std::string_view kStageIngest = EngineStageName(EngineStage::kIngest);
constexpr std::string_view kStageBuild = EngineStageName(EngineStage::kBuild);
constexpr std::string_view kStageDecompose =
    EngineStageName(EngineStage::kDecompose);
constexpr std::string_view kStageOrder = EngineStageName(EngineStage::kOrder);
constexpr std::string_view kStageForest = EngineStageName(EngineStage::kForest);
constexpr std::string_view kStageComponents =
    EngineStageName(EngineStage::kComponents);
constexpr std::string_view kStageTriangles =
    EngineStageName(EngineStage::kTriangles);
constexpr std::string_view kStageTriplets =
    EngineStageName(EngineStage::kTriplets);

// --- Byte estimates ------------------------------------------------------
//
// The artifacts are vectors of POD; sizing them from n/m/kmax (or their
// own element counts) is exact up to allocator slack.  These feed the
// StageRecord::bytes field, which is observability, not accounting.

template <typename T>
std::uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

std::uint64_t DecompositionBytes(const CoreDecomposition& cores) {
  return VectorBytes(cores.coreness) + VectorBytes(cores.peel_order);
}

std::uint64_t OrderedBytes(const Graph& graph, VertexId kmax) {
  const std::uint64_t n = graph.NumVertices();
  const std::uint64_t m = graph.NumEdges();
  // coreness + order + same/plus/high tags: 5 per-vertex VertexId arrays;
  // shell_start: kmax+2; offsets: n+1 EdgeIds; neighbors: 2m VertexIds.
  return 5 * n * sizeof(VertexId) +
         (static_cast<std::uint64_t>(kmax) + 2) * sizeof(VertexId) +
         (n + 1) * sizeof(EdgeId) + 2 * m * sizeof(VertexId);
}

std::uint64_t ForestBytes(const CoreForest& forest) {
  std::uint64_t bytes = 0;
  for (const CoreForest::Node& node : forest.nodes()) {
    bytes += sizeof(CoreForest::Node) + VectorBytes(node.children) +
             VectorBytes(node.vertices);
  }
  return bytes;
}

std::uint64_t ComponentBytes(const ComponentLabels& components) {
  return VectorBytes(components.label);
}

std::uint64_t CoreSetProfileBytes(const CoreSetProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

std::uint64_t SingleCoreProfileBytes(const SingleCoreProfile& profile) {
  return VectorBytes(profile.scores) + VectorBytes(profile.primaries);
}

}  // namespace

std::string CoreEngine::CoreSetStageName(Metric metric) {
  return std::string(EngineStageName(EngineStage::kCoreSet)) + "[" +
         MetricShortName(metric) + "]";
}

std::string CoreEngine::SingleCoreStageName(Metric metric) {
  return std::string(EngineStageName(EngineStage::kSingleCore)) + "[" +
         MetricShortName(metric) + "]";
}

CoreEngine::CoreEngine(const Graph& graph, CoreEngineOptions options)
    : graph_(&graph), options_(options) {
  if (options_.eager_ordering) WarmUp();
}

CoreEngine::CoreEngine(Graph&& graph, CoreEngineOptions options)
    : owned_graph_(std::move(graph)),
      graph_(&*owned_graph_),
      options_(options) {
  if (options_.eager_ordering) WarmUp();
}

Result<std::unique_ptr<CoreEngine>> CoreEngine::FromEdgeListFile(
    const std::string& path, CoreEngineOptions options) {
  auto pool = std::make_unique<ThreadPool>(options.num_threads);
  const std::uint32_t threads = pool->num_threads();

  Timer timer;
  Result<ParsedEdgeList> parsed = ParseSnapEdgeListParallel(path, *pool);
  if (!parsed.ok()) return parsed.status();
  const double ingest_seconds = timer.ElapsedSeconds();
  const std::uint64_t ingest_bytes = VectorBytes(parsed->edges);

  timer.Reset();
  Graph graph = BuildGraphParallel(parsed->num_vertices, parsed->edges, *pool);
  const double build_seconds = timer.ElapsedSeconds();
  const std::uint64_t build_bytes =
      VectorBytes(graph.Offsets()) + VectorBytes(graph.NeighborArray());

  // Construct with eager_ordering off so any warm-up runs only after the
  // ingestion pool has been donated (one pool for the whole pipeline).
  CoreEngineOptions ctor_options = options;
  ctor_options.eager_ordering = false;
  auto engine = std::make_unique<CoreEngine>(std::move(graph), ctor_options);
  engine->options_ = options;

  StageRecord& ingest = engine->stats_.Get(kStageIngest);
  ++ingest.builds;
  ingest.seconds += ingest_seconds;
  ingest.bytes = ingest_bytes;
  ingest.threads = threads;
  StageRecord& build = engine->stats_.Get(kStageBuild);
  ++build.builds;
  build.seconds += build_seconds;
  build.bytes = build_bytes;
  build.threads = threads;

  engine->AdoptPool(std::move(pool));
  if (options.eager_ordering) engine->WarmUp();
  return engine;
}

void CoreEngine::WarmUp() {
  Cores();
  Ordered();
}

void CoreEngine::AdoptPool(std::unique_ptr<ThreadPool> pool) {
  std::call_once(pool_once_, [&] { pool_ = std::move(pool); });
}

ThreadPool& CoreEngine::Pool() {
  std::call_once(pool_once_, [&] {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  });
  return *pool_;
}

// The exactly-once cache protocol every fixed-stage accessor runs:
//
//   1. Warm fast path: an acquire load of `ready` (paired with the
//      builder's release store) also publishes the artifact itself, so
//      warm readers touch no lock.
//   2. Cold path: std::call_once elects one builder; racers block until
//      it finishes, then fall through with `built_here` still false.
//   3. Accounting: exactly the one builder bumped `builds` (inside
//      `build`); every other call — racer or warm — counts a hit.  N
//      threads racing a cold stage therefore report builds == 1 and
//      hits == N - 1, the invariant the concurrency tests assert.
template <typename BuildFn>
void CoreEngine::RunOnce(BuildFlag& flag, std::string_view stage,
                         BuildFn&& build) {
  bool built_here = false;
  if (!flag.ready.load(std::memory_order_acquire)) {
    std::call_once(flag.once, [&] {
      build();
      flag.ready.store(true, std::memory_order_release);
      built_here = true;
    });
  }
  if (!built_here) ++stats_.Get(stage).hits;
}

const CoreDecomposition& CoreEngine::Cores() {
  RunOnce(cores_flag_, kStageDecompose, [this] { BuildCores(); });
  return *cores_;
}

const OrderedGraph& CoreEngine::Ordered() {
  RunOnce(ordered_flag_, kStageOrder, [this] { BuildOrdered(); });
  return *ordered_;
}

const CoreForest& CoreEngine::Forest() {
  RunOnce(forest_flag_, kStageForest, [this] { BuildForest(); });
  return *forest_;
}

const ComponentLabels& CoreEngine::Components() {
  RunOnce(components_flag_, kStageComponents, [this] { BuildComponents(); });
  return *components_;
}

std::uint64_t CoreEngine::Triangles() {
  RunOnce(triangles_flag_, kStageTriangles, [this] { BuildTriangles(); });
  return *triangles_;
}

std::uint64_t CoreEngine::Triplets() {
  RunOnce(triplets_flag_, kStageTriplets, [this] { BuildTriplets(); });
  return *triplets_;
}

void CoreEngine::BuildCores() {
  std::uint32_t threads = 1;
  Timer timer;
  if (options_.parallel_peel) {
    ThreadPool& pool = Pool();
    threads = pool.num_threads();
    timer.Reset();  // exclude lazy pool construction from the stage time
    cores_ = ComputeCoreDecompositionParallel(*graph_, pool);
  } else {
    cores_ = ComputeCoreDecomposition(*graph_);
  }
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageDecompose);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = DecompositionBytes(*cores_);
  record.threads = threads;
#ifdef COREKIT_AUDIT
  CheckStageAudit(AuditCoreDecomposition(*graph_, *cores_), kStageDecompose);
#endif
}

void CoreEngine::BuildOrdered() {
  const CoreDecomposition& cores = Cores();  // accrues to "decompose"
  std::uint32_t threads = 1;
  Timer timer;
  if (options_.parallel_ordering) {
    ThreadPool& pool = Pool();
    threads = pool.num_threads();
    timer.Reset();  // exclude lazy pool construction from the stage time
    ordered_ = std::make_unique<OrderedGraph>(*graph_, cores, pool);
  } else {
    ordered_ = std::make_unique<OrderedGraph>(*graph_, cores);
  }
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageOrder);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = OrderedBytes(*graph_, ordered_->kmax());
  record.threads = threads;
#ifdef COREKIT_AUDIT
  CheckStageAudit(AuditOrderedGraph(*graph_, cores, *ordered_), kStageOrder);
#endif
}

void CoreEngine::BuildForest() {
  const CoreDecomposition& cores = Cores();
  Timer timer;
  forest_ = std::make_unique<CoreForest>(*graph_, cores);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageForest);
  ++record.builds;
  record.seconds += seconds;
  record.bytes =
      ForestBytes(*forest_) +
      // node_of_vertex_ + subtree_size_: one VertexId-sized entry each per
      // vertex / node, dominated by the per-vertex array.
      2 * static_cast<std::uint64_t>(graph_->NumVertices()) * sizeof(VertexId);
#ifdef COREKIT_AUDIT
  CheckStageAudit(AuditCoreForest(*graph_, cores, *forest_), kStageForest);
#endif
}

void CoreEngine::BuildComponents() {
  Timer timer;
  components_ = ConnectedComponents(*graph_);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageComponents);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = ComponentBytes(*components_);
}

void CoreEngine::BuildTriangles() {
  const OrderedGraph& ordered = Ordered();  // accrues to its own stages
  std::uint32_t threads = 1;
  Timer timer;
  if (options_.parallel_triangles) {
    ThreadPool& pool = Pool();
    threads = pool.num_threads();
    timer.Reset();
    triangles_ = CountTrianglesParallel(ordered, pool);
  } else {
    triangles_ = CountTriangles(ordered);
  }
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageTriangles);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = sizeof(std::uint64_t);
  record.threads = threads;
}

void CoreEngine::BuildTriplets() {
  Timer timer;
  triplets_ = CountTriplets(*graph_);
  const double seconds = timer.ElapsedSeconds();
  StageRecord& record = stats_.Get(kStageTriplets);
  ++record.builds;
  record.seconds += seconds;
  record.bytes = sizeof(std::uint64_t);
}

const CoreSetProfile& CoreEngine::BestCoreSet(Metric metric) {
  ProfileSlot<CoreSetProfile>* slot;
  {
    // Structural lock only: find-or-create the slot, then release.  The
    // build below runs outside this lock (std::map nodes are stable).
    std::lock_guard<std::mutex> lock(profile_mutex_);
    slot = &core_set_slots_[metric];
  }
  bool built_here = false;
  if (!slot->flag.ready.load(std::memory_order_acquire)) {
    std::call_once(slot->flag.once, [&] {
      const OrderedGraph& ordered = Ordered();  // accrues to its own stages
      Timer timer;
      slot->profile = FindBestCoreSet(ordered, metric);
      const double seconds = timer.ElapsedSeconds();
      StageRecord& record = stats_.Get(CoreSetStageName(metric));
      ++record.builds;
      record.seconds += seconds;
      record.bytes = CoreSetProfileBytes(slot->profile);
#ifdef COREKIT_AUDIT
      // *cores_ (not Cores()): the accessor would bump the hit counter
      // and skew the exactly-once accounting the concurrency tests
      // assert.  Ordered() above guarantees the decomposition is built.
      CheckStageAudit(
          AuditPrimaryValues(*graph_, *cores_, slot->profile.primaries),
          CoreSetStageName(metric));
#endif
      slot->flag.ready.store(true, std::memory_order_release);
      built_here = true;
    });
  }
  if (!built_here) ++stats_.Get(CoreSetStageName(metric)).hits;
  return slot->profile;
}

const SingleCoreProfile& CoreEngine::BestSingleCore(Metric metric) {
  ProfileSlot<SingleCoreProfile>* slot;
  {
    std::lock_guard<std::mutex> lock(profile_mutex_);
    slot = &single_core_slots_[metric];
  }
  bool built_here = false;
  if (!slot->flag.ready.load(std::memory_order_acquire)) {
    std::call_once(slot->flag.once, [&] {
      const OrderedGraph& ordered = Ordered();
      const CoreForest& forest = Forest();
      const bool needs_triangles = MetricNeedsTriangles(metric);
      std::uint32_t threads = 1;
      std::vector<std::uint64_t> per_vertex;
      const std::vector<std::uint64_t>* per_vertex_ptr = nullptr;
      Timer timer;
      // Triangle-hungry metrics: precompute the per-vertex scores with
      // the parallel kernel so the O(m^1.5) part of Algorithm 5 comes
      // off the pool instead of the serial scan.  The counts are exact,
      // so the profile is identical either way.
      if (options_.parallel_triangles && needs_triangles &&
          forest.NumNodes() > 0) {
        ThreadPool& pool = Pool();
        threads = pool.num_threads();
        timer.Reset();  // exclude lazy pool construction
        per_vertex = CountTrianglesPerVertex(ordered, pool);
        per_vertex_ptr = &per_vertex;
      }
      // FindBestSingleCore requires a non-empty forest ("empty graph has
      // no k-core").  The engine stays total: the empty graph yields an
      // empty profile (no scores, best_k = 0) instead of tripping the
      // CHECK.
      if (forest.NumNodes() > 0) {
        slot->profile =
            FindBestSingleCore(ordered, forest, MetricFunction(metric),
                               needs_triangles, per_vertex_ptr);
      }
      const double seconds = timer.ElapsedSeconds();
      StageRecord& record = stats_.Get(SingleCoreStageName(metric));
      ++record.builds;
      record.seconds += seconds;
      record.bytes = SingleCoreProfileBytes(slot->profile);
      record.threads = threads;
#ifdef COREKIT_AUDIT
      if (forest.NumNodes() > 0) {
        CheckStageAudit(AuditSingleCorePrimaryValues(*graph_, forest,
                                                     slot->profile.primaries),
                        SingleCoreStageName(metric));
      }
#endif
      slot->flag.ready.store(true, std::memory_order_release);
      built_here = true;
    });
  }
  if (!built_here) ++stats_.Get(SingleCoreStageName(metric)).hits;
  return slot->profile;
}

}  // namespace corekit
