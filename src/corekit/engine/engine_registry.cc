#include "corekit/engine/engine_registry.h"

#include <algorithm>
#include <utility>

namespace corekit {

std::uint64_t EstimateEngineFootprintBytes(const Graph& graph) {
  const auto n = static_cast<std::uint64_t>(graph.NumVertices());
  const auto m = static_cast<std::uint64_t>(graph.NumEdges());
  // Per vertex: coreness + peel order + rank + component label + forest
  // node (~5 x 4B) plus the ordering's permuted offsets (8B) and slack
  // for profiles/forest metadata.  Per edge: the ordering's permuted
  // adjacency (2 x 4B directed slots) plus triangle-kernel scratch.
  // The constant covers engine bookkeeping on tiny graphs.  Deliberately
  // simple and stable: tests budget against this exact expression.
  return 64 * n + 16 * m + 4096;
}

EngineRegistry::EngineRegistry(EngineRegistryOptions options)
    : options_(std::move(options)) {}

EngineRegistry::~EngineRegistry() {
  MutexLock lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    COREKIT_CHECK(entry->active_leases == 0)
        << "EngineRegistry destroyed with live leases on '" << name << "'";
  }
}

// --- Lease -----------------------------------------------------------------

EngineRegistry::Lease::Lease(Lease&& other) noexcept
    : registry_(other.registry_), name_(std::move(other.name_)),
      engine_(std::move(other.engine_)) {
  other.registry_ = nullptr;
  other.engine_.reset();
}

EngineRegistry::Lease& EngineRegistry::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    name_ = std::move(other.name_);
    engine_ = std::move(other.engine_);
    other.registry_ = nullptr;
    other.engine_.reset();
  }
  return *this;
}

EngineRegistry::Lease::~Lease() { Release(); }

void EngineRegistry::Lease::Release() {
  if (registry_ != nullptr && engine_ != nullptr) {
    // Drop the ref count first, then the shared_ptr: once the registry
    // no longer counts us, the engine may already be evicted, and the
    // shared_ptr is what keeps the object alive until this line.
    registry_->ReleaseLease(name_);
  }
  engine_.reset();
  registry_ = nullptr;
}

// --- Registry --------------------------------------------------------------

Status EngineRegistry::AddGraph(const std::string& name, Graph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  MutexLock lock(mutex_);
  if (entries_.count(name) != 0) {
    return Status::InvalidArgument("graph '" + name + "' already registered");
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->graph = std::move(graph);
  entries_.emplace(name, std::move(entry));
  return Status::OK();
}

void EngineRegistry::EvictForAdmission(std::uint64_t incoming) {
  if (options_.memory_budget_bytes == 0) return;  // unbounded
  while (counters_.resident_bytes + incoming > options_.memory_budget_bytes) {
    Entry* victim = nullptr;
    for (const auto& [name, entry] : entries_) {
      if (entry->engine == nullptr) continue;       // already cold
      if (entry->active_leases != 0) continue;      // in-flight queries
      if (entry->engine->Epoch() != 0) continue;    // churned: pinned
      if (victim == nullptr || entry->last_used < victim->last_used) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) break;  // nothing evictable: overcommit
    // Dropping the registry's shared_ptr is the whole eviction; with
    // zero active leases this is the last reference, so the engine (and
    // every cached artifact version inside it) is destroyed here, under
    // the registry mutex — no new lease can race in.
    victim->engine.reset();
    counters_.resident_bytes -= victim->footprint;
    victim->footprint = 0;
    --counters_.resident_engines;
    ++counters_.evictions;
  }
}

Result<EngineRegistry::Lease> EngineRegistry::Acquire(
    const std::string& name) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  Entry& entry = *it->second;
  entry.last_used = ++tick_;
  if (entry.engine == nullptr) {
    const std::uint64_t footprint = EstimateEngineFootprintBytes(entry.graph);
    EvictForAdmission(footprint);
    if (options_.memory_budget_bytes != 0 &&
        counters_.resident_bytes + footprint > options_.memory_budget_bytes) {
      ++counters_.overcommits;
    }
    // Engine construction is cheap (artifacts build lazily on first
    // query), so holding the registry mutex here keeps admission
    // exactly-once without a per-entry builder election.
    entry.engine = std::make_shared<CoreEngine>(entry.graph,
                                                options_.engine_options);
    entry.footprint = footprint;
    counters_.resident_bytes += footprint;
    ++counters_.resident_engines;
    ++counters_.admissions;
    ++entry.admissions;
  } else {
    ++counters_.hits;
  }
  ++entry.active_leases;
  return Lease(this, name, entry.engine);
}

void EngineRegistry::ReleaseLease(const std::string& name) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  COREKIT_CHECK(it != entries_.end())
      << "lease release for unknown graph '" << name << "'";
  Entry& entry = *it->second;
  COREKIT_CHECK(entry.active_leases > 0)
      << "lease release underflow on '" << name << "'";
  --entry.active_leases;
}

std::vector<std::string> EngineRegistry::GraphNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

EngineRegistry::Stats EngineRegistry::stats() const {
  MutexLock lock(mutex_);
  Stats snapshot = counters_;
  snapshot.graphs = static_cast<std::uint32_t>(entries_.size());
  return snapshot;
}

std::uint64_t EngineRegistry::Admissions(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second->admissions;
}

bool EngineRegistry::IsResident(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second->engine != nullptr;
}

}  // namespace corekit
