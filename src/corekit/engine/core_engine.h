// CoreEngine: the cached, instrumented pipeline over one graph.
//
// The paper's optimality argument assumes the O(m) substrate — the core
// decomposition and the rank-ordered index of Algorithm 1 — is built
// *once* and amortized across every best-k query.  CoreEngine is that
// posture as a component: it owns (or borrows) a Graph, lazily builds and
// caches the derived artifacts
//
//   ingest      (FromEdgeListFile only) parallel chunked edge-list parse
//   build       (FromEdgeListFile only) parallel CSR normalization;
//               after ApplyBatch, lazy snapshot materializations
//   decompose   CoreDecomposition   (sequential BZ peel or the parallel
//                                    level-synchronous peel, by option)
//   order       OrderedGraph        (Algorithm 1)
//   forest      CoreForest          (Algorithm 4, LCPS)
//   components  ComponentLabels     (BFS connected components)
//   triangles   global triangle / triplet counts
//   applybatch  dynamic edge-update batches (mutable engine mode)
//   coreset[q]  CoreSetProfile      (Algorithm 2/3, cached per metric)
//   singlecore[q] SingleCoreProfile (Algorithm 5, cached per metric)
//
// shares one ThreadPool across every parallel stage, and records per-stage
// wall time, bytes, thread counts and cache hit/miss/patch counters in a
// StageStats structure (stats(), dumpable as JSON).
//
// Repeated queries — FindBestCoreSet over several metrics, community
// search, Opt-D, Opt-SC — hit the cached substrate instead of rebuilding
// it; the apps layer and the bench harnesses all route through here.
//
// --- Mutable engine mode -------------------------------------------------
//
// ApplyBatch(inserts, deletes) turns the engine into a serving system
// under churn: coreness is patched in place by the subcore cascades of
// dynamic::DynamicCoreIndex (never a cold O(m) peel), and only the
// artifacts whose inputs actually changed are invalidated:
//
//   artifact     on ApplyBatch                        next access
//   graph        dropped                              lazy snapshot
//   decompose    dropped                              coreness copied from
//                                                     the dynamic index +
//                                                     guided O(n+m) peel
//                                                     order rebuild (a
//                                                     `patch`, not a build)
//   order/forest/components  dropped                  full lazy rebuild
//   triangles/triplets       patched in place by the  still warm
//                            batch's exact deltas
//                            (kept untouched when the
//                            delta is zero)
//   coreset[q]/singlecore[q] dropped per slot         lazy rebuild per
//                                                     queried metric
//
// Every artifact version is retained for the engine's lifetime, so
// references obtained before a batch stay valid (they describe the epoch
// they were read at); Epoch() tags which graph version an artifact
// belongs to.
//
// Thread-safety: full — one engine serves any number of client threads,
// now including writers (ApplyBatch callers).  The contract is verified
// dynamically under ThreadSanitizer (tests/engine/concurrent_engine_test.cc,
// the COREKIT_SANITIZE=thread CI job) and statically by Clang's
// -Wthread-safety over the COREKIT_* annotations below (the CI
// thread-safety job; see DESIGN.md, "Static concurrency analysis"):
//
//   * Exactly-once builds per epoch.  Each artifact lives in a versioned
//     slot (mutex + atomic publication pointer).  N threads racing on a
//     cold stage elect one builder (condition-variable election, not
//     call_once — a once_flag cannot be re-armed after invalidation);
//     the N-1 racers block and count hits, and every thread returns the
//     same published object.  Builders hold only their own slot's mutex,
//     so different stages (and different metrics' profiles) build
//     concurrently.
//   * Atomic publication.  ApplyBatch holds *every* slot mutex (in a
//     fixed order) while it patches the dynamic index and bumps the
//     epoch, so readers never observe a half-patched epoch: an accessor
//     either returns the pre-batch artifact it already loaded, or blocks
//     and rebuilds against the post-batch state.  A builder that raced a
//     batch (ensured its dependencies at epoch E, acquired its lock at
//     epoch E' > E) detects the epoch change and retries.
//   * Race-free instrumentation.  StageStats counters are atomics (see
//     stage_stats.h); ResetStats() zeroes them in place and is safe
//     against concurrent readers (no torn counters).
//   * Safe shared pool.  Concurrent parallel stages serialize on the
//     ThreadPool's entry mutex (see util/thread_pool.h); num_threads == 1
//     still degenerates to lock-free serial execution.
//   * Immutable after publish.  References returned by accessors stay
//     valid and never move for the engine's lifetime (superseded
//     versions are retained, profiles live in node-stable maps), so
//     post-warmup reads need no synchronization at all beyond the
//     accessor's acquire load.
//
// The EngineServer harness (engine_server.h) drives one shared engine
// from K client threads over a mixed query workload — with ServeChurnMix
// adding a writer thread of ApplyBatch traffic; the concurrency tests
// and bench/ext_concurrency, bench/ext_dynamic build on it.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/metrics.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/dynamic/dynamic_core.h"
#include "corekit/engine/stage_stats.h"
#include "corekit/graph/connected_components.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"
#include "corekit/util/status.h"
#include "corekit/util/thread_annotations.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

struct CoreEngineOptions {
  // Peeling substrate: false = sequential Batagelj–Zaversnik (O(m)),
  // true = the frontier-based ComputeCoreDecompositionFrontier over the
  // engine's shared pool (bitwise-identical coreness; see
  // parallel/frontier_peel.h).  With a one-thread pool the serial peel
  // runs regardless — the flag only changes behavior when the pool can
  // actually fan out.
  bool parallel_peel = false;
  // Count triangles (the global count AND the per-vertex scores feeding
  // BestSingleCore) with the parallel kernels over the shared pool.
  bool parallel_triangles = false;
  // Build the OrderedGraph with the parallel Algorithm 1 bin sorts
  // (bitwise identical to the serial build; see parallel_ordering.h).
  bool parallel_ordering = false;
  // Threads for the shared pool (0 = hardware concurrency).  The pool is
  // created lazily, on the first stage that wants it.
  std::uint32_t num_threads = 0;
  // true: build decomposition + ordering eagerly in the constructor (warm
  // the cache up front, e.g. before accepting traffic).  false (default):
  // build on first request.
  bool eager_ordering = false;
  // FromBinaryFile only: load the .ckg through the stdio fallback
  // instead of mmap (test axis; plain payloads then own a buffer copy
  // rather than a zero-copy mapping, with identical contents).
  bool binary_force_fallback = false;
};

class CoreEngine {
 public:
  // Borrowing constructor: `graph` must outlive the engine (the same
  // contract OrderedGraph already has).
  explicit CoreEngine(const Graph& graph, CoreEngineOptions options = {});
  // Owning constructor: the engine keeps the graph alive itself.
  explicit CoreEngine(Graph&& graph, CoreEngineOptions options = {});

  // Cold-path factory: parses a SNAP text edge list with the parallel
  // chunked reader and normalizes it with the parallel CSR builder, both
  // on the engine's pool (options.num_threads), recording the work as
  // the "ingest" and "build" stages.  The resulting graph is bitwise
  // identical to ReadSnapEdgeList(path); the pool is kept for the
  // engine's later parallel stages.
  static Result<std::unique_ptr<CoreEngine>> FromEdgeListFile(
      const std::string& path, CoreEngineOptions options = {});

  // Cold-path factory over the .ckg binary format (ckg_format.h): maps
  // the file, fail-closed validates it, and serves a plain payload as a
  // zero-copy view of the mapping (a compressed payload is decoded into
  // an owning graph).  The load is recorded as the "ingest" stage and
  // the resulting snapshot's footprint as the "build" stage.
  static Result<std::unique_ptr<CoreEngine>> FromBinaryFile(
      const std::string& path, CoreEngineOptions options = {});

  // Cached artifacts hold pointers into the engine; it is pinned.
  CoreEngine(const CoreEngine&) = delete;
  CoreEngine& operator=(const CoreEngine&) = delete;

  // The current graph snapshot.  Non-const because after ApplyBatch the
  // snapshot is materialized lazily from the dynamic index (recorded as
  // a patch on the "build" stage).  The reference stays valid for the
  // engine's lifetime but describes the epoch it was requested at.
  const Graph& graph();
  const CoreEngineOptions& options() const { return options_; }

  // --- Cached artifacts (built exactly once per epoch, on request) -------
  //
  // All accessors are safe to call from any number of threads; cold
  // racers block until the single build finishes, warm calls are an
  // atomic load plus a hit-counter bump.

  const CoreDecomposition& Cores();
  const OrderedGraph& Ordered();
  const CoreForest& Forest();
  const ComponentLabels& Components();

  // Global triangle / triplet counts of the whole graph.
  std::uint64_t Triangles();
  std::uint64_t Triplets();

  // --- Cached query layers (one profile per metric) ----------------------

  // Algorithm 2/3 over the cached substrate.  The reference stays valid
  // for the engine's lifetime.
  const CoreSetProfile& BestCoreSet(Metric metric);
  // Algorithm 5 over the cached substrate.  Unlike the free function, the
  // engine is total on the empty graph: it returns an empty profile
  // (scores empty, best_k = 0) rather than CHECK-failing.
  const SingleCoreProfile& BestSingleCore(Metric metric);

  // --- Mutable engine mode -----------------------------------------------

  // What one ApplyBatch call did.
  struct BatchResult {
    std::uint64_t epoch = 0;      // engine epoch after the batch
    std::uint32_t inserted = 0;   // edges actually added
    std::uint32_t deleted = 0;    // edges actually removed
    std::uint32_t rejected = 0;   // no-op updates (dup/absent/self-loop/
                                  // out-of-range), tolerated not fatal
    std::uint64_t coreness_changed = 0;  // vertices whose coreness moved
    std::uint64_t footprint = 0;  // summed subcore footprints
    std::int64_t triangle_delta = 0;
    std::int64_t triplet_delta = 0;
    double seconds = 0.0;  // wall time inside the batch (incl. locking)
  };

  // Applies `inserts` then `deletes` to the graph, patching coreness in
  // place via the subcore cascades of DynamicCoreIndex and selectively
  // invalidating cached artifacts (see the invalidation matrix in the
  // header comment).  Concurrent ApplyBatch calls serialize; concurrent
  // queries keep being served (pre-batch epochs stay readable, readers
  // arriving after the batch rebuild lazily).  A batch in which every
  // update was rejected leaves the epoch and every artifact untouched.
  BatchResult ApplyBatch(const EdgeList& inserts, const EdgeList& deletes)
      COREKIT_EXCLUDES(update_mutex_);

  // Monotone graph-version counter: 0 until the first effective
  // ApplyBatch, +1 per batch that changed the edge set.
  std::uint64_t Epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // --- Shared execution resources ----------------------------------------

  // The pool every parallel stage runs on; created on first use with
  // options().num_threads workers.
  ThreadPool& Pool();

  // --- Instrumentation ----------------------------------------------------

  // Names of the per-metric stages in stats(): "coreset[ad]",
  // "singlecore[mod]", ... (the fixed stages are "decompose", "order",
  // "forest", "components", "triangles", "triplets", "applybatch").
  static std::string CoreSetStageName(Metric metric);
  static std::string SingleCoreStageName(Metric metric);

  const StageStats& stats() const { return stats_; }
  // Serialized stats() for the bench harness / log shipping.
  std::string StatsJson() const { return stats_.ToJson(); }
  // Zeroes every counter in place; cached artifacts stay cached
  // (subsequent requests count as hits).  Safe against concurrent
  // queries: each counter is zeroed atomically, so readers never see a
  // torn value — though a reader racing the reset may observe some
  // stages zeroed and others not yet.
  void ResetStats() { stats_.Reset(); }

 private:
  // A versioned artifact slot: the epoch-aware successor of the PR 3
  // call_once + atomic-ready pair.  `published` is the lock-free warm
  // fast path (acquire load pairs with the builder's release store);
  // `mutex` serializes builders and lets ApplyBatch freeze the slot;
  // `building` + `ready_cv` elect exactly one builder per cold epoch so
  // racers neither duplicate the build nor re-run its dependency
  // accessors (the exactly-once accounting the concurrency tests
  // assert).  Superseded versions are retained in `versions` so that
  // references published at earlier epochs stay valid for the engine's
  // lifetime.
  template <typename T>
  struct Slot {
    Mutex mutex;
    CondVar ready_cv;
    bool building COREKIT_GUARDED_BY(mutex) = false;
    std::atomic<const T*> published{nullptr};
    std::vector<std::unique_ptr<const T>> versions COREKIT_GUARDED_BY(mutex);
    std::uint64_t built_epoch COREKIT_GUARDED_BY(mutex) = 0;

    // Retains `value`, publishes it, wakes racers.
    const T& Publish(std::unique_ptr<const T> value, std::uint64_t epoch)
        COREKIT_REQUIRES(mutex) {
      const T* raw = value.get();
      versions.push_back(std::move(value));
      built_epoch = epoch;
      published.store(raw, std::memory_order_release);
      building = false;
      ready_cv.NotifyAll();
      return *raw;
    }
  };

  void WarmUp();
  // Installs `pool` as the engine's shared pool unless one was already
  // created; FromEdgeListFile donates its ingestion pool this way so the
  // engine does not spin up a second set of workers.
  void AdoptPool(std::unique_ptr<ThreadPool> pool);

  // The current graph snapshot; materializes it from the dynamic index
  // when a batch dropped it.  Deliberately does NOT touch hit counters —
  // the graph is the substrate every stage reads, not a query-level
  // artifact (keeps the pre-mutable accounting arithmetic intact).
  const Graph& CurrentGraph();

  // The generic per-epoch exactly-once accessor protocol; `ensure` runs
  // the dependency accessors (without any slot lock held), `build`
  // produces the artifact and does its own builds/patches accounting.
  template <typename T, typename EnsureFn, typename BuildFn>
  const T& Acquire(Slot<T>& slot, std::string_view stage, EnsureFn&& ensure,
                   BuildFn&& build);

  // ApplyBatch freezes the per-metric profile slots in map-iteration
  // order.  The set of mutexes is data-dependent (one per metric touched
  // so far), which the thread-safety analysis cannot model, so these two
  // helpers are the deliberate analysis boundary: the profile_mutex_
  // requirement (which pins the maps) IS checked, the per-slot
  // acquisitions inside are not.
  void LockProfileSlots() COREKIT_REQUIRES(profile_mutex_)
      COREKIT_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockProfileSlots() COREKIT_REQUIRES(profile_mutex_)
      COREKIT_NO_THREAD_SAFETY_ANALYSIS;

  // Owned storage for the Graph&& constructor; unused when borrowing.
  std::optional<Graph> owned_graph_;
  const Graph* graph_;
  CoreEngineOptions options_;
  StageStats stats_;

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;

  // Serializes writers; held for the whole ApplyBatch (including the
  // pre-lock dependency warm-up), never by readers.  It guards the
  // *right to mutate* — every datum it covers (dyn_, the slots) has its
  // own synchronization for readers — hence the lint waiver.
  Mutex update_mutex_;  // corekit-lint: allow(lock-discipline)
  std::atomic<std::uint64_t> epoch_{0};

  Slot<Graph> graph_slot_;
  Slot<CoreDecomposition> cores_;
  Slot<OrderedGraph> ordered_;
  Slot<CoreForest> forest_;
  Slot<ComponentLabels> components_;
  Slot<std::uint64_t> triangles_;
  Slot<std::uint64_t> triplets_;

  // Guards only the *structure* of the slot maps (slot creation); never
  // held while a profile builds.  std::map: references to mapped slots
  // stay valid across inserts.
  Mutex profile_mutex_;
  std::map<Metric, Slot<CoreSetProfile>> core_set_slots_
      COREKIT_GUARDED_BY(profile_mutex_);
  std::map<Metric, Slot<SingleCoreProfile>> single_core_slots_
      COREKIT_GUARDED_BY(profile_mutex_);

  // The dynamic maintenance substrate; created by the first ApplyBatch
  // (from the then-current snapshot + cached coreness) and authoritative
  // for coreness/adjacency from then on.  Written only under every slot
  // mutex; readers access it under any one slot mutex.  "Guarded by any
  // one of several mutexes" is outside what the thread-safety analysis
  // can express, so this member is deliberately unannotated — the
  // invariant is enforced by the TSan storms instead.  Declared last:
  // it borrows a Graph retained by graph_slot_ / owned_graph_, so it
  // must be destroyed first.
  std::unique_ptr<DynamicCoreIndex> dyn_;
};

}  // namespace corekit
