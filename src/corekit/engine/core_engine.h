// CoreEngine: the cached, instrumented pipeline over one graph.
//
// The paper's optimality argument assumes the O(m) substrate — the core
// decomposition and the rank-ordered index of Algorithm 1 — is built
// *once* and amortized across every best-k query.  CoreEngine is that
// posture as a component: it owns (or borrows) a Graph, lazily builds and
// caches the derived artifacts
//
//   ingest      (FromEdgeListFile only) parallel chunked edge-list parse
//   build       (FromEdgeListFile only) parallel CSR normalization
//   decompose   CoreDecomposition   (sequential BZ peel or the parallel
//                                    level-synchronous peel, by option)
//   order       OrderedGraph        (Algorithm 1)
//   forest      CoreForest          (Algorithm 4, LCPS)
//   components  ComponentLabels     (BFS connected components)
//   triangles   global triangle / triplet counts
//   coreset[q]  CoreSetProfile      (Algorithm 2/3, cached per metric)
//   singlecore[q] SingleCoreProfile (Algorithm 5, cached per metric)
//
// shares one ThreadPool across every parallel stage, and records per-stage
// wall time, bytes, thread counts and cache hit/miss counters in a
// StageStats structure (stats(), dumpable as JSON).
//
// Repeated queries — FindBestCoreSet over several metrics, community
// search, Opt-D, Opt-SC — hit the cached substrate instead of rebuilding
// it; the apps layer and the bench harnesses all route through here.
//
// Thread-safety: full — one engine serves any number of client threads
// (the amortization the paper prices only pays off when many clients
// share one warmed substrate).  The contract, verified under
// ThreadSanitizer (tests/engine/concurrent_engine_test.cc, the
// COREKIT_SANITIZE=thread CI job):
//
//   * Exactly-once builds.  Each lazy artifact is guarded by a
//     std::call_once; N threads racing on a cold stage produce one build
//     (one cache miss) and N-1 hits, and every thread returns the same
//     cached object.  Builds run outside any map/registry lock — only
//     the per-artifact once-flag is held, so different stages (and
//     different metrics' profiles) build concurrently.
//   * Race-free instrumentation.  StageStats counters are atomics (see
//     stage_stats.h); ResetStats() zeroes them in place and is safe
//     against concurrent readers (no torn counters).
//   * Safe shared pool.  Concurrent parallel stages serialize on the
//     ThreadPool's entry mutex (see util/thread_pool.h); num_threads == 1
//     still degenerates to lock-free serial execution.
//   * Immutable after publish.  References returned by accessors stay
//     valid and never move for the engine's lifetime (profiles live in
//     node-stable maps), so post-warmup reads need no synchronization at
//     all beyond the accessor's acquire load.
//
// The EngineServer harness (engine_server.h) drives one shared engine
// from K client threads over a mixed query workload; the concurrency
// tests and bench/ext_concurrency build on it.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/metrics.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/engine/stage_stats.h"
#include "corekit/graph/connected_components.h"
#include "corekit/graph/graph.h"
#include "corekit/util/status.h"
#include "corekit/util/thread_pool.h"

namespace corekit {

struct CoreEngineOptions {
  // Peeling substrate: false = sequential Batagelj–Zaversnik (O(m)),
  // true = the level-synchronous ComputeCoreDecompositionParallel over the
  // engine's shared pool.
  bool parallel_peel = false;
  // Count triangles (the global count AND the per-vertex scores feeding
  // BestSingleCore) with the parallel kernels over the shared pool.
  bool parallel_triangles = false;
  // Build the OrderedGraph with the parallel Algorithm 1 bin sorts
  // (bitwise identical to the serial build; see parallel_ordering.h).
  bool parallel_ordering = false;
  // Threads for the shared pool (0 = hardware concurrency).  The pool is
  // created lazily, on the first stage that wants it.
  std::uint32_t num_threads = 0;
  // true: build decomposition + ordering eagerly in the constructor (warm
  // the cache up front, e.g. before accepting traffic).  false (default):
  // build on first request.
  bool eager_ordering = false;
};

class CoreEngine {
 public:
  // Borrowing constructor: `graph` must outlive the engine (the same
  // contract OrderedGraph already has).
  explicit CoreEngine(const Graph& graph, CoreEngineOptions options = {});
  // Owning constructor: the engine keeps the graph alive itself.
  explicit CoreEngine(Graph&& graph, CoreEngineOptions options = {});

  // Cold-path factory: parses a SNAP text edge list with the parallel
  // chunked reader and normalizes it with the parallel CSR builder, both
  // on the engine's pool (options.num_threads), recording the work as
  // the "ingest" and "build" stages.  The resulting graph is bitwise
  // identical to ReadSnapEdgeList(path); the pool is kept for the
  // engine's later parallel stages.
  static Result<std::unique_ptr<CoreEngine>> FromEdgeListFile(
      const std::string& path, CoreEngineOptions options = {});

  // Cached artifacts hold pointers into the engine; it is pinned.
  CoreEngine(const CoreEngine&) = delete;
  CoreEngine& operator=(const CoreEngine&) = delete;

  const Graph& graph() const { return *graph_; }
  const CoreEngineOptions& options() const { return options_; }

  // --- Cached artifacts (built exactly once, on first request) -----------
  //
  // All accessors are safe to call from any number of threads; cold
  // racers block until the single build finishes, warm calls are an
  // atomic load plus a hit-counter bump.

  const CoreDecomposition& Cores();
  const OrderedGraph& Ordered();
  const CoreForest& Forest();
  const ComponentLabels& Components();

  // Global triangle / triplet counts of the whole graph.
  std::uint64_t Triangles();
  std::uint64_t Triplets();

  // --- Cached query layers (one profile per metric) ----------------------

  // Algorithm 2/3 over the cached substrate.  The reference stays valid
  // for the engine's lifetime.
  const CoreSetProfile& BestCoreSet(Metric metric);
  // Algorithm 5 over the cached substrate.  Unlike the free function, the
  // engine is total on the empty graph: it returns an empty profile
  // (scores empty, best_k = 0) rather than CHECK-failing.
  const SingleCoreProfile& BestSingleCore(Metric metric);

  // --- Shared execution resources ----------------------------------------

  // The pool every parallel stage runs on; created on first use with
  // options().num_threads workers.
  ThreadPool& Pool();

  // --- Instrumentation ----------------------------------------------------

  // Names of the per-metric stages in stats(): "coreset[ad]",
  // "singlecore[mod]", ... (the fixed stages are "decompose", "order",
  // "forest", "components", "triangles", "triplets").
  static std::string CoreSetStageName(Metric metric);
  static std::string SingleCoreStageName(Metric metric);

  const StageStats& stats() const { return stats_; }
  // Serialized stats() for the bench harness / log shipping.
  std::string StatsJson() const { return stats_.ToJson(); }
  // Zeroes every counter in place; cached artifacts stay cached
  // (subsequent requests count as hits).  Safe against concurrent
  // queries: each counter is zeroed atomically, so readers never see a
  // torn value — though a reader racing the reset may observe some
  // stages zeroed and others not yet.
  void ResetStats() { stats_.Reset(); }

 private:
  // One exactly-once guard per lazy artifact: `once` elects the single
  // builder, `ready` is the lock-free warm fast path (set with release
  // order after the artifact is published).
  struct BuildFlag {
    std::once_flag once;
    std::atomic<bool> ready{false};
  };
  // A per-metric profile cache slot.  Slots live in node-stable maps
  // (created under profile_mutex_, a brief structural lock); the profile
  // itself is built outside that lock, guarded only by the slot's flag.
  template <typename Profile>
  struct ProfileSlot {
    BuildFlag flag;
    Profile profile;
  };

  void WarmUp();
  // Installs `pool` as the engine's shared pool unless one was already
  // created; FromEdgeListFile donates its ingestion pool this way so the
  // engine does not spin up a second set of workers.
  void AdoptPool(std::unique_ptr<ThreadPool> pool);

  // Build bodies (each runs exactly once, inside its call_once).
  void BuildCores();
  void BuildOrdered();
  void BuildForest();
  void BuildComponents();
  void BuildTriangles();
  void BuildTriplets();

  // Shared exactly-once wrapper: fast acquire path, single build, hit
  // accounting for everyone else.  `stage` names the StageRecord that
  // takes the hit.
  template <typename BuildFn>
  void RunOnce(BuildFlag& flag, std::string_view stage, BuildFn&& build);

  // Owned storage for the Graph&& constructor; unused when borrowing.
  std::optional<Graph> owned_graph_;
  const Graph* graph_;
  CoreEngineOptions options_;
  StageStats stats_;

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;

  BuildFlag cores_flag_;
  BuildFlag ordered_flag_;
  BuildFlag forest_flag_;
  BuildFlag components_flag_;
  BuildFlag triangles_flag_;
  BuildFlag triplets_flag_;

  std::optional<CoreDecomposition> cores_;
  std::unique_ptr<OrderedGraph> ordered_;
  std::unique_ptr<CoreForest> forest_;
  std::optional<ComponentLabels> components_;
  std::optional<std::uint64_t> triangles_;
  std::optional<std::uint64_t> triplets_;

  // Guards only the *structure* of the slot maps (slot creation); never
  // held while a profile builds.  std::map: references to mapped slots
  // stay valid across inserts.
  std::mutex profile_mutex_;
  std::map<Metric, ProfileSlot<CoreSetProfile>> core_set_slots_;
  std::map<Metric, ProfileSlot<SingleCoreProfile>> single_core_slots_;
};

}  // namespace corekit
