#include "corekit/server/engine_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "corekit/truss/truss_decomposition.h"

namespace corekit::server {

EngineService::EngineService(EngineRegistry& registry,
                             EngineServiceOptions options)
    : registry_(registry), options_(options) {}

Response EngineService::SingleFlight(
    const std::string& key, const std::function<Response()>& compute,
    bool* coalesced) {
  std::shared_ptr<FlightCell> cell;
  bool leader = false;
  {
    MutexLock lock(flight_mutex_);
    auto& slot = flights_[key];
    if (slot == nullptr) {
      slot = std::make_shared<FlightCell>();
      leader = true;
    }
    cell = slot;
  }
  if (leader) {
    Response response = compute();
    {
      MutexLock cell_lock(cell->mutex);
      cell->response = response;
      cell->done = true;
    }
    cell->cv.NotifyAll();
    {
      // Remove the cell so the *next* identical query recomputes: this
      // is coalescing of concurrent requests, not a response cache —
      // under churn a cache would serve stale epochs indefinitely.
      MutexLock lock(flight_mutex_);
      const auto it = flights_.find(key);
      if (it != flights_.end() && it->second == cell) flights_.erase(it);
    }
    *coalesced = false;
    return response;
  }
  // Explicit wait loop: a wait-predicate lambda would read the guarded
  // `done` outside the annotated critical section (Clang analyzes the
  // lambda as a separate function).
  MutexLock cell_lock(cell->mutex);
  while (!cell->done) cell->cv.Wait(cell->mutex);
  *coalesced = true;
  return cell->response;
}

namespace {

// The per-opcode computations, each against a leased engine.  Kept as
// free helpers so Execute() reads as a dispatch table.

Response AnswerGraphInfo(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  const Graph& graph = engine.graph();
  response.num_vertices = graph.NumVertices();
  response.num_edges = graph.NumEdges();
  response.epoch = engine.Epoch();
  return response;
}

Response AnswerCoreness(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  const CoreDecomposition& cores = engine.Cores();
  if (request.vertex >= cores.coreness.size()) {
    return MakeErrorResponse(request.opcode, request.request_id,
                             WireError::kBadRequest,
                             "vertex out of range");
  }
  response.coreness = cores.coreness[request.vertex];
  response.kmax = cores.kmax;
  return response;
}

Response AnswerBestCoreSet(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  const CoreSetProfile& profile = engine.BestCoreSet(request.metric);
  response.best_k = profile.best_k;
  response.best_score = profile.best_score;
  response.num_scores = profile.scores.size();
  return response;
}

Response AnswerBestSingleCore(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  const SingleCoreProfile& profile = engine.BestSingleCore(request.metric);
  response.best_k = profile.best_k;
  response.best_node = profile.best_node;
  response.best_score = profile.best_score;
  response.num_scores = profile.scores.size();
  return response;
}

Response AnswerTrussMax(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  // Deliberately uncached in the engine (truss profiles are not part of
  // the best-k substrate); the single-flight layer above keeps an
  // identical-query storm from running N peels.
  const TrussDecomposition truss =
      ComputeTrussDecomposition(engine.graph());
  response.tmax = truss.tmax;
  response.num_edges = truss.edges.size();
  return response;
}

Response AnswerApplyBatch(CoreEngine& engine, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  const CoreEngine::BatchResult result =
      engine.ApplyBatch(request.inserts, request.deletes);
  response.epoch = result.epoch;
  response.inserted = result.inserted;
  response.deleted = result.deleted;
  response.rejected = result.rejected;
  response.coreness_changed = result.coreness_changed;
  return response;
}

// Coalescing key: every field that changes the answer.  request_id is
// deliberately excluded (followers restamp their own).
std::string FlightKey(const Request& request) {
  std::string key = request.graph;
  key += '/';
  key += OpcodeName(request.opcode);
  switch (request.opcode) {
    case Opcode::kCoreness:
      key += '/';
      key += std::to_string(request.vertex);
      break;
    case Opcode::kBestCoreSet:
    case Opcode::kBestSingleCore:
      key += '/';
      key += MetricShortName(request.metric);
      break;
    default:
      break;
  }
  return key;
}

bool Coalescable(Opcode opcode) {
  switch (opcode) {
    case Opcode::kGraphInfo:
    case Opcode::kCoreness:
    case Opcode::kBestCoreSet:
    case Opcode::kBestSingleCore:
    case Opcode::kTrussMax:
      return true;
    case Opcode::kPing:
    case Opcode::kApplyBatch:
      return false;
  }
  return false;
}

}  // namespace

Response EngineService::Execute(const Request& request) {
  if (request.opcode == Opcode::kPing) {
    Response response;
    response.opcode = Opcode::kPing;
    response.ping_payload = request.ping_payload;
    return response;
  }
  Result<EngineRegistry::Lease> lease = registry_.Acquire(request.graph);
  if (!lease.ok()) {
    return MakeErrorResponse(request.opcode, request.request_id,
                             WireError::kUnknownGraph,
                             lease.status().message());
  }
  CoreEngine& engine = lease->engine();
  if (options_.artificial_delay_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.artificial_delay_seconds));
  }
  switch (request.opcode) {
    case Opcode::kGraphInfo: return AnswerGraphInfo(engine, request);
    case Opcode::kCoreness: return AnswerCoreness(engine, request);
    case Opcode::kBestCoreSet: return AnswerBestCoreSet(engine, request);
    case Opcode::kBestSingleCore:
      return AnswerBestSingleCore(engine, request);
    case Opcode::kTrussMax: return AnswerTrussMax(engine, request);
    case Opcode::kApplyBatch: {
      batches_.fetch_add(1, std::memory_order_relaxed);
      return AnswerApplyBatch(engine, request);
    }
    case Opcode::kPing: break;  // handled above
  }
  return MakeErrorResponse(request.opcode, request.request_id,
                           WireError::kUnknownOpcode, "unhandled opcode");
}

Response EngineService::Handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Response response;
  if (options_.coalesce_cold_queries && Coalescable(request.opcode)) {
    bool coalesced = false;
    response = SingleFlight(
        FlightKey(request), [this, &request] { return Execute(request); },
        &coalesced);
    if (coalesced) coalesced_.fetch_add(1, std::memory_order_relaxed);
  } else {
    response = Execute(request);
  }
  response.request_id = request.request_id;
  if (response.status != WireError::kOk) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

EngineService::Stats EngineService::stats() const {
  Stats snapshot;
  snapshot.requests = requests_.load(std::memory_order_relaxed);
  snapshot.errors = errors_.load(std::memory_order_relaxed);
  snapshot.coalesced = coalesced_.load(std::memory_order_relaxed);
  snapshot.batches = batches_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace corekit::server
