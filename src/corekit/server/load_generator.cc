#include "corekit/server/load_generator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <thread>

#include "corekit/server/wire_client.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"
#include "corekit/util/timer.h"

namespace corekit::server {

namespace {

// Same one-round fold as the EngineServer harness: order-sensitive
// within a client (answers are tagged with their query index before the
// XOR), stateless across clients.
std::uint64_t MixInto(std::uint64_t h, std::uint64_t v) {
  SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

std::uint64_t DoubleBits(double d) { return std::bit_cast<std::uint64_t>(d); }

// The read-mix metrics; a slice of kAllMetrics keeps the draw stable
// even if the metric catalogue grows.
constexpr Metric kMixMetrics[] = {
    Metric::kAverageDegree,
    Metric::kInternalDensity,
    Metric::kConductance,
    Metric::kClusteringCoefficient,
};
constexpr std::uint64_t kMixMetricCount =
    sizeof(kMixMetrics) / sizeof(kMixMetrics[0]);

struct ClientResult {
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t checksum = 0;
  std::vector<double> latencies;
};

void MergeInto(LoadGenReport& report, std::vector<double>& all_latencies,
               ClientResult&& result) {
  report.queries += result.queries;
  report.errors += result.errors;
  report.busy += result.busy;
  report.transport_failures += result.transport_failures;
  report.checksum ^= result.checksum;
  all_latencies.insert(all_latencies.end(), result.latencies.begin(),
                       result.latencies.end());
}

void FinishReport(LoadGenReport& report, std::vector<double> latencies,
                  double wall_seconds) {
  report.wall_seconds = wall_seconds;
  report.qps = wall_seconds > 0.0
                   ? static_cast<double>(report.queries) / wall_seconds
                   : 0.0;
  if (!latencies.empty()) {
    report.max_seconds = *std::max_element(latencies.begin(), latencies.end());
  }
  report.p50_seconds = LatencyPercentile(latencies, 0.50);
  report.p99_seconds = LatencyPercentile(latencies, 0.99);
  report.p999_seconds = LatencyPercentile(std::move(latencies), 0.999);
}

// Folds one answered query into the client's running checksum, mirroring
// the EngineServer fold discipline: fold the answer, tag it with the
// query index, XOR.
void Account(ClientResult& result, const QuerySpec& spec,
             const Response& response, std::uint32_t index, double seconds) {
  const std::uint64_t fold = FoldAnswer(spec, response);
  result.checksum ^=
      MixInto(fold, (static_cast<std::uint64_t>(index) << 8) |
                        static_cast<std::uint64_t>(spec.opcode));
  result.latencies.push_back(seconds);
  if (response.status == WireError::kOk) {
    ++result.queries;
  } else {
    ++result.errors;
    if (response.status == WireError::kServerBusy) ++result.busy;
  }
}

// One socket client: replays its deterministic mix with up to
// pipeline_depth requests in flight, matching responses by request_id.
ClientResult RunWireClient(const LoadGenOptions& options,
                           std::uint32_t client) {
  ClientResult result;
  WireClient wire;
  if (!wire.Connect(options.host, options.port).ok()) {
    ++result.transport_failures;
    return result;
  }

  const std::uint32_t depth = std::max<std::uint32_t>(1, options.pipeline_depth);
  const std::uint32_t total = options.queries_per_client;
  // request_id encodes (client, index) so a pipelined response maps back
  // to the spec that produced it.
  const auto make_id = [client](std::uint32_t index) {
    return (static_cast<std::uint64_t>(client) << 32) | index;
  };

  // In-flight window: index -> send timestamp.
  std::vector<std::pair<std::uint32_t, Timer>> in_flight;
  in_flight.reserve(depth);
  std::uint32_t next_to_send = 0;

  const auto receive_one = [&]() -> bool {
    Response response;
    if (!wire.Receive(&response).ok()) {
      ++result.transport_failures;
      return false;
    }
    const std::uint32_t index =
        static_cast<std::uint32_t>(response.request_id & 0xffffffffULL);
    auto it = std::find_if(in_flight.begin(), in_flight.end(),
                           [index](const auto& p) { return p.first == index; });
    if (it == in_flight.end() ||
        (response.request_id >> 32) != client) {
      ++result.transport_failures;  // response for a request we never sent
      return false;
    }
    const double seconds = it->second.ElapsedSeconds();
    in_flight.erase(it);
    Account(result, DrawQuery(options, client, index), response, index,
            seconds);
    return true;
  };

  bool alive = true;
  while (alive && (next_to_send < total || !in_flight.empty())) {
    if (next_to_send < total && in_flight.size() < depth) {
      Request request = SpecToRequest(DrawQuery(options, client, next_to_send));
      request.request_id = make_id(next_to_send);
      in_flight.emplace_back(next_to_send, Timer());
      if (!wire.Send(request).ok()) {
        ++result.transport_failures;
        break;
      }
      ++next_to_send;
      continue;
    }
    alive = receive_one();
  }
  return result;
}

}  // namespace

QuerySpec DrawQuery(const LoadGenOptions& options, std::uint32_t client,
                    std::uint32_t index) {
  COREKIT_CHECK(!options.graphs.empty()) << "load generator needs tenants";
  COREKIT_CHECK(options.graph_sizes.size() == options.graphs.size())
      << "graph_sizes must align with graphs";
  // Same stream discipline as EngineServer::RunClient: one SplitMix64
  // per (seed, client), advanced a fixed number of draws per query so
  // query i is reachable without replaying 0..i-1.
  SplitMix64 stream(options.seed ^
                    MixInto(client + 1, static_cast<std::uint64_t>(index) + 1));
  QuerySpec spec;
  const std::uint64_t graph_pick = stream.Next() % options.graphs.size();
  spec.graph = options.graphs[graph_pick];
  const std::uint32_t n = std::max<std::uint32_t>(
      1, options.graph_sizes[graph_pick]);
  switch (stream.Next() % 5) {
    case 0:
      spec.opcode = Opcode::kGraphInfo;
      break;
    case 1:
      spec.opcode = Opcode::kCoreness;
      spec.vertex = static_cast<VertexId>(stream.Next() % n);
      break;
    case 2:
      spec.opcode = Opcode::kBestCoreSet;
      spec.metric = kMixMetrics[stream.Next() % kMixMetricCount];
      break;
    case 3:
      spec.opcode = Opcode::kBestSingleCore;
      spec.metric = kMixMetrics[stream.Next() % kMixMetricCount];
      break;
    default:
      spec.opcode = Opcode::kTrussMax;
      break;
  }
  return spec;
}

Request SpecToRequest(const QuerySpec& spec) {
  Request request;
  request.opcode = spec.opcode;
  request.graph = spec.graph;
  request.vertex = spec.vertex;
  request.metric = spec.metric;
  return request;
}

std::uint64_t FoldAnswer(const QuerySpec& spec, const Response& response) {
  if (response.status != WireError::kOk) {
    // Typed errors fold too: a side that errors where the other answers
    // breaks the differential loudly.
    return MixInto(0xE77E77ULL, static_cast<std::uint64_t>(response.status));
  }
  switch (spec.opcode) {
    case Opcode::kPing:
      return MixInto(1, response.ping_payload);
    case Opcode::kGraphInfo:
      // Epoch excluded: GraphInfo interleaved with churn is the one
      // legitimately time-dependent read; n and m of the *cold* tenant
      // identity are what the differential pins.  (The serving e2e runs
      // its read differential with no concurrent churn, so even epoch
      // would match — excluding it keeps the fold usable for mixed
      // workloads.)
      return MixInto(response.num_vertices, response.num_edges);
    case Opcode::kCoreness:
      return MixInto(response.coreness, response.kmax);
    case Opcode::kBestCoreSet:
      return MixInto(MixInto(response.best_k, DoubleBits(response.best_score)),
                     response.num_scores);
    case Opcode::kBestSingleCore:
      return MixInto(MixInto(response.best_k, DoubleBits(response.best_score)),
                     MixInto(response.best_node, response.num_scores));
    case Opcode::kTrussMax:
      return MixInto(response.tmax, response.num_edges);
    case Opcode::kApplyBatch:
      return MixInto(MixInto(response.epoch, response.inserted),
                     MixInto(response.deleted, response.coreness_changed));
  }
  return 0;
}

LoadGenReport RunWireLoad(const LoadGenOptions& options) {
  LoadGenReport report;
  std::vector<double> all_latencies;
  std::vector<ClientResult> results(options.num_clients);
  Timer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(options.num_clients);
    for (std::uint32_t c = 0; c < options.num_clients; ++c) {
      threads.emplace_back(
          [&options, &results, c] { results[c] = RunWireClient(options, c); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();
  for (ClientResult& result : results) {
    MergeInto(report, all_latencies, std::move(result));
  }
  FinishReport(report, std::move(all_latencies), wall_seconds);
  return report;
}

LoadGenReport RunDirectLoad(EngineService& service,
                            const LoadGenOptions& options) {
  LoadGenReport report;
  std::vector<double> all_latencies;
  Timer wall;
  for (std::uint32_t client = 0; client < options.num_clients; ++client) {
    ClientResult result;
    for (std::uint32_t index = 0; index < options.queries_per_client;
         ++index) {
      const QuerySpec spec = DrawQuery(options, client, index);
      Request request = SpecToRequest(spec);
      request.request_id =
          (static_cast<std::uint64_t>(client) << 32) | index;
      Timer timer;
      const Response response = service.Handle(request);
      Account(result, spec, response, index, timer.ElapsedSeconds());
    }
    MergeInto(report, all_latencies, std::move(result));
  }
  FinishReport(report, std::move(all_latencies), wall.ElapsedSeconds());
  return report;
}

double LatencyPercentile(std::vector<double> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: ceil(q * N), 1-based.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  if (rank > latencies.size()) rank = latencies.size();
  return latencies[rank - 1];
}

}  // namespace corekit::server
