// The corekit_serve wire protocol: length-prefixed binary frames.
//
// The paper's index answers any best-k query in optimal time once built,
// so the natural deployment is a long-lived server holding warm
// CoreEngine instances and answering many small queries.  This header
// defines the request/response frame format that server speaks — a
// deliberately tiny, versioned, length-prefixed binary protocol in the
// spirit of the memcached/redis binary framings: fixed little-endian
// header, opcode-tagged bodies, typed error codes (a malformed frame is
// an *answer*, never a crash).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     body_len    bytes following the 16-byte header
//   4       1     version     kWireVersion (1)
//   5       1     opcode      Opcode
//   6       2     status      WireError; 0 in requests and OK responses
//   8       8     request_id  echoed verbatim in the response
//   16      ...   body        opcode-specific payload (see the structs)
//
// Request bodies:
//   Ping           u64 payload (echoed)
//   GraphInfo      str graph
//   Coreness       str graph, u32 vertex
//   BestCoreSet    str graph, u8 metric
//   BestSingleCore str graph, u8 metric
//   TrussMax       str graph
//   ApplyBatch     str graph, u32 n_inserts, u32 n_deletes,
//                  then (u32 u, u32 v) per edge, inserts first
// where `str` is u16 length + that many raw bytes.
//
// Response bodies (status == kOk):
//   Ping           u64 payload
//   GraphInfo      u32 n, u64 m, u64 epoch
//   Coreness       u32 coreness, u32 kmax
//   BestCoreSet    u32 best_k, f64 best_score, u64 num_scores
//   BestSingleCore u32 best_k, u64 best_node, f64 best_score,
//                  u64 num_scores
//   TrussMax       u32 tmax, u64 num_edges
//   ApplyBatch     u64 epoch, u32 inserted, u32 deleted, u32 rejected,
//                  u64 coreness_changed
// Error responses (status != kOk) carry `str message` as their body.
//
// Decoding is total: every malformation (truncated frame, oversized
// length prefix, unknown version/opcode, short or over-long body) maps
// to a typed WireError, so a hostile byte stream can cost at most a
// closed connection.  tests/engine/wire_protocol_test.cc fuzzes this
// contract under ASan.
//
// This layer is pure bytes: no sockets, no engine types beyond the graph
// typedefs — transport lives in tcp_server.h, semantics in
// engine_service.h.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/graph/types.h"

namespace corekit::server {

// Bump on any change to the frame layout or a body shape.  A server
// answers a frame with any other version with kUnsupportedVersion (the
// request_id still echoes, so clients can match the rejection).
inline constexpr std::uint8_t kWireVersion = 1;

inline constexpr std::size_t kFrameHeaderBytes = 16;

// Upper bound a peer will accept for body_len; an oversized length
// prefix is rejected before any allocation happens.
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 20;

enum class Opcode : std::uint8_t {
  kPing = 0,            // liveness / echo
  kGraphInfo = 1,       // n, m, epoch of a tenant
  kCoreness = 2,        // coreness of one vertex
  kBestCoreSet = 3,     // Problem 1 (Algorithms 2/3)
  kBestSingleCore = 4,  // Problem 2 (Algorithm 5)
  kTrussMax = 5,        // max truss number (cold, coalescable)
  kApplyBatch = 6,      // churn: edge insert/delete batch
};
inline constexpr int kOpcodeCount = 7;

// Human-readable opcode name ("ping", "coreness", ...); "?" when out of
// range.
const char* OpcodeName(Opcode opcode);

// Typed protocol errors.  kOk..kBadRequest describe the offending frame;
// kServerBusy / kShuttingDown describe server state (load shedding).
enum class WireError : std::uint16_t {
  kOk = 0,
  kUnsupportedVersion = 1,  // header version != kWireVersion
  kUnknownOpcode = 2,       // opcode outside [0, kOpcodeCount)
  kTruncatedFrame = 3,      // fewer bytes than the header/body promised
  kOversizedFrame = 4,      // body_len > max frame bytes
  kMalformedBody = 5,       // body too short/long for its opcode
  kUnknownGraph = 6,        // no tenant with that name
  kBadRequest = 7,          // decoded fine, semantically invalid
  kServerBusy = 8,          // bounded queue full — retry later
  kShuttingDown = 9,        // server draining, no new work accepted
};

// "OK", "unsupported-version", ... ("?" when out of range).
const char* WireErrorName(WireError error);

struct FrameHeader {
  std::uint32_t body_len = 0;
  std::uint8_t version = kWireVersion;
  Opcode opcode = Opcode::kPing;
  WireError status = WireError::kOk;
  std::uint64_t request_id = 0;
};

// A decoded request.  Flat struct rather than a variant: only the fields
// the opcode uses are meaningful, everything else stays defaulted (the
// encoder ignores them, the decoder zeroes them).
struct Request {
  Opcode opcode = Opcode::kPing;
  std::uint64_t request_id = 0;

  std::uint64_t ping_payload = 0;        // kPing
  std::string graph;                     // all graph-addressed opcodes
  VertexId vertex = 0;                   // kCoreness
  Metric metric = Metric::kAverageDegree;  // kBestCoreSet/kBestSingleCore
  EdgeList inserts;                      // kApplyBatch
  EdgeList deletes;                      // kApplyBatch
};

// A decoded response (same flat-struct convention).
struct Response {
  Opcode opcode = Opcode::kPing;
  std::uint64_t request_id = 0;
  WireError status = WireError::kOk;
  std::string message;  // error responses only

  std::uint64_t ping_payload = 0;                    // kPing
  std::uint32_t num_vertices = 0;                    // kGraphInfo
  std::uint64_t num_edges = 0;                       // kGraphInfo/kTrussMax
  std::uint64_t epoch = 0;                           // kGraphInfo/kApplyBatch
  std::uint32_t coreness = 0;                        // kCoreness
  std::uint32_t kmax = 0;                            // kCoreness
  std::uint32_t best_k = 0;                          // kBestCoreSet/kBest...
  std::uint64_t best_node = 0;                       // kBestSingleCore
  double best_score = 0.0;                           // kBestCoreSet/kBest...
  std::uint64_t num_scores = 0;                      // kBestCoreSet/kBest...
  std::uint32_t tmax = 0;                            // kTrussMax
  std::uint32_t inserted = 0;                        // kApplyBatch
  std::uint32_t deleted = 0;                         // kApplyBatch
  std::uint32_t rejected = 0;                        // kApplyBatch
  std::uint64_t coreness_changed = 0;                // kApplyBatch
};

// Builds the error response for a request (or partial header) — echoes
// opcode/request_id, sets status + message.
Response MakeErrorResponse(Opcode opcode, std::uint64_t request_id,
                           WireError error, std::string message);

// --- Encoding (always succeeds; caller owns field validity) ---------------

std::vector<std::uint8_t> EncodeRequest(const Request& request);
std::vector<std::uint8_t> EncodeResponse(const Response& response);

// --- Decoding (total: typed error, never a crash) --------------------------

// Parses the 16-byte header of `bytes` (more bytes may follow; only the
// first kFrameHeaderBytes are read).  Validates length only — version
// and opcode are left to the full decoders so the caller can still echo
// request_id in a typed rejection.  `max_body_bytes` lets transports
// cap frames below the protocol maximum.
//   kTruncatedFrame  fewer than kFrameHeaderBytes bytes
//   kOversizedFrame  body_len > max_body_bytes
WireError DecodeFrameHeader(std::span<const std::uint8_t> bytes,
                            FrameHeader* out,
                            std::uint32_t max_body_bytes = kMaxBodyBytes);

// Decodes one complete frame (header + body, exactly).  On success fills
// `out` and returns kOk; otherwise returns the typed error and (when a
// header was readable) still fills out->opcode / out->request_id so the
// caller can address its error response.  `error_message` (optional)
// receives a human-readable description of the failure.
WireError DecodeRequest(std::span<const std::uint8_t> bytes, Request* out,
                        std::string* error_message = nullptr);
WireError DecodeResponse(std::span<const std::uint8_t> bytes, Response* out,
                         std::string* error_message = nullptr);

}  // namespace corekit::server
