// Load generator: deterministic multi-client traffic for corekit_serve.
//
// The serving tier's correctness story mirrors the EngineServer harness
// (PR 3) one network hop up: the query stream of client c under seed s
// is a pure function of (s, c, i), every answer folds to a u64, and the
// XOR over clients is order-independent — so a K-client run over real
// sockets must reproduce, bit for bit, the checksum of a serial replay
// through EngineService::Handle with no sockets involved.  That wire-
// vs-direct differential is the acceptance gate for the whole transport
// (framing, pipelining, queueing, coalescing must be answer-preserving).
//
// The generator also reports the serving-tier numbers the ROADMAP asks
// for: p50/p99/p999 latency and QPS, fed into the bench JSON by
// bench/ext_serving.cc.
//
// The read mix draws uniformly from {GraphInfo, Coreness, BestCoreSet,
// BestSingleCore, TrussMax} across the configured tenant graphs;
// ApplyBatch churn is driven separately (single writer) because its
// interleaving with reads is legitimately nondeterministic (see the
// ServeChurnMix precedent in engine_server.h).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "corekit/server/engine_service.h"
#include "corekit/server/wire_protocol.h"

namespace corekit::server {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  // Tenants to address; vertex picks for Coreness draw modulo the
  // matching graph_sizes entry (so the mix is well-formed without a
  // network round-trip first; corekit_loadgen fills sizes via
  // GraphInfo).
  std::vector<std::string> graphs;
  std::vector<std::uint32_t> graph_sizes;
  std::uint32_t num_clients = 8;
  std::uint32_t queries_per_client = 64;
  std::uint64_t seed = 0x5EEDC0DEULL;
  // Requests kept in flight per client connection (1 = strict
  // request/response lockstep; >1 exercises pipelining + out-of-order
  // completion by request_id).
  std::uint32_t pipeline_depth = 1;
};

// One drawn query; pure function of (seed, client, index, graphs).
struct QuerySpec {
  Opcode opcode = Opcode::kGraphInfo;
  std::string graph;
  VertexId vertex = 0;
  Metric metric = Metric::kAverageDegree;
};

// Draws query i of client `client`.  Requires graphs non-empty and
// graph_sizes aligned with graphs.
QuerySpec DrawQuery(const LoadGenOptions& options, std::uint32_t client,
                    std::uint32_t index);

// The Request a spec sends (request_id filled by the caller).
Request SpecToRequest(const QuerySpec& spec);

// Deterministic u64 fold of an answer — payload fields only, never
// request_id, so wire and direct replays agree.  Error responses fold
// their typed status code (a differential catches a path that errors on
// one side only).
std::uint64_t FoldAnswer(const QuerySpec& spec, const Response& response);

struct LoadGenReport {
  std::uint64_t queries = 0;        // answered OK
  std::uint64_t errors = 0;         // typed error responses
  std::uint64_t busy = 0;           // kServerBusy subset of errors
  std::uint64_t transport_failures = 0;  // connection-level failures
  double wall_seconds = 0.0;
  double qps = 0.0;                 // queries / wall_seconds
  // Latency distribution over every answered request, in seconds.
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double max_seconds = 0.0;
  // Order-independent fold over every (client, index, answer).
  std::uint64_t checksum = 0;
};

// Runs options.num_clients concurrent socket clients against
// host:port, each replaying its deterministic mix; blocks until all
// finish.
LoadGenReport RunWireLoad(const LoadGenOptions& options);

// Replays the identical mix (same specs, same folds) client by client
// through `service` directly — no sockets.  The reference checksum for
// RunWireLoad; latency fields describe the direct calls.
LoadGenReport RunDirectLoad(EngineService& service,
                            const LoadGenOptions& options);

// Exact percentile by rank over `latencies` (nearest-rank, q in [0,1]);
// 0.0 on empty input.  Exposed for the report tests.
double LatencyPercentile(std::vector<double> latencies, double q);

}  // namespace corekit::server
