#include "corekit/server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace corekit::server {

namespace {

// Thread-safe errno rendering (std::strerror shares a static buffer —
// the clang-tidy concurrency-mt-unsafe finding this replaced).
std::string ErrnoMessage(int err) {
  return std::error_code(err, std::generic_category()).message();
}

// Full-buffer read: loops over short reads and EINTR.  Returns
//   1  buffer filled
//   0  clean EOF before any byte (or a shutdown woke us)
//  -1  error or EOF mid-buffer
int ReadFull(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(fd, data + done, size - done, 0);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done == 0 ? 0 : -1;  // EOF
    if (errno == EINTR) continue;
    return -1;
  }
  return 1;
}

// Full-buffer write; MSG_NOSIGNAL so a dead peer surfaces as EPIPE
// rather than killing the process with SIGPIPE.
bool WriteFull(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t put = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

TcpServer::TcpServer(EngineService& service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_frame_bytes > kMaxBodyBytes) {
    options_.max_frame_bytes = kMaxBodyBytes;
  }
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start() {
  COREKIT_CHECK(!started_) << "TcpServer::Start called twice";
  started_ = true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket(): " + ErrnoMessage(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseIfOpen(listen_fd_);
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::IoError("bind(" + options_.host + ":" +
                        std::to_string(options_.port) +
                        "): " + ErrnoMessage(errno));
    CloseIfOpen(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const Status status =
        Status::IoError("listen(): " + ErrnoMessage(errno));
    CloseIfOpen(listen_fd_);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  workers_.reserve(options_.num_workers);
  for (std::uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by Shutdown (EBADF/EINVAL) or fatal: stop.
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_sessions_.load(std::memory_order_acquire) >=
        options_.max_sessions) {
      // Admission control at the connection level: answer one typed
      // busy frame (request_id 0 — nothing was read) and close.
      const std::vector<std::uint8_t> frame = EncodeResponse(
          MakeErrorResponse(Opcode::kPing, 0, WireError::kServerBusy,
                            "session limit reached"));
      (void)WriteFull(fd, frame.data(), frame.size());
      ::close(fd);
      sessions_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      MutexLock lock(sessions_mutex_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session] { SessionLoop(session); });
    }
    active_sessions_.fetch_add(1, std::memory_order_acq_rel);
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::SessionLoop(const std::shared_ptr<Session>& session) {
  std::vector<std::uint8_t> frame;
  while (!stopping_.load(std::memory_order_acquire) &&
         !session->closed.load(std::memory_order_acquire)) {
    std::uint8_t header_bytes[kFrameHeaderBytes];
    const int got = ReadFull(session->fd, header_bytes, kFrameHeaderBytes);
    if (got <= 0) break;  // clean EOF, peer death, or shutdown wake

    FrameHeader header;
    const WireError header_error = DecodeFrameHeader(
        {header_bytes, kFrameHeaderBytes}, &header, options_.max_frame_bytes);
    if (header_error != WireError::kOk) {
      // An oversized length prefix poisons the stream: the next frame
      // boundary is unknowable, so answer and hang up.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)WriteResponse(
          session, MakeErrorResponse(header.opcode, header.request_id,
                                     header_error, "rejected frame header"));
      session->closed.store(true, std::memory_order_release);
      break;
    }
    frame.assign(header_bytes, header_bytes + kFrameHeaderBytes);
    frame.resize(kFrameHeaderBytes + header.body_len);
    if (header.body_len > 0 &&
        ReadFull(session->fd, frame.data() + kFrameHeaderBytes,
                 header.body_len) != 1) {
      break;  // truncated body: the peer vanished mid-frame
    }

    Request request;
    std::string error_message;
    const WireError decode_error =
        DecodeRequest(frame, &request, &error_message);
    if (decode_error != WireError::kOk) {
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      const bool fatal = decode_error == WireError::kUnsupportedVersion;
      (void)WriteResponse(
          session, MakeErrorResponse(request.opcode, request.request_id,
                                     decode_error, std::move(error_message)));
      if (fatal) {
        // Cannot trust any further framing from them: half-close so the
        // peer sees EOF after reading the typed error.
        session->closed.store(true, std::memory_order_release);
        break;
      }
      continue;  // frame boundary is intact: keep serving
    }
    frames_decoded_.fetch_add(1, std::memory_order_relaxed);
    Dispatch(session, std::move(request));
  }
  // Reader done: stop accepting writes on a best-effort basis.  The fd
  // itself stays open until Shutdown reaps the session, so responses to
  // still-queued requests either flush or fail cleanly.
  if (session->closed.load(std::memory_order_acquire)) {
    ::shutdown(session->fd, SHUT_RDWR);
  }
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

void TcpServer::Dispatch(const std::shared_ptr<Session>& session,
                         Request request) {
  bool draining = false;
  {
    MutexLock lock(queue_mutex_);
    if (!queue_closed_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(Job{std::move(request), session});
      queue_cv_.NotifyOne();
      return;
    }
    draining = queue_closed_;
  }
  // Queue full (or draining): typed rejection, never silent drop.
  busy_rejections_.fetch_add(1, std::memory_order_relaxed);
  const WireError error =
      draining ? WireError::kShuttingDown : WireError::kServerBusy;
  (void)WriteResponse(session,
                      MakeErrorResponse(request.opcode, request.request_id,
                                        error, "request queue full"));
}

void TcpServer::WorkerLoop() {
  while (true) {
    Job job;
    {
      // Explicit wait loop: a wait-predicate lambda would read the
      // guarded queue state outside the annotated critical section.
      MutexLock lock(queue_mutex_);
      while (!queue_closed_ && queue_.empty()) queue_cv_.Wait(queue_mutex_);
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const Response response = service_.Handle(job.request);
    if (WriteResponse(job.session, response)) {
      requests_completed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool TcpServer::WriteResponse(const std::shared_ptr<Session>& session,
                              const Response& response) {
  const std::vector<std::uint8_t> frame = EncodeResponse(response);
  MutexLock lock(session->write_mutex);
  if (session->closed.load(std::memory_order_acquire)) return false;
  if (!WriteFull(session->fd, frame.data(), frame.size())) {
    session->closed.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

void TcpServer::Shutdown() {
  if (!started_) return;
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;

  // 1. Stop admitting.  shutdown() before close(): on Linux, closing a
  //    listening fd does NOT wake a thread blocked in accept(), but
  //    SHUT_RDWR makes accept() fail immediately with EINVAL.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  CloseIfOpen(listen_fd_);

  // 2. Wake session readers blocked in recv(); SHUT_RD only, so queued
  //    responses can still flush on the write side.
  {
    MutexLock lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      ::shutdown(session->fd, SHUT_RD);
    }
  }

  // 3. Drain: close the queue; workers run until it is empty, then
  //    exit.  Everything admitted before this line gets a response.
  {
    MutexLock lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  // 4. Reap sessions: join readers, close fds.
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Session>> sessions;
  {
    MutexLock lock(sessions_mutex_);
    threads.swap(session_threads_);
    sessions.swap(sessions_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  for (const auto& session : sessions) {
    ::shutdown(session->fd, SHUT_RDWR);
    CloseIfOpen(session->fd);
  }
}

TcpServer::Stats TcpServer::stats() const {
  Stats snapshot;
  snapshot.sessions_opened =
      sessions_opened_.load(std::memory_order_relaxed);
  snapshot.sessions_refused =
      sessions_refused_.load(std::memory_order_relaxed);
  snapshot.frames_decoded = frames_decoded_.load(std::memory_order_relaxed);
  snapshot.frames_rejected =
      frames_rejected_.load(std::memory_order_relaxed);
  snapshot.busy_rejections =
      busy_rejections_.load(std::memory_order_relaxed);
  snapshot.requests_completed =
      requests_completed_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace corekit::server
