#include "corekit/server/wire_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace corekit::server {

namespace {

bool ReadFullFd(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(fd, data + done, size - done, 0);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFullFd(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t put = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

WireClient::WireClient(WireClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  // Request/response round-trips are latency-bound: disable Nagle so a
  // 16-byte header is not held hostage to a 40ms delayed-ACK dance.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Status::IoError("connect(" + host + ":" + std::to_string(port) +
                        "): " + std::strerror(errno));
    Close();
    return status;
  }
  return Status::OK();
}

Status WireClient::Send(const Request& request) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  const std::vector<std::uint8_t> frame = EncodeRequest(request);
  if (!WriteFullFd(fd_, frame.data(), frame.size())) {
    return Status::IoError("send failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::SendRaw(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  if (!WriteFullFd(fd_, bytes.data(), bytes.size())) {
    return Status::IoError("send failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::Receive(Response* response) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::uint8_t header_bytes[kFrameHeaderBytes];
  if (!ReadFullFd(fd_, header_bytes, kFrameHeaderBytes)) {
    return Status::IoError("connection closed while reading response header");
  }
  FrameHeader header;
  const WireError header_error =
      DecodeFrameHeader({header_bytes, kFrameHeaderBytes}, &header);
  if (header_error != WireError::kOk) {
    return Status::Corruption(std::string("bad response header: ") +
                              WireErrorName(header_error));
  }
  std::vector<std::uint8_t> frame(header_bytes,
                                  header_bytes + kFrameHeaderBytes);
  frame.resize(kFrameHeaderBytes + header.body_len);
  if (header.body_len > 0 &&
      !ReadFullFd(fd_, frame.data() + kFrameHeaderBytes, header.body_len)) {
    return Status::IoError("connection closed while reading response body");
  }
  std::string error_message;
  const WireError decode_error =
      DecodeResponse(frame, response, &error_message);
  if (decode_error != WireError::kOk) {
    return Status::Corruption("bad response frame: " + error_message);
  }
  return Status::OK();
}

Result<Response> WireClient::Call(const Request& request) {
  COREKIT_RETURN_IF_ERROR(Send(request));
  Response response;
  COREKIT_RETURN_IF_ERROR(Receive(&response));
  COREKIT_CHECK(response.request_id == request.request_id)
      << "response id " << response.request_id << " for request "
      << request.request_id << " (pipelining without Receive()?)";
  return response;
}

}  // namespace corekit::server
