// TcpServer: the socket front-end of corekit_serve.
//
// Std-only (POSIX sockets, std::thread) transport speaking the
// wire_protocol.h framing over TCP.  Architecture:
//
//   acceptor thread    accept()s connections; refuses new sessions over
//                      max_sessions with a typed kServerBusy frame
//   session threads    one reader per connection: framing, decoding,
//                      typed rejection of malformed frames, enqueue of
//                      well-formed requests
//   worker pool        num_workers threads draining one bounded request
//                      queue through EngineService::Handle and writing
//                      responses back (per-session write mutex —
//                      responses to pipelined requests may interleave,
//                      which is why frames carry request_id)
//
// Backpressure: the request queue is bounded.  A session whose decoded
// request finds the queue full answers kServerBusy immediately instead
// of blocking its reader — overload sheds load at the edge, it does not
// build an unbounded backlog (admission control).  The response still
// echoes the request_id, so clients can retry precisely.
//
// Malformed input: a frame that decodes to a typed error gets that
// error as its response.  Errors that poison the stream itself
// (oversized length prefix, unsupported version — after which resync is
// impossible) additionally close the connection; errors confined to one
// frame's body (unknown opcode, malformed body) leave the session open,
// because length-prefixed framing lets the reader skip to the next
// frame safely.
//
// Shutdown() drains: stop accepting, wake every session reader, let the
// workers finish every request already admitted to the queue, write the
// last responses, then join all threads and close all fds.  The
// backpressure test asserts "accepted implies completed" through this
// path, under ASan (no leaked sessions).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corekit/server/engine_service.h"
#include "corekit/server/wire_protocol.h"
#include "corekit/util/status.h"
#include "corekit/util/thread_annotations.h"

namespace corekit::server {

struct TcpServerOptions {
  // Bind address; tests use 127.0.0.1.
  std::string host = "127.0.0.1";
  // 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  // Worker threads draining the request queue.
  std::uint32_t num_workers = 4;
  // Bounded request-queue capacity; the backpressure knob.
  std::uint32_t queue_capacity = 128;
  // Connection cap; further connects are refused with kServerBusy.
  std::uint32_t max_sessions = 64;
  // Frames with body_len above this are rejected (and the connection
  // closed); never above the protocol's kMaxBodyBytes.
  std::uint32_t max_frame_bytes = kMaxBodyBytes;
};

class TcpServer {
 public:
  // `service` must outlive the server.
  TcpServer(EngineService& service, TcpServerOptions options = {});
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;
  // Implies Shutdown().
  ~TcpServer();

  // Binds + listens + spawns acceptor and workers.  IoError on bind
  // failures.  Call at most once.
  Status Start();

  // The actually-bound port (resolves port 0); valid after Start().
  std::uint16_t port() const { return port_; }

  // Graceful drain; idempotent, also run by the destructor.  After
  // return: no live threads, no open fds, every admitted request
  // answered.
  void Shutdown();

  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_refused = 0;   // over max_sessions
    std::uint64_t frames_decoded = 0;     // well-formed requests read
    std::uint64_t frames_rejected = 0;    // typed decode errors answered
    std::uint64_t busy_rejections = 0;    // kServerBusy (queue full)
    std::uint64_t requests_completed = 0; // responses written by workers
  };
  Stats stats() const;

 private:
  // One live connection.  shared_ptr-owned: queued jobs pin the session
  // so a worker's response write never races the session teardown.
  struct Session {
    int fd = -1;
    // Guards the socket's *write stream* — whole frames stay contiguous
    // when worker responses interleave.  A stream is not a data member,
    // so there is nothing to COREKIT_GUARDED_BY; hence the waiver.
    Mutex write_mutex;  // corekit-lint: allow(lock-discipline)
    std::atomic<bool> closed{false};
  };

  struct Job {
    Request request;
    std::shared_ptr<Session> session;
  };

  void AcceptLoop() COREKIT_EXCLUDES(sessions_mutex_);
  void SessionLoop(const std::shared_ptr<Session>& session);
  void WorkerLoop() COREKIT_EXCLUDES(queue_mutex_);
  // Encodes + writes one response under the session's write mutex.
  // Returns false (and marks the session closed) on a dead peer.
  bool WriteResponse(const std::shared_ptr<Session>& session,
                     const Response& response);
  // Enqueue or reject-with-busy; the reader thread path.
  void Dispatch(const std::shared_ptr<Session>& session, Request request)
      COREKIT_EXCLUDES(queue_mutex_);

  EngineService& service_;
  TcpServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Sessions and their reader threads, reaped on Shutdown.  The two
  // server-level mutexes (this and queue_mutex_) are never nested —
  // Shutdown's four phases take them in separate scopes.
  Mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_
      COREKIT_GUARDED_BY(sessions_mutex_);
  std::vector<std::thread> session_threads_
      COREKIT_GUARDED_BY(sessions_mutex_);
  std::atomic<std::uint32_t> active_sessions_{0};

  // The bounded request queue.
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<Job> queue_ COREKIT_GUARDED_BY(queue_mutex_);
  bool queue_closed_ COREKIT_GUARDED_BY(queue_mutex_) = false;

  // Counters (relaxed atomics; stats() snapshots).
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_refused_{0};
  std::atomic<std::uint64_t> frames_decoded_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
};

}  // namespace corekit::server
