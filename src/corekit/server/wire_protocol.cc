#include "corekit/server/wire_protocol.h"

#include <bit>
#include <cstring>

namespace corekit::server {

// The wire format is little-endian; on-host integers are memcpy'd
// straight into frames.  Every target corekit supports is little-endian
// (x86-64, aarch64) — a big-endian port would add byte swaps here.
static_assert(std::endian::native == std::endian::little,
              "wire_protocol.cc assumes a little-endian host");

namespace {

// --- Little-endian append/read primitives ---------------------------------

template <typename T>
void AppendInt(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void AppendDouble(std::vector<std::uint8_t>& out, double value) {
  AppendInt(out, std::bit_cast<std::uint64_t>(value));
}

void AppendString(std::vector<std::uint8_t>& out, const std::string& s) {
  // Length is u16: graph names are short identifiers; error messages are
  // truncated rather than rejected.
  const auto len = static_cast<std::uint16_t>(
      s.size() > 0xFFFF ? 0xFFFF : s.size());
  AppendInt(out, len);
  out.insert(out.end(), s.begin(), s.begin() + len);
}

// Bounds-checked cursor over a frame body.  Every Read* returns false on
// underflow instead of touching memory past the span — the decoder's
// totality rests on this class.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool ReadInt(T* out) {
    static_assert(std::is_unsigned_v<T>);
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    *out = value;
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDouble(double* out) {
    std::uint64_t bits = 0;
    if (!ReadInt(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadString(std::string* out) {
    std::uint16_t len = 0;
    if (!ReadInt(&len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  // Strict framing: a body longer than its opcode needs is malformed
  // (trailing garbage means the peer and we disagree about the shape).
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

WireError Fail(WireError error, const char* what, std::string* message) {
  if (message != nullptr) *message = what;
  return error;
}

bool ValidMetricByte(std::uint8_t byte) {
  // Built-in + extended metrics are a dense enum starting at 0; see
  // core/metrics.h.  kNormalizedAssociation is the last enumerator.
  return byte <= static_cast<std::uint8_t>(Metric::kNormalizedAssociation);
}

}  // namespace

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing: return "ping";
    case Opcode::kGraphInfo: return "graphinfo";
    case Opcode::kCoreness: return "coreness";
    case Opcode::kBestCoreSet: return "bestcoreset";
    case Opcode::kBestSingleCore: return "bestsinglecore";
    case Opcode::kTrussMax: return "trussmax";
    case Opcode::kApplyBatch: return "applybatch";
  }
  return "?";
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk: return "OK";
    case WireError::kUnsupportedVersion: return "unsupported-version";
    case WireError::kUnknownOpcode: return "unknown-opcode";
    case WireError::kTruncatedFrame: return "truncated-frame";
    case WireError::kOversizedFrame: return "oversized-frame";
    case WireError::kMalformedBody: return "malformed-body";
    case WireError::kUnknownGraph: return "unknown-graph";
    case WireError::kBadRequest: return "bad-request";
    case WireError::kServerBusy: return "server-busy";
    case WireError::kShuttingDown: return "shutting-down";
  }
  return "?";
}

Response MakeErrorResponse(Opcode opcode, std::uint64_t request_id,
                           WireError error, std::string message) {
  Response response;
  // An unknown request opcode cannot be echoed: the peer's decoder
  // (rightly) rejects out-of-range opcodes, so the typed error would be
  // unreadable.  Answer as kPing — request_id still routes it.
  if (static_cast<std::uint8_t>(opcode) >= kOpcodeCount) {
    opcode = Opcode::kPing;
  }
  response.opcode = opcode;
  response.request_id = request_id;
  response.status = error;
  response.message = std::move(message);
  return response;
}

namespace {

// Assembles header + body once the body bytes are known.
std::vector<std::uint8_t> SealFrame(Opcode opcode, WireError status,
                                    std::uint64_t request_id,
                                    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  AppendInt(frame, static_cast<std::uint32_t>(body.size()));
  AppendInt(frame, static_cast<std::uint8_t>(kWireVersion));
  AppendInt(frame, static_cast<std::uint8_t>(opcode));
  AppendInt(frame, static_cast<std::uint16_t>(status));
  AppendInt(frame, request_id);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

}  // namespace

std::vector<std::uint8_t> EncodeRequest(const Request& request) {
  std::vector<std::uint8_t> body;
  switch (request.opcode) {
    case Opcode::kPing:
      AppendInt(body, request.ping_payload);
      break;
    case Opcode::kGraphInfo:
    case Opcode::kTrussMax:
      AppendString(body, request.graph);
      break;
    case Opcode::kCoreness:
      AppendString(body, request.graph);
      AppendInt(body, static_cast<std::uint32_t>(request.vertex));
      break;
    case Opcode::kBestCoreSet:
    case Opcode::kBestSingleCore:
      AppendString(body, request.graph);
      AppendInt(body, static_cast<std::uint8_t>(request.metric));
      break;
    case Opcode::kApplyBatch: {
      AppendString(body, request.graph);
      AppendInt(body, static_cast<std::uint32_t>(request.inserts.size()));
      AppendInt(body, static_cast<std::uint32_t>(request.deletes.size()));
      for (const auto& [u, v] : request.inserts) {
        AppendInt(body, static_cast<std::uint32_t>(u));
        AppendInt(body, static_cast<std::uint32_t>(v));
      }
      for (const auto& [u, v] : request.deletes) {
        AppendInt(body, static_cast<std::uint32_t>(u));
        AppendInt(body, static_cast<std::uint32_t>(v));
      }
      break;
    }
  }
  return SealFrame(request.opcode, WireError::kOk, request.request_id, body);
}

std::vector<std::uint8_t> EncodeResponse(const Response& response) {
  std::vector<std::uint8_t> body;
  if (response.status != WireError::kOk) {
    AppendString(body, response.message);
    return SealFrame(response.opcode, response.status, response.request_id,
                     body);
  }
  switch (response.opcode) {
    case Opcode::kPing:
      AppendInt(body, response.ping_payload);
      break;
    case Opcode::kGraphInfo:
      AppendInt(body, response.num_vertices);
      AppendInt(body, response.num_edges);
      AppendInt(body, response.epoch);
      break;
    case Opcode::kCoreness:
      AppendInt(body, response.coreness);
      AppendInt(body, response.kmax);
      break;
    case Opcode::kBestCoreSet:
      AppendInt(body, response.best_k);
      AppendDouble(body, response.best_score);
      AppendInt(body, response.num_scores);
      break;
    case Opcode::kBestSingleCore:
      AppendInt(body, response.best_k);
      AppendInt(body, response.best_node);
      AppendDouble(body, response.best_score);
      AppendInt(body, response.num_scores);
      break;
    case Opcode::kTrussMax:
      AppendInt(body, response.tmax);
      AppendInt(body, response.num_edges);
      break;
    case Opcode::kApplyBatch:
      AppendInt(body, response.epoch);
      AppendInt(body, response.inserted);
      AppendInt(body, response.deleted);
      AppendInt(body, response.rejected);
      AppendInt(body, response.coreness_changed);
      break;
  }
  return SealFrame(response.opcode, WireError::kOk, response.request_id, body);
}

WireError DecodeFrameHeader(std::span<const std::uint8_t> bytes,
                            FrameHeader* out, std::uint32_t max_body_bytes) {
  if (bytes.size() < kFrameHeaderBytes) return WireError::kTruncatedFrame;
  Reader reader(bytes.first(kFrameHeaderBytes));
  std::uint8_t opcode_byte = 0;
  std::uint16_t status_raw = 0;
  // The reads cannot fail (the span holds exactly kFrameHeaderBytes);
  // the && chain keeps that assumption checked.
  const bool ok = reader.ReadInt(&out->body_len) &&
                  reader.ReadInt(&out->version) &&
                  reader.ReadInt(&opcode_byte) &&
                  reader.ReadInt(&status_raw) &&
                  reader.ReadInt(&out->request_id);
  if (!ok) return WireError::kTruncatedFrame;
  // Opcode/status are stored raw here; full validation happens in the
  // body decoders, which can still address a typed rejection.
  out->opcode = static_cast<Opcode>(opcode_byte);
  out->status = static_cast<WireError>(status_raw);
  if (out->body_len > max_body_bytes) return WireError::kOversizedFrame;
  return WireError::kOk;
}

namespace {

// Shared prologue of both full-frame decoders: header checks, version
// and opcode gates, exact body length.  Returns kOk with `body` set to
// the body span on success.
WireError DecodeCommon(std::span<const std::uint8_t> bytes,
                       FrameHeader* header,
                       std::span<const std::uint8_t>* body,
                       std::string* error_message) {
  const WireError header_error = DecodeFrameHeader(bytes, header);
  if (header_error != WireError::kOk) {
    return Fail(header_error, "bad frame header", error_message);
  }
  if (header->version != kWireVersion) {
    return Fail(WireError::kUnsupportedVersion, "unsupported wire version",
                error_message);
  }
  if (static_cast<std::uint8_t>(header->opcode) >= kOpcodeCount) {
    return Fail(WireError::kUnknownOpcode, "unknown opcode", error_message);
  }
  if (bytes.size() < kFrameHeaderBytes + header->body_len) {
    return Fail(WireError::kTruncatedFrame, "body shorter than body_len",
                error_message);
  }
  if (bytes.size() > kFrameHeaderBytes + header->body_len) {
    return Fail(WireError::kMalformedBody, "bytes beyond body_len",
                error_message);
  }
  *body = bytes.subspan(kFrameHeaderBytes, header->body_len);
  return WireError::kOk;
}

}  // namespace

WireError DecodeRequest(std::span<const std::uint8_t> bytes, Request* out,
                        std::string* error_message) {
  *out = Request{};
  FrameHeader header;
  std::span<const std::uint8_t> body;
  // Fill the addressable fields even on failure, so transports can echo
  // request_id in their typed error response.
  const WireError pre = DecodeFrameHeader(bytes, &header);
  if (pre == WireError::kOk || pre == WireError::kOversizedFrame) {
    out->opcode = header.opcode;
    out->request_id = header.request_id;
  }
  const WireError common = DecodeCommon(bytes, &header, &body, error_message);
  if (common != WireError::kOk) return common;
  out->opcode = header.opcode;
  out->request_id = header.request_id;

  Reader reader(body);
  bool ok = true;
  switch (header.opcode) {
    case Opcode::kPing:
      ok = reader.ReadInt(&out->ping_payload);
      break;
    case Opcode::kGraphInfo:
    case Opcode::kTrussMax:
      ok = reader.ReadString(&out->graph);
      break;
    case Opcode::kCoreness: {
      std::uint32_t vertex = 0;
      ok = reader.ReadString(&out->graph) && reader.ReadInt(&vertex);
      out->vertex = vertex;
      break;
    }
    case Opcode::kBestCoreSet:
    case Opcode::kBestSingleCore: {
      std::uint8_t metric_byte = 0;
      ok = reader.ReadString(&out->graph) && reader.ReadInt(&metric_byte);
      if (ok && !ValidMetricByte(metric_byte)) {
        return Fail(WireError::kMalformedBody, "metric out of range",
                    error_message);
      }
      out->metric = static_cast<Metric>(metric_byte);
      break;
    }
    case Opcode::kApplyBatch: {
      std::uint32_t n_inserts = 0;
      std::uint32_t n_deletes = 0;
      ok = reader.ReadString(&out->graph) && reader.ReadInt(&n_inserts) &&
           reader.ReadInt(&n_deletes);
      // Counts are bounded by the body length (8 bytes per edge), so a
      // hostile count cannot force an allocation beyond max frame size;
      // the per-edge reads below fail on the first missing byte anyway.
      for (std::uint32_t i = 0; ok && i < n_inserts; ++i) {
        std::uint32_t u = 0;
        std::uint32_t v = 0;
        ok = reader.ReadInt(&u) && reader.ReadInt(&v);
        if (ok) out->inserts.emplace_back(u, v);
      }
      for (std::uint32_t i = 0; ok && i < n_deletes; ++i) {
        std::uint32_t u = 0;
        std::uint32_t v = 0;
        ok = reader.ReadInt(&u) && reader.ReadInt(&v);
        if (ok) out->deletes.emplace_back(u, v);
      }
      break;
    }
  }
  if (!ok) {
    return Fail(WireError::kMalformedBody, "body too short for opcode",
                error_message);
  }
  if (!reader.AtEnd()) {
    return Fail(WireError::kMalformedBody, "trailing bytes after body",
                error_message);
  }
  return WireError::kOk;
}

WireError DecodeResponse(std::span<const std::uint8_t> bytes, Response* out,
                         std::string* error_message) {
  *out = Response{};
  FrameHeader header;
  std::span<const std::uint8_t> body;
  const WireError pre = DecodeFrameHeader(bytes, &header);
  if (pre == WireError::kOk || pre == WireError::kOversizedFrame) {
    out->opcode = header.opcode;
    out->request_id = header.request_id;
  }
  const WireError common = DecodeCommon(bytes, &header, &body, error_message);
  if (common != WireError::kOk) return common;
  out->opcode = header.opcode;
  out->request_id = header.request_id;
  out->status = header.status;

  Reader reader(body);
  bool ok = true;
  if (out->status != WireError::kOk) {
    // Error responses carry only a message; validate the status byte is
    // one we know so garbage cannot masquerade as a fresh error kind.
    if (static_cast<std::uint16_t>(out->status) >
        static_cast<std::uint16_t>(WireError::kShuttingDown)) {
      return Fail(WireError::kMalformedBody, "unknown status code",
                  error_message);
    }
    ok = reader.ReadString(&out->message);
  } else {
    switch (header.opcode) {
      case Opcode::kPing:
        ok = reader.ReadInt(&out->ping_payload);
        break;
      case Opcode::kGraphInfo:
        ok = reader.ReadInt(&out->num_vertices) &&
             reader.ReadInt(&out->num_edges) && reader.ReadInt(&out->epoch);
        break;
      case Opcode::kCoreness:
        ok = reader.ReadInt(&out->coreness) && reader.ReadInt(&out->kmax);
        break;
      case Opcode::kBestCoreSet:
        ok = reader.ReadInt(&out->best_k) &&
             reader.ReadDouble(&out->best_score) &&
             reader.ReadInt(&out->num_scores);
        break;
      case Opcode::kBestSingleCore:
        ok = reader.ReadInt(&out->best_k) && reader.ReadInt(&out->best_node) &&
             reader.ReadDouble(&out->best_score) &&
             reader.ReadInt(&out->num_scores);
        break;
      case Opcode::kTrussMax:
        ok = reader.ReadInt(&out->tmax) && reader.ReadInt(&out->num_edges);
        break;
      case Opcode::kApplyBatch:
        ok = reader.ReadInt(&out->epoch) && reader.ReadInt(&out->inserted) &&
             reader.ReadInt(&out->deleted) && reader.ReadInt(&out->rejected) &&
             reader.ReadInt(&out->coreness_changed);
        break;
    }
  }
  if (!ok) {
    return Fail(WireError::kMalformedBody, "body too short for opcode",
                error_message);
  }
  if (!reader.AtEnd()) {
    return Fail(WireError::kMalformedBody, "trailing bytes after body",
                error_message);
  }
  return WireError::kOk;
}

}  // namespace corekit::server
