// WireClient: a blocking TCP client for the corekit_serve protocol.
//
// One connection, synchronous Call() (send one frame, read one frame)
// plus split Send()/Receive() for pipelining — the load generator keeps
// several requests in flight and matches responses by request_id.
// Std-only, POSIX sockets; the test suite and tools/corekit_loadgen are
// the consumers.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corekit/server/wire_protocol.h"
#include "corekit/util/status.h"

namespace corekit::server {

class WireClient {
 public:
  // Not yet connected; Connect() or the factory below establishes the
  // socket.
  WireClient() = default;
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  // Connects to host:port (IPv4 dotted quad, e.g. "127.0.0.1").
  Status Connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one encoded request frame (blocking until fully written).
  Status Send(const Request& request);

  // Reads exactly one response frame (blocking).  Protocol-level
  // rejections (typed error responses) come back as OK Statuses with
  // response->status set; only transport failures (EOF, oversized or
  // undecodable response frame) are non-OK.
  Status Receive(Response* response);

  // Send + Receive.  CHECKs that the response's request_id matches —
  // with no pipelining in flight, a mismatch is a protocol bug.
  Result<Response> Call(const Request& request);

  // Sends raw bytes as-is (no framing).  The protocol-robustness tests
  // use this to deliver deliberately malformed frames.
  Status SendRaw(const std::vector<std::uint8_t>& bytes);

 private:
  int fd_ = -1;
};

}  // namespace corekit::server
