// EngineService: wire requests -> engine answers, transport-agnostic.
//
// The protocol/engine split follows the IndexSearcher/server layering of
// the diagon search stack: wire_protocol.h owns bytes, tcp_server.h owns
// sockets and threads, and this class owns *semantics* — it maps one
// decoded Request onto the EngineRegistry (lease a tenant, run the
// query, fold the answer into a Response) and is therefore the exact
// point where a socket round-trip and a direct in-process call must
// agree bitwise.  The wire-vs-direct differential tests replay the same
// Request stream through both paths and compare checksums.
//
// Single-flight coalescing: identical cold queries (same graph, opcode,
// metric/vertex) arriving concurrently elect one executor; the rest
// block and share its Response (stamped with their own request_id).
// Inside one engine the versioned slots already make artifact builds
// exactly-once, so coalescing pays off mainly for queries with no
// engine-side cache — TrussMax runs a full O(m^1.5) peel per call — and
// for keeping N identical cold misses from consuming N worker threads.
// ApplyBatch and Ping are never coalesced (writes must all apply;
// pings measure liveness).
//
// Thread-safety: full, and machine-checked.  Handle() may be called
// from any number of transport workers; the registry does its own
// locking, counters are atomics, and coalescing has two lock levels the
// COREKIT_* annotations pin down: `flight_mutex_` guards only the
// flights_ map structure, each FlightCell's own mutex guards its
// done/response payload, and the two are never held together (the map
// hands out a shared_ptr, the cell is locked after the map lock drops —
// so there is no flight_mutex_ -> cell edge in the lock-order DAG).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "corekit/engine/engine_registry.h"
#include "corekit/server/wire_protocol.h"
#include "corekit/util/thread_annotations.h"

namespace corekit::server {

struct EngineServiceOptions {
  // Coalesce identical concurrent read queries (see header comment).
  bool coalesce_cold_queries = true;
  // Test-only: sleep this long inside every Handle() call, *after*
  // acquiring the lease but before computing.  Lets the backpressure
  // tests fill the transport's bounded queue deterministically; keep 0
  // in production.
  double artificial_delay_seconds = 0.0;
};

class EngineService {
 public:
  explicit EngineService(EngineRegistry& registry,
                         EngineServiceOptions options = {});
  EngineService(const EngineService&) = delete;
  EngineService& operator=(const EngineService&) = delete;

  // Answers one request.  Total: every failure (unknown graph, bad
  // vertex, ...) is a typed error Response; nothing throws.  The
  // response's request_id always mirrors the request's.
  Response Handle(const Request& request);

  struct Stats {
    std::uint64_t requests = 0;   // Handle() calls
    std::uint64_t errors = 0;     // non-OK responses
    std::uint64_t coalesced = 0;  // answers shared from another in-flight
                                  // identical query (followers only)
    std::uint64_t batches = 0;    // ApplyBatch requests executed
  };
  Stats stats() const;

 private:
  // One in-flight cold query; followers wait on cv until the leader
  // publishes.  The leader's Response is copied to every follower.
  struct FlightCell {
    Mutex mutex;
    CondVar cv;
    bool done COREKIT_GUARDED_BY(mutex) = false;
    Response response COREKIT_GUARDED_BY(mutex);
  };

  // Runs `compute` under single-flight for `key`.  Returns the shared
  // response (request_id not yet stamped); sets *coalesced for
  // followers.
  Response SingleFlight(const std::string& key,
                        const std::function<Response()>& compute,
                        bool* coalesced) COREKIT_EXCLUDES(flight_mutex_);

  Response Execute(const Request& request);

  EngineRegistry& registry_;
  EngineServiceOptions options_;

  // Guards only the map structure; never held while computing or while
  // a cell's own mutex is held.
  Mutex flight_mutex_;
  std::map<std::string, std::shared_ptr<FlightCell>> flights_
      COREKIT_GUARDED_BY(flight_mutex_);

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace corekit::server
