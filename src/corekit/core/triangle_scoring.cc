#include "corekit/core/triangle_scoring.h"

#include "corekit/simd/intersect.h"

namespace corekit {

std::uint64_t CountTrianglesAtVertex(const OrderedGraph& ordered, VertexId v,
                                     TriangleScratch& scratch) {
  COREKIT_DCHECK_EQ(scratch.size(), ordered.NumVertices());
  const auto higher = ordered.NeighborsHigherRank(v);
  for (const VertexId u : higher) scratch[u] = 1;
  std::uint64_t triangles = 0;
  for (const VertexId u : higher) {
    for (const VertexId w : ordered.NeighborsHigherRank(u)) {
      triangles += scratch[w];
    }
  }
  for (const VertexId u : higher) scratch[u] = 0;
  return triangles;
}

std::uint64_t CountTrianglesAtVertex(const OrderedGraph& ordered,
                                     VertexId v) {
  const auto v_ranks = ordered.NeighborRanksHigherRank(v);
  std::uint64_t triangles = 0;
  for (const VertexId u : ordered.NeighborsHigherRank(v)) {
    triangles +=
        simd::IntersectCount(v_ranks, ordered.NeighborRanksHigherRank(u));
  }
  return triangles;
}

std::uint64_t CountTriangles(const OrderedGraph& ordered) {
  std::uint64_t total = 0;
  const VertexId n = ordered.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    total += CountTrianglesAtVertex(ordered, v);
  }
  return total;
}

std::uint64_t CountTriplets(const Graph& graph) {
  std::uint64_t total = 0;
  const VertexId n = graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    total += Choose2(graph.Degree(v));
  }
  return total;
}

}  // namespace corekit
