#include "corekit/core/core_forest.h"

#include <algorithm>
#include <numeric>

#include "corekit/util/bucket_queue.h"

namespace corekit {

namespace {

// Mutable node used during the search; converted to CoreForest::Node after
// compression.
struct RawNode {
  VertexId coreness = 0;
  std::uint32_t parent = CoreForest::kNoNode;
  std::vector<VertexId> vertices;
};

}  // namespace

CoreForest::CoreForest(const Graph& graph, const CoreDecomposition& cores) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_EQ(cores.coreness.size(), n);

  // ---------------------------------------------------------------------
  // Algorithm 4: LCPS.  The bucket queue holds (priority, vertex) with
  // priority p = min(c(w), c(v)) assigned when w is discovered from v;
  // lazy deletion via the visited mask.  `chain` is the root-to-current
  // path of nodes (strictly increasing coreness), realizing the paper's
  // "adjust cur_p" steps: ascending pops the chain, descending pushes a
  // fresh node.
  // ---------------------------------------------------------------------
  std::vector<RawNode> raw;
  std::vector<std::uint32_t> raw_node_of_vertex(n, kNoNode);
  std::vector<bool> visited(n, false);
  BucketQueue<VertexId> queue(cores.kmax);
  std::vector<std::uint32_t> chain;

  for (VertexId s = 0; s < n; ++s) {
    if (visited[s]) continue;

    // New tree: a fresh root at coreness 0 (compressed away later if no
    // coreness-0 vertex lands in it).
    chain.clear();
    chain.push_back(static_cast<std::uint32_t>(raw.size()));
    raw.push_back(RawNode{});
    queue.Clear();
    queue.Push(0, s);

    while (!queue.empty()) {
      const auto [r, v] = queue.PopMax();
      if (visited[v]) continue;
      visited[v] = true;
      const VertexId cv = cores.coreness[v];

      // "if k > r: adjust cur_p so that k <- r": ascend the chain to the
      // node at coreness r, splicing in a new node when the chain skips
      // that level (the popped sub-chain re-parents under it).
      if (raw[chain.back()].coreness > r) {
        std::uint32_t last_popped = kNoNode;
        while (raw[chain.back()].coreness > r) {
          last_popped = chain.back();
          chain.pop_back();
          COREKIT_DCHECK(!chain.empty());
        }
        if (raw[chain.back()].coreness < r) {
          const auto fresh = static_cast<std::uint32_t>(raw.size());
          raw.push_back(RawNode{r, chain.back(), {}});
          raw[last_popped].parent = fresh;
          chain.push_back(fresh);
        }
      }
      // "if c(v) > r: adjust cur_p so that k <- c(v)": descend into a new
      // node for the denser core being entered.
      if (cv > raw[chain.back()].coreness) {
        const auto fresh = static_cast<std::uint32_t>(raw.size());
        raw.push_back(RawNode{cv, chain.back(), {}});
        chain.push_back(fresh);
      }

      COREKIT_DCHECK_EQ(raw[chain.back()].coreness, cv);
      raw[chain.back()].vertices.push_back(v);
      raw_node_of_vertex[v] = chain.back();

      for (const VertexId w : graph.Neighbors(v)) {
        if (!visited[w]) queue.Push(std::min(cores.coreness[w], cv), w);
      }
    }
  }

  // ---------------------------------------------------------------------
  // Step (ii): compress — drop nodes that hold no vertices, re-parenting
  // across them (a dropped node's parent chain is climbed until a kept
  // node or a root is found).
  // ---------------------------------------------------------------------
  const auto raw_count = static_cast<std::uint32_t>(raw.size());
  std::vector<bool> kept(raw_count);
  for (std::uint32_t i = 0; i < raw_count; ++i) {
    kept[i] = !raw[i].vertices.empty();
  }
  // nearest_kept[i]: nearest kept proper ancestor of raw node i.  Parent
  // indices are not monotone (the ascend step can splice a later-created
  // node above an earlier one), so resolve lazily with path memoization.
  std::vector<std::uint32_t> nearest_kept(raw_count, kNoNode);
  std::vector<bool> resolved(raw_count, false);
  std::vector<std::uint32_t> climb_path;
  for (std::uint32_t i = 0; i < raw_count; ++i) {
    if (resolved[i]) continue;
    climb_path.clear();
    std::uint32_t cur = i;
    std::uint32_t answer = kNoNode;
    while (true) {
      climb_path.push_back(cur);
      const std::uint32_t p = raw[cur].parent;
      if (p == kNoNode) break;
      if (kept[p]) {
        answer = p;
        break;
      }
      if (resolved[p]) {
        answer = nearest_kept[p];
        break;
      }
      cur = p;
    }
    for (const std::uint32_t q : climb_path) {
      nearest_kept[q] = answer;
      resolved[q] = true;
    }
  }

  // ---------------------------------------------------------------------
  // Step (iii): order kept nodes by descending coreness (stable, so nodes
  // of equal coreness keep discovery order) and remap ids.
  // ---------------------------------------------------------------------
  std::vector<std::uint32_t> kept_ids;
  kept_ids.reserve(raw_count);
  for (std::uint32_t i = 0; i < raw_count; ++i) {
    if (kept[i]) kept_ids.push_back(i);
  }
  std::stable_sort(kept_ids.begin(), kept_ids.end(),
                   [&raw](std::uint32_t a, std::uint32_t b) {
                     return raw[a].coreness > raw[b].coreness;
                   });
  std::vector<NodeId> new_id(raw_count, kNoNode);
  for (NodeId i = 0; i < kept_ids.size(); ++i) new_id[kept_ids[i]] = i;

  nodes_.resize(kept_ids.size());
  for (NodeId i = 0; i < kept_ids.size(); ++i) {
    const std::uint32_t old = kept_ids[i];
    Node& node = nodes_[i];
    node.coreness = raw[old].coreness;
    const std::uint32_t p = nearest_kept[old];
    node.parent = p == kNoNode ? kNoNode : new_id[p];
    node.vertices = std::move(raw[old].vertices);
    // A parent's coreness is strictly lower, hence its descending-sort
    // index is strictly larger: children always precede parents.
    COREKIT_DCHECK(node.parent == kNoNode || node.parent > i);
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != kNoNode) {
      nodes_[nodes_[i].parent].children.push_back(i);
    }
  }

  node_of_vertex_.assign(n, kNoNode);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (const VertexId v : nodes_[i].vertices) node_of_vertex_[v] = i;
  }

  // Subtree vertex totals: forward scan works because children precede
  // parents.
  subtree_size_.assign(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    subtree_size_[i] += static_cast<VertexId>(nodes_[i].vertices.size());
    if (nodes_[i].parent != kNoNode) {
      subtree_size_[nodes_[i].parent] += subtree_size_[i];
    }
  }
}

std::vector<VertexId> CoreForest::CoreVertices(NodeId id) const {
  std::vector<VertexId> result;
  result.reserve(subtree_size_[id]);
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& node = nodes_[cur];
    result.insert(result.end(), node.vertices.begin(), node.vertices.end());
    stack.insert(stack.end(), node.children.begin(), node.children.end());
  }
  return result;
}

}  // namespace corekit
