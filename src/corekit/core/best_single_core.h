// Finding the best single k-core (Problem 2; Algorithm 5 of the paper).
//
// Processes the core forest's nodes in descending coreness order; each
// node's primary values are the sum of its children's values plus the
// impact of its own shell vertices, using exactly the per-vertex updates
// of Algorithms 2 and 3.  Every individual connected k-core is scored.
//
// Complexity matches the paper: O(m) end-to-end for metrics on
// in/out/num, O(m^1.5) when triangles/triplets are required; O(m) space.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/core_forest.h"
#include "corekit/core/metrics.h"
#include "corekit/core/primary_values.h"
#include "corekit/core/vertex_ordering.h"

namespace corekit {

// Scores of every connected k-core, indexed by CoreForest node id.
struct SingleCoreProfile {
  // scores[i] = Q(core of forest node i).
  std::vector<double> scores;
  // primaries[i] = primary values of that core.
  std::vector<PrimaryValues> primaries;
  // Forest node of the best core (paper tie-break: prefer larger k, then
  // higher score).
  CoreForest::NodeId best_node = 0;
  VertexId best_k = 0;
  double best_score = 0.0;
};

// Primary values of every forest node's core (child aggregation +
// shell-vertex impact).  `with_triangles` runs the Algorithm 3 counters.
// `per_vertex_triangles`, when non-null, must hold CountTrianglesAtVertex
// for every vertex (e.g. from the parallel CountTrianglesPerVertex
// kernel); the pass then consumes those instead of re-counting serially.
std::vector<PrimaryValues> ComputeSingleCorePrimaries(
    const OrderedGraph& ordered, const CoreForest& forest, bool with_triangles,
    const std::vector<std::uint64_t>* per_vertex_triangles = nullptr);

// Algorithm 5: best single k-core for a built-in metric.
SingleCoreProfile FindBestSingleCore(const OrderedGraph& ordered,
                                     const CoreForest& forest, Metric metric);

// Extension point for custom metrics; `per_vertex_triangles` as above.
SingleCoreProfile FindBestSingleCore(
    const OrderedGraph& ordered, const CoreForest& forest,
    const MetricFn& metric, bool needs_triangles,
    const std::vector<std::uint64_t>* per_vertex_triangles = nullptr);

}  // namespace corekit
