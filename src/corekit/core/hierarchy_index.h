// CoreHierarchyIndex: O(log depth) queries over the core forest.
//
// The paper emphasizes that its algorithms expose the score of *every*
// k-core as a byproduct; this index packages that product for interactive
// use.  After an O(n log n) preprocessing (binary lifting over the
// forest), it answers:
//
//   * NodeOf(v, k)      — the forest node of the k-core containing v
//                         (kNoNode when coreness(v) < k);
//   * CoreSize(v, k)    — its size, O(log depth);
//   * Score(v, k)       — its score under the metric profile supplied at
//                         construction, O(log depth);
//   * BestKFor(v)       — the k whose core containing v scores best
//                         (the per-vertex personalization of Problem 2),
//                         O(path length).
//
// This is the "community search" view: for a query vertex, the chain of
// cores containing it is its community hierarchy, and the index makes
// every level addressable.

#pragma once

#include <vector>

#include "corekit/core/best_single_core.h"
#include "corekit/core/core_forest.h"

namespace corekit {

class CoreHierarchyIndex {
 public:
  // `profile` must come from FindBestSingleCore over the same forest (its
  // scores index forest nodes).  Both references must outlive the index.
  CoreHierarchyIndex(const CoreForest& forest,
                     const SingleCoreProfile& profile);

  // Forest node of the k-core containing v; kNoNode when v is not in any
  // k-core.  O(log depth).
  CoreForest::NodeId NodeOf(VertexId v, VertexId k) const;

  // Size of that core (0 when it does not exist).  O(log depth).
  VertexId CoreSize(VertexId v, VertexId k) const;

  // Score of that core under the profile's metric.  CHECK-fails when the
  // core does not exist (query coreness(v) first).  O(log depth).
  double Score(VertexId v, VertexId k) const;

  // The k maximizing Score(v, k) over 1 <= k <= coreness(v); ties prefer
  // the larger k.  Returns 0 for isolated vertices.  O(path length).
  VertexId BestKFor(VertexId v) const;

 private:
  const CoreForest* forest_;
  const SingleCoreProfile* profile_;
  // up_[j][i]: the 2^j-th ancestor of node i (kNoNode beyond the root).
  std::vector<std::vector<CoreForest::NodeId>> up_;
};

}  // namespace corekit
