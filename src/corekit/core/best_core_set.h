// Finding the best k-core set (Problem 1; Algorithms 2 and 3 of the
// paper).
//
// Walks the shells from k = kmax down to 0, incrementally maintaining the
// primary values of the k-core set C_k from those of C_{k+1} using the
// O(1) ordered-neighborhood counts of Algorithm 1:
//
//   in  += |N(v,>)| + |N(v,=)|/2      (new internal edges)
//   out += |N(v,<)| - |N(v,>)|        (boundary churn)
//   num += 1
//
// and, when the metric needs them (clustering coefficient), the
// triangle/triplet counters of Algorithm 3.  Time: O(n) scoring after the
// O(m) decomposition + ordering — worst-case optimal; O(m^1.5) with
// triangles, matching the triangle-counting lower bound.
//
// The profile of *every* k is returned, not just the argmax, since the
// paper highlights that intermediate scores benefit other k-core problems.

#pragma once

#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/core/primary_values.h"
#include "corekit/core/vertex_ordering.h"

namespace corekit {

// Scores of all k-core sets under one metric.
struct CoreSetProfile {
  // scores[k] = Q(C_k) for k in [0, kmax].
  std::vector<double> scores;
  // primaries[k] = primary values of C_k (same indexing).
  std::vector<PrimaryValues> primaries;
  // argmax_k scores[k]; the largest k is reported on ties (the paper's
  // convention for Table IV).
  VertexId best_k = 0;
  double best_score = 0.0;
};

// Primary values of every k-core set C_k, k in [0, kmax], by the top-down
// incremental walk.  `with_triangles` additionally runs the Algorithm 3
// counters (O(m^1.5) instead of O(n) after ordering).
std::vector<PrimaryValues> ComputeCoreSetPrimaries(const OrderedGraph& ordered,
                                                   bool with_triangles);

// Algorithm 2 / 3: best k for a built-in metric.
CoreSetProfile FindBestCoreSet(const OrderedGraph& ordered, Metric metric);

// Extension point: best k for a custom metric over primary values.  Set
// `needs_triangles` if the callable reads the triangle/triplet fields.
CoreSetProfile FindBestCoreSet(const OrderedGraph& ordered,
                               const MetricFn& metric, bool needs_triangles);

// Selects the paper's tie-break (largest k among maxima) over a score
// vector; exposed for reuse by the baseline and the benches.
VertexId ArgmaxLargestK(const std::vector<double>& scores);

}  // namespace corekit
