#include "corekit/core/multi_metric.h"

#include <algorithm>

namespace corekit {

namespace {

bool AnyNeedsTriangles(std::span<const Metric> metrics) {
  return std::any_of(metrics.begin(), metrics.end(), MetricNeedsTriangles);
}

}  // namespace

std::vector<CoreSetProfile> FindBestCoreSetMulti(
    const OrderedGraph& ordered, std::span<const Metric> metrics) {
  const std::vector<PrimaryValues> primaries =
      ComputeCoreSetPrimaries(ordered, AnyNeedsTriangles(metrics));
  const GraphGlobals globals{ordered.NumVertices(),
                             ordered.graph().NumEdges()};

  std::vector<CoreSetProfile> profiles(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    CoreSetProfile& profile = profiles[i];
    profile.primaries = primaries;
    profile.scores.reserve(primaries.size());
    for (const PrimaryValues& pv : primaries) {
      profile.scores.push_back(EvaluateMetric(metrics[i], pv, globals));
    }
    profile.best_k = ArgmaxLargestK(profile.scores);
    profile.best_score = profile.scores[profile.best_k];
  }
  return profiles;
}

std::vector<SingleCoreProfile> FindBestSingleCoreMulti(
    const OrderedGraph& ordered, const CoreForest& forest,
    std::span<const Metric> metrics) {
  const std::vector<PrimaryValues> primaries = ComputeSingleCorePrimaries(
      ordered, forest, AnyNeedsTriangles(metrics));
  const GraphGlobals globals{ordered.NumVertices(),
                             ordered.graph().NumEdges()};

  std::vector<SingleCoreProfile> profiles(metrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    SingleCoreProfile& profile = profiles[i];
    profile.primaries = primaries;
    profile.scores.reserve(primaries.size());
    for (const PrimaryValues& pv : primaries) {
      profile.scores.push_back(EvaluateMetric(metrics[i], pv, globals));
    }
    profile.best_node = 0;
    for (CoreForest::NodeId node = 1; node < profile.scores.size(); ++node) {
      if (profile.scores[node] > profile.scores[profile.best_node]) {
        profile.best_node = node;
      }
    }
    profile.best_k = forest.node(profile.best_node).coreness;
    profile.best_score = profile.scores[profile.best_node];
  }
  return profiles;
}

}  // namespace corekit
