#include "corekit/core/union_find_forest.h"

#include <algorithm>
#include <map>
#include <set>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

class VertexUnionFind {
 public:
  explicit VertexUnionFind(VertexId n)
      : parent_(n), node_(n, CoreForest::kNoNode) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }

  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  // Merges b's component into a's (or vice versa); the surviving root
  // keeps the union of pending children.
  VertexId Union(VertexId a, VertexId b,
                 std::vector<std::vector<std::uint32_t>>& pending) {
    VertexId ra = Find(a);
    VertexId rb = Find(b);
    if (ra == rb) return ra;
    if (pending[ra].size() < pending[rb].size()) std::swap(ra, rb);
    parent_[rb] = ra;
    pending[ra].insert(pending[ra].end(), pending[rb].begin(),
                       pending[rb].end());
    pending[rb].clear();
    pending[rb].shrink_to_fit();
    return ra;
  }

  std::uint32_t NodeOf(VertexId root) const { return node_[root]; }
  void SetNode(VertexId root, std::uint32_t node) { node_[root] = node; }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> node_;
};

}  // namespace

UnionFindForest BuildUnionFindForest(const Graph& graph,
                                     const CoreDecomposition& cores) {
  const VertexId n = graph.NumVertices();
  UnionFindForest forest;
  if (n == 0) return forest;

  // Vertices bucketed by coreness for the descending sweep.
  std::vector<std::vector<VertexId>> shells(
      static_cast<std::size_t>(cores.kmax) + 1);
  for (VertexId v = 0; v < n; ++v) shells[cores.coreness[v]].push_back(v);

  VertexUnionFind uf(n);
  std::vector<std::vector<std::uint32_t>> pending(n);
  std::vector<bool> active(n, false);
  std::vector<VertexId> touched_roots;
  std::vector<std::vector<VertexId>> shell_vertices_of_root(n);

  for (VertexId k = cores.kmax;; --k) {
    const auto& shell = shells[k];
    if (!shell.empty()) {
      // Activate the shell and its edges into the active region; a
      // component's previous node becomes a pending child as soon as the
      // component grows.
      for (const VertexId v : shell) active[v] = true;
      for (const VertexId v : shell) {
        for (const VertexId u : graph.Neighbors(v)) {
          if (!active[u]) continue;
          for (const VertexId x : {v, u}) {
            const VertexId r = uf.Find(x);
            if (uf.NodeOf(r) != CoreForest::kNoNode) {
              pending[r].push_back(uf.NodeOf(r));
              uf.SetNode(r, CoreForest::kNoNode);
            }
          }
          uf.Union(v, u, pending);
        }
      }
      // Assign shell vertices to their final components.
      touched_roots.clear();
      for (const VertexId v : shell) {
        const VertexId r = uf.Find(v);
        if (shell_vertices_of_root[r].empty()) touched_roots.push_back(r);
        shell_vertices_of_root[r].push_back(v);
      }
      // One node per component that gained shell vertices.
      for (const VertexId r : touched_roots) {
        if (shell_vertices_of_root[r].empty()) continue;
        const auto id = static_cast<std::uint32_t>(forest.nodes.size());
        UnionFindForestNode node;
        node.coreness = k;
        node.vertices = std::move(shell_vertices_of_root[r]);
        shell_vertices_of_root[r].clear();
        // The pending children of r, plus r's own previous node if any
        // (a component can gain shell vertices without merging).
        if (uf.NodeOf(r) != CoreForest::kNoNode) {
          pending[r].push_back(uf.NodeOf(r));
        }
        node.children = std::move(pending[r]);
        pending[r].clear();
        std::sort(node.children.begin(), node.children.end());
        node.children.erase(
            std::unique(node.children.begin(), node.children.end()),
            node.children.end());
        for (const std::uint32_t child : node.children) {
          forest.nodes[child].parent = id;
        }
        forest.nodes.push_back(std::move(node));
        uf.SetNode(r, id);
      }
    }
    if (k == 0) break;
  }
  return forest;
}

bool ForestsEquivalent(const CoreForest& lcps, const UnionFindForest& uf) {
  if (lcps.NumNodes() != uf.nodes.size()) return false;

  // Key a node by (coreness, sorted own vertices); map to the parent's
  // key for cross-checking.
  using Key = std::pair<VertexId, std::vector<VertexId>>;
  auto key_of_lcps = [&lcps](CoreForest::NodeId i) {
    std::vector<VertexId> vertices = lcps.node(i).vertices;
    std::sort(vertices.begin(), vertices.end());
    return Key{lcps.node(i).coreness, std::move(vertices)};
  };
  auto key_of_uf = [&uf](std::uint32_t i) {
    std::vector<VertexId> vertices = uf.nodes[i].vertices;
    std::sort(vertices.begin(), vertices.end());
    return Key{uf.nodes[i].coreness, std::move(vertices)};
  };

  std::map<Key, Key> lcps_parent;
  const Key kRoot{0, {}};
  for (CoreForest::NodeId i = 0; i < lcps.NumNodes(); ++i) {
    const auto parent = lcps.node(i).parent;
    lcps_parent[key_of_lcps(i)] =
        parent == CoreForest::kNoNode ? kRoot : key_of_lcps(parent);
  }
  if (lcps_parent.size() != lcps.NumNodes()) return false;  // duplicate key

  for (std::uint32_t i = 0; i < uf.nodes.size(); ++i) {
    const auto it = lcps_parent.find(key_of_uf(i));
    if (it == lcps_parent.end()) return false;
    const auto parent = uf.nodes[i].parent;
    const Key parent_key =
        parent == CoreForest::kNoNode ? kRoot : key_of_uf(parent);
    if (it->second != parent_key) return false;
  }
  return true;
}

}  // namespace corekit
