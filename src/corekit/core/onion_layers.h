// Onion decomposition: the layer refinement of the k-core peel
// (Hébert-Dufresne, Grochow & Allard, Sci. Rep. 2016; the percolation
// view of reference [30] of the paper).
//
// The Batagelj–Zaversnik peel removes vertices one at a time; grouping
// the removals into *simultaneous waves* — all vertices at or below the
// current threshold go together — assigns every vertex an onion layer.
// Layers refine shells (every shell splits into one or more layers) and
// capture how central a vertex is *within* its shell, which the k-core
// fingerprint visualization (viz/svg_fingerprint.h) uses for radial
// depth.

#pragma once

#include <vector>

#include "corekit/graph/graph.h"

namespace corekit {

struct OnionDecomposition {
  // layer[v] >= 1; vertices removed in the first wave get layer 1.
  std::vector<VertexId> layer;
  // coreness[v], computed as a byproduct (equals the BZ result).
  std::vector<VertexId> coreness;
  VertexId num_layers = 0;
  VertexId kmax = 0;
};

// Wave-synchronous peel.  O(m + n * waves) with a simple frontier scan;
// waves are few in practice (<= n trivially, typically O(log n) per
// shell).
OnionDecomposition ComputeOnionDecomposition(const Graph& graph);

}  // namespace corekit
