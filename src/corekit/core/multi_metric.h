// Single-pass multi-metric scoring.
//
// The paper points out that core decomposition and the Algorithm 1 index
// are built once and reused across metrics; the same holds for the shell
// walk itself — the primary values do not depend on the metric, so all
// six (or sixty) metrics can be scored from ONE top-down pass.  The
// benches and the sweep example use this to regenerate whole tables at
// the cost of a single profile.

#pragma once

#include <span>
#include <vector>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"

namespace corekit {

// One CoreSetProfile per metric, from a single shell walk.  Triangles are
// computed once iff any metric needs them.
std::vector<CoreSetProfile> FindBestCoreSetMulti(
    const OrderedGraph& ordered, std::span<const Metric> metrics);

// One SingleCoreProfile per metric, from a single forest aggregation.
std::vector<SingleCoreProfile> FindBestSingleCoreMulti(
    const OrderedGraph& ordered, const CoreForest& forest,
    std::span<const Metric> metrics);

}  // namespace corekit
