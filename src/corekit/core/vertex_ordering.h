// Vertex ordering (Algorithm 1 + Table II of the paper): the O(m) index
// that makes the best-k algorithms time-optimal.
//
// Given a graph and its core decomposition, OrderedGraph stores:
//   * the vertex array V sorted by vertex *rank* — ascending (coreness, id)
//     (Definition 5) — partitioned into kmax+1 coreness blocks, so the
//     k-shell H_k and the k-core-set C_k are contiguous ranges;
//   * every adjacency list re-sorted by ascending neighbor rank;
//   * per-vertex position tags  same / plus / high  (Table II) so that all
//     the |N(v, <)|, |N(v, =)|, |N(v, >)|, |N(v, >=)|, |N(v, >r)| counts are
//     O(1) and the corresponding neighbor slices are returned in
//     O(|slice|).
//
// Construction is two bin sorts (vertices, then edge pairs flattened
// through kmax+1 bins) and a single scan for the tags: O(m) time, O(m)
// space — no comparison sort anywhere, exactly as the paper prescribes.

#pragma once

#include <span>
#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

class ThreadPool;

class OrderedGraph {
 public:
  // Builds the ordering index.  `cores` must be the decomposition of
  // `graph`.  The graph reference must outlive the OrderedGraph.
  OrderedGraph(const Graph& graph, const CoreDecomposition& cores);

  // Parallel construction on `pool`: the two bin sorts of Algorithm 1
  // and the tag scan run as per-thread-histogram counting sorts, and the
  // result is bitwise identical to the serial constructor's.  Defined in
  // parallel/parallel_ordering.cc (the parallel substrate layer).
  OrderedGraph(const Graph& graph, const CoreDecomposition& cores,
               ThreadPool& pool);

  const Graph& graph() const { return *graph_; }

  VertexId NumVertices() const { return graph_->NumVertices(); }
  VertexId kmax() const { return kmax_; }

  // Coreness of v (copied from the decomposition for locality).
  VertexId Coreness(VertexId v) const { return coreness_[v]; }

  // Degree of v in the full graph.
  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  // --- Vertex order ------------------------------------------------------

  // All vertices by ascending rank; the slice [ShellBegin(k), ShellEnd(k))
  // is the k-shell H_k, and [ShellBegin(k), n) is the k-core set C_k.
  std::span<const VertexId> VerticesByRank() const { return order_; }
  VertexId ShellBegin(VertexId k) const { return shell_start_[k]; }
  VertexId ShellEnd(VertexId k) const { return shell_start_[k + 1]; }

  // The k-shell H_k as a contiguous slice of the rank order.
  std::span<const VertexId> Shell(VertexId k) const {
    return {order_.data() + shell_start_[k],
            static_cast<std::size_t>(shell_start_[k + 1] - shell_start_[k])};
  }

  // Number of vertices in the k-core set C_k (coreness >= k), O(1).
  VertexId CoreSetSize(VertexId k) const {
    return static_cast<VertexId>(order_.size()) - shell_start_[k];
  }

  // --- Ordered neighbor queries (Table II) -------------------------------

  // Full neighbor list of v, ascending by rank.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return Slice(offsets_[v], offsets_[v + 1]);
  }
  // N(v, <): neighbors with coreness < c(v).
  std::span<const VertexId> NeighborsLower(VertexId v) const {
    return Slice(offsets_[v], offsets_[v] + same_[v]);
  }
  // N(v, =): neighbors with coreness == c(v).
  std::span<const VertexId> NeighborsEqual(VertexId v) const {
    return Slice(offsets_[v] + same_[v], offsets_[v] + plus_[v]);
  }
  // N(v, >): neighbors with coreness > c(v).
  std::span<const VertexId> NeighborsHigher(VertexId v) const {
    return Slice(offsets_[v] + plus_[v], offsets_[v + 1]);
  }
  // N(v, >=): neighbors with coreness >= c(v).
  std::span<const VertexId> NeighborsGeq(VertexId v) const {
    return Slice(offsets_[v] + same_[v], offsets_[v + 1]);
  }
  // N(v, >r): neighbors with rank(u) > rank(v).
  std::span<const VertexId> NeighborsHigherRank(VertexId v) const {
    return Slice(offsets_[v] + high_[v], offsets_[v + 1]);
  }

  // --- Rank-space views (SIMD intersection substrate) --------------------
  //
  // Adjacency lists are rank-sorted, not id-sorted, so sorted-set
  // intersection over them needs the *rank* images: neighbor_ranks_ is
  // the neighbors_ array mapped through RankOf, strictly increasing
  // within each per-vertex slice because ranks are unique.  Two
  // vertices are adjacent in rank space iff they are in id space, so
  // |ranks(N(u)) ∩ ranks(N(v))| counts common neighbors exactly.

  // Position of v in the rank order (inverse of VerticesByRank()).
  VertexId RankOf(VertexId v) const { return rank_of_[v]; }

  // Rank images of the Neighbors(v) slice, strictly increasing.
  std::span<const VertexId> NeighborRanks(VertexId v) const {
    return RankSlice(offsets_[v], offsets_[v + 1]);
  }
  // Rank images of the NeighborsHigherRank(v) slice.
  std::span<const VertexId> NeighborRanksHigherRank(VertexId v) const {
    return RankSlice(offsets_[v] + high_[v], offsets_[v + 1]);
  }

  // O(1) counts of the slices above.
  VertexId CountLower(VertexId v) const { return same_[v]; }
  VertexId CountEqual(VertexId v) const {
    return plus_[v] - same_[v];
  }
  VertexId CountHigher(VertexId v) const {
    return Degree(v) - plus_[v];
  }
  VertexId CountGeq(VertexId v) const { return Degree(v) - same_[v]; }
  VertexId CountHigherRank(VertexId v) const {
    return Degree(v) - high_[v];
  }

  // rank(u) > rank(v) per Definition 5 (coreness, then id).
  bool RankGreater(VertexId u, VertexId v) const {
    return coreness_[u] != coreness_[v] ? coreness_[u] > coreness_[v] : u > v;
  }

  // Raw position tags (offsets within v's neighbor list), for tests.
  VertexId TagSame(VertexId v) const { return same_[v]; }
  VertexId TagPlus(VertexId v) const { return plus_[v]; }
  VertexId TagHigh(VertexId v) const { return high_[v]; }

 private:
  std::span<const VertexId> Slice(EdgeId begin, EdgeId end) const {
    return {neighbors_.data() + begin, static_cast<std::size_t>(end - begin)};
  }
  std::span<const VertexId> RankSlice(EdgeId begin, EdgeId end) const {
    return {neighbor_ranks_.data() + begin,
            static_cast<std::size_t>(end - begin)};
  }

  // Shared construction bodies (members are init'd, arrays not yet built).
  void BuildSerial();
  void BuildParallel(ThreadPool& pool);  // in parallel/parallel_ordering.cc
  // Computes the Table II tags for vertices in [begin, end); each vertex
  // is independent, so the parallel build calls this over disjoint ranges.
  void ComputeTagsRange(VertexId begin, VertexId end);

  const Graph* graph_;
  VertexId kmax_;
  std::vector<VertexId> coreness_;     // per vertex
  std::vector<VertexId> order_;        // vertices by ascending rank
  std::vector<VertexId> shell_start_;  // kmax+2 entries into order_
  std::vector<EdgeId> offsets_;        // n+1, same shape as the graph CSR
  std::vector<VertexId> neighbors_;    // 2m, rank-ordered per vertex
  std::vector<VertexId> same_;         // Table II tags, per vertex
  std::vector<VertexId> plus_;
  std::vector<VertexId> high_;
  std::vector<VertexId> rank_of_;         // n, inverse of order_
  std::vector<VertexId> neighbor_ranks_;  // 2m, rank image of neighbors_
};

}  // namespace corekit
