#include "corekit/core/hierarchy_index.h"

#include "corekit/util/logging.h"

namespace corekit {

CoreHierarchyIndex::CoreHierarchyIndex(const CoreForest& forest,
                                       const SingleCoreProfile& profile)
    : forest_(&forest), profile_(&profile) {
  COREKIT_CHECK_EQ(profile.scores.size(), forest.NumNodes());
  const CoreForest::NodeId count = forest.NumNodes();
  if (count == 0) return;

  up_.emplace_back(count);
  for (CoreForest::NodeId i = 0; i < count; ++i) {
    up_[0][i] = forest.node(i).parent;
  }
  // Double until no node has an ancestor at that distance.
  while (true) {
    const auto& prev = up_.back();
    bool any = false;
    std::vector<CoreForest::NodeId> next(count, CoreForest::kNoNode);
    for (CoreForest::NodeId i = 0; i < count; ++i) {
      if (prev[i] != CoreForest::kNoNode) {
        next[i] = prev[prev[i]];
        any = any || next[i] != CoreForest::kNoNode;
      }
    }
    if (!any) break;
    up_.push_back(std::move(next));
  }
}

CoreForest::NodeId CoreHierarchyIndex::NodeOf(VertexId v, VertexId k) const {
  CoreForest::NodeId node = forest_->NodeOfVertex(v);
  if (node == CoreForest::kNoNode || forest_->node(node).coreness < k) {
    return CoreForest::kNoNode;
  }
  // Climb to the highest ancestor whose coreness is still >= k: that
  // ancestor is the k-core containing v... unless its parent would also
  // qualify (it cannot, by maximality of the jump).
  for (std::size_t j = up_.size(); j-- > 0;) {
    const CoreForest::NodeId ancestor = up_[j][node];
    if (ancestor != CoreForest::kNoNode &&
        forest_->node(ancestor).coreness >= k) {
      node = ancestor;
    }
  }
  return node;
}

VertexId CoreHierarchyIndex::CoreSize(VertexId v, VertexId k) const {
  const CoreForest::NodeId node = NodeOf(v, k);
  return node == CoreForest::kNoNode ? 0 : forest_->CoreSize(node);
}

double CoreHierarchyIndex::Score(VertexId v, VertexId k) const {
  const CoreForest::NodeId node = NodeOf(v, k);
  COREKIT_CHECK(node != CoreForest::kNoNode)
      << "vertex " << v << " is not in any " << k << "-core";
  return profile_->scores[node];
}

VertexId CoreHierarchyIndex::BestKFor(VertexId v) const {
  CoreForest::NodeId node = forest_->NodeOfVertex(v);
  if (node == CoreForest::kNoNode) return 0;
  VertexId best_k = forest_->node(node).coreness;
  double best_score = profile_->scores[node];
  // Walk the root path: each node is the k-core of v for every k in
  // (parent.coreness, node.coreness]; the best score at the node level
  // is attained at the node's own coreness (larger k ties broken up).
  for (CoreForest::NodeId cur = node; cur != CoreForest::kNoNode;
       cur = forest_->node(cur).parent) {
    if (forest_->node(cur).coreness == 0) break;
    if (profile_->scores[cur] > best_score) {
      best_score = profile_->scores[cur];
      best_k = forest_->node(cur).coreness;
    }
  }
  return best_k;
}

}  // namespace corekit
