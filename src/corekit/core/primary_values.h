// Primary values (Section II-C of the paper): the five per-subgraph
// quantities from which most community scoring metrics are computed.
//
//   n(S)  number of vertices            -> num_vertices
//   m(S)  number of internal edges      -> internal_edges
//   b(S)  number of boundary edges      -> boundary_edges
//   D(S)  number of triangles           -> triangles
//   t(S)  number of triplets (paths of  -> triplets
//         length 2, sum_v C(d(v,S), 2))
//
// Internal edges are tracked doubled (internal_edges_x2) by the
// incremental algorithms because a half-edge is contributed per endpoint;
// the doubled value is always even whenever a whole shell / tree node has
// been absorbed.

#pragma once

#include <cstdint>
#include <string>

#include "corekit/graph/types.h"
#include "corekit/util/logging.h"

namespace corekit {

struct PrimaryValues {
  std::uint64_t num_vertices = 0;
  std::uint64_t internal_edges_x2 = 0;  // 2 * m(S)
  std::uint64_t boundary_edges = 0;     // b(S)
  std::uint64_t triangles = 0;          // D(S)
  std::uint64_t triplets = 0;           // t(S)
  // True when triangles/triplets were actually computed (Algorithm 3 /
  // its per-core variant); metrics that need them CHECK this.
  bool has_triangles = false;

  std::uint64_t InternalEdges() const {
    COREKIT_DCHECK(internal_edges_x2 % 2 == 0);
    return internal_edges_x2 / 2;
  }

  // Element-wise accumulation (used by the forest aggregation of
  // Algorithm 5, where a parent core absorbs its children's values).
  PrimaryValues& operator+=(const PrimaryValues& other) {
    num_vertices += other.num_vertices;
    internal_edges_x2 += other.internal_edges_x2;
    boundary_edges += other.boundary_edges;
    triangles += other.triangles;
    triplets += other.triplets;
    has_triangles = has_triangles || other.has_triangles;
    return *this;
  }
};

// Global graph quantities some metrics reference (cut ratio needs n,
// modularity needs m).
struct GraphGlobals {
  std::uint64_t num_vertices = 0;  // n
  std::uint64_t num_edges = 0;     // m
};

// Debug rendering "{n=.. m=.. b=.. [tri=.. trip=..]}".
std::string ToString(const PrimaryValues& pv);

// Equality on the basic values; triangle fields are compared only when both
// sides carry them.
bool operator==(const PrimaryValues& a, const PrimaryValues& b);

}  // namespace corekit
