#include "corekit/core/best_single_core.h"

#include <cstdint>

#include "corekit/core/triangle_scoring.h"

namespace corekit {

std::vector<PrimaryValues> ComputeSingleCorePrimaries(
    const OrderedGraph& ordered, const CoreForest& forest, bool with_triangles,
    const std::vector<std::uint64_t>* per_vertex_triangles) {
  const VertexId n = ordered.NumVertices();
  COREKIT_DCHECK(per_vertex_triangles == nullptr ||
                 per_vertex_triangles->size() == n);
  const CoreForest::NodeId count = forest.NumNodes();
  std::vector<PrimaryValues> primaries(count);

  // Algorithm 3 state, global across nodes: shells of equal coreness in
  // different cores are never adjacent, so the f-counters evolve exactly
  // as in the single-sequence Algorithm 3 despite the per-node grouping.
  TriangleScratch scratch;
  std::vector<VertexId> f_geq;
  std::vector<VertexId> f_gt;
  std::vector<VertexId> shell_nbr;
  std::vector<CoreForest::NodeId> stamp;
  if (with_triangles) {
    if (per_vertex_triangles == nullptr) scratch.assign(n, 0);
    f_geq.assign(n, 0);
    f_gt.assign(n, 0);
    stamp.assign(n, CoreForest::kNoNode);
  }

  // Nodes are sorted by descending coreness, so children (denser cores)
  // are always complete before their parent absorbs them (Algorithm 5,
  // lines 6-10).
  for (CoreForest::NodeId i = 0; i < count; ++i) {
    const CoreForest::Node& node = forest.node(i);
    PrimaryValues& pv = primaries[i];

    // Child aggregation (lines 7-8).
    for (const CoreForest::NodeId child : node.children) {
      COREKIT_DCHECK(child < i);
      pv += primaries[child];
    }

    // Impact of this node's shell vertices (lines 9-10), reusing the
    // Algorithm 2 per-vertex updates.
    std::int64_t out_delta = 0;
    for (const VertexId v : node.vertices) {
      const std::uint64_t higher = ordered.CountHigher(v);
      const std::uint64_t equal = ordered.CountEqual(v);
      const std::uint64_t lower = ordered.CountLower(v);
      pv.internal_edges_x2 += 2 * higher + equal;
      out_delta += static_cast<std::int64_t>(lower) -
                   static_cast<std::int64_t>(higher);
      ++pv.num_vertices;
    }
    const auto boundary = static_cast<std::int64_t>(pv.boundary_edges);
    COREKIT_DCHECK(boundary + out_delta >= 0);
    pv.boundary_edges = static_cast<std::uint64_t>(boundary + out_delta);

    if (with_triangles) {
      pv.has_triangles = true;
      // Algorithm 3 lines 7-12: triangles entering at this core's shell.
      // The per-vertex counts may come precomputed from the parallel
      // kernel; both sources are exact, so the sums are identical.
      for (const VertexId v : node.vertices) {
        pv.triangles += per_vertex_triangles != nullptr
                            ? (*per_vertex_triangles)[v]
                            : CountTrianglesAtVertex(ordered, v, scratch);
      }
      // Line 13: triplets centered in the shell.
      for (const VertexId v : node.vertices) {
        pv.triplets += Choose2(ordered.CountGeq(v));
      }
      // Lines 14-22: new triplets centered in the contained denser cores.
      shell_nbr.clear();
      for (const VertexId u : node.vertices) {
        for (const VertexId v : ordered.NeighborsHigher(u)) {
          if (stamp[v] != i) {
            stamp[v] = i;
            shell_nbr.push_back(v);
          }
        }
      }
      for (const VertexId v : shell_nbr) f_gt[v] = f_geq[v];
      for (const VertexId v : node.vertices) {
        for (const VertexId u : ordered.Neighbors(v)) ++f_geq[u];
      }
      for (const VertexId v : shell_nbr) {
        const std::uint64_t gt_k = f_gt[v];
        const std::uint64_t eq_k = f_geq[v] - f_gt[v];
        pv.triplets += Choose2(eq_k) + gt_k * eq_k;
      }
    }
  }
  return primaries;
}

SingleCoreProfile FindBestSingleCore(const OrderedGraph& ordered,
                                     const CoreForest& forest, Metric metric) {
  return FindBestSingleCore(ordered, forest, MetricFunction(metric),
                            MetricNeedsTriangles(metric));
}

SingleCoreProfile FindBestSingleCore(
    const OrderedGraph& ordered, const CoreForest& forest,
    const MetricFn& metric, bool needs_triangles,
    const std::vector<std::uint64_t>* per_vertex_triangles) {
  SingleCoreProfile profile;
  profile.primaries = ComputeSingleCorePrimaries(
      ordered, forest, needs_triangles, per_vertex_triangles);
  const GraphGlobals globals{ordered.NumVertices(),
                             ordered.graph().NumEdges()};
  profile.scores.reserve(profile.primaries.size());
  for (const PrimaryValues& pv : profile.primaries) {
    profile.scores.push_back(metric(pv, globals));
  }
  COREKIT_CHECK(!profile.scores.empty()) << "empty graph has no k-core";
  // Nodes are sorted by descending coreness; taking strictly-greater
  // scores realizes the paper's "largest k on ties" convention.
  profile.best_node = 0;
  for (CoreForest::NodeId i = 1; i < profile.scores.size(); ++i) {
    if (profile.scores[i] > profile.scores[profile.best_node]) {
      profile.best_node = i;
    }
  }
  profile.best_k = forest.node(profile.best_node).coreness;
  profile.best_score = profile.scores[profile.best_node];
  return profile;
}

}  // namespace corekit
