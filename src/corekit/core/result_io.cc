#include "corekit/core/result_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace corekit {

namespace {

constexpr char kDecompositionMagic[4] = {'C', 'K', 'C', '1'};

// FNV-1a over a vector of ids, the integrity check for snapshots.
std::uint64_t Checksum(const std::vector<VertexId>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const VertexId v : values) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

Status WriteCoreDecomposition(const CoreDecomposition& cores,
                              const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  FileCloser closer{file};
  const std::uint64_t n = cores.coreness.size();
  const std::uint64_t kmax = cores.kmax;
  const std::uint64_t checksum =
      Checksum(cores.coreness) ^ Checksum(cores.peel_order);
  bool ok = std::fwrite(kDecompositionMagic, 1, 4, file) == 4;
  ok = ok && std::fwrite(&n, sizeof(n), 1, file) == 1;
  ok = ok && std::fwrite(&kmax, sizeof(kmax), 1, file) == 1;
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, file) == 1;
  ok = ok && (n == 0 || std::fwrite(cores.coreness.data(), sizeof(VertexId),
                                    n, file) == n);
  ok = ok && (cores.peel_order.empty() ||
              std::fwrite(cores.peel_order.data(), sizeof(VertexId),
                          cores.peel_order.size(),
                          file) == cores.peel_order.size());
  if (!ok) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

Result<CoreDecomposition> ReadCoreDecomposition(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  FileCloser closer{file};
  char magic[4];
  if (std::fread(magic, 1, 4, file) != 4 ||
      std::memcmp(magic, kDecompositionMagic, 4) != 0) {
    return Status::Corruption("'" + path +
                              "' is not a corekit decomposition snapshot");
  }
  std::uint64_t n = 0;
  std::uint64_t kmax = 0;
  std::uint64_t checksum = 0;
  if (std::fread(&n, sizeof(n), 1, file) != 1 ||
      std::fread(&kmax, sizeof(kmax), 1, file) != 1 ||
      std::fread(&checksum, sizeof(checksum), 1, file) != 1) {
    return Status::Corruption("truncated header in '" + path + "'");
  }
  if (n > std::numeric_limits<VertexId>::max()) {
    return Status::Corruption("vertex count overflow in '" + path + "'");
  }
  CoreDecomposition cores;
  cores.kmax = static_cast<VertexId>(kmax);
  cores.coreness.resize(n);
  cores.peel_order.resize(n);
  if (n > 0 && (std::fread(cores.coreness.data(), sizeof(VertexId), n,
                           file) != n ||
                std::fread(cores.peel_order.data(), sizeof(VertexId), n,
                           file) != n)) {
    return Status::Corruption("truncated payload in '" + path + "'");
  }
  if ((Checksum(cores.coreness) ^ Checksum(cores.peel_order)) != checksum) {
    return Status::Corruption("checksum mismatch in '" + path + "'");
  }
  return cores;
}

Status WriteCoreSetProfileCsv(const CoreSetProfile& profile,
                              const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  FileCloser closer{file};
  const bool triangles =
      !profile.primaries.empty() && profile.primaries[0].has_triangles;
  std::fprintf(file, "k,num_vertices,internal_edges,boundary_edges%s,score\n",
               triangles ? ",triangles,triplets" : "");
  for (std::size_t k = 0; k < profile.scores.size(); ++k) {
    const PrimaryValues& pv = profile.primaries[k];
    std::fprintf(file, "%zu,%llu,%llu,%llu", k,
                 static_cast<unsigned long long>(pv.num_vertices),
                 static_cast<unsigned long long>(pv.InternalEdges()),
                 static_cast<unsigned long long>(pv.boundary_edges));
    if (triangles) {
      std::fprintf(file, ",%llu,%llu",
                   static_cast<unsigned long long>(pv.triangles),
                   static_cast<unsigned long long>(pv.triplets));
    }
    std::fprintf(file, ",%.17g\n", profile.scores[k]);
  }
  if (std::ferror(file)) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::OK();
}

Status WriteSingleCoreProfileCsv(const SingleCoreProfile& profile,
                                 const CoreForest& forest,
                                 const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  FileCloser closer{file};
  std::fprintf(file,
               "node,coreness,core_size,num_vertices,internal_edges,"
               "boundary_edges,score\n");
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const PrimaryValues& pv = profile.primaries[i];
    std::fprintf(file, "%u,%u,%u,%llu,%llu,%llu,%.17g\n", i,
                 forest.node(i).coreness, forest.CoreSize(i),
                 static_cast<unsigned long long>(pv.num_vertices),
                 static_cast<unsigned long long>(pv.InternalEdges()),
                 static_cast<unsigned long long>(pv.boundary_edges),
                 profile.scores[i]);
  }
  if (std::ferror(file)) {
    return Status::IoError("write error on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace corekit
