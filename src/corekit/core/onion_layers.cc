#include "corekit/core/onion_layers.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

OnionDecomposition ComputeOnionDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  OnionDecomposition result;
  result.layer.assign(n, 0);
  result.coreness.assign(n, 0);
  if (n == 0) return result;

  std::vector<VertexId> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);
  std::vector<bool> removed(n, false);
  VertexId remaining = n;
  VertexId threshold = 0;
  VertexId current_layer = 0;

  std::vector<VertexId> wave;
  while (remaining > 0) {
    // The threshold never decreases: it is the smallest alive degree the
    // first time a shell is entered, and stays at the shell's k until the
    // shell is exhausted.
    VertexId min_degree = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v]) min_degree = std::min(min_degree, degree[v]);
    }
    threshold = std::max(threshold, min_degree);

    // One wave: everything at or below the threshold goes simultaneously.
    wave.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && degree[v] <= threshold) wave.push_back(v);
    }
    COREKIT_DCHECK(!wave.empty());
    ++current_layer;
    for (const VertexId v : wave) {
      removed[v] = true;
      result.layer[v] = current_layer;
      result.coreness[v] = threshold;
      --remaining;
    }
    for (const VertexId v : wave) {
      for (const VertexId u : graph.Neighbors(v)) {
        if (!removed[u]) --degree[u];
      }
    }
    result.kmax = std::max(result.kmax, threshold);
  }
  result.num_layers = current_layer;
  return result;
}

}  // namespace corekit
