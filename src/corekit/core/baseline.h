// Baseline algorithms (Sections III-A and IV-B of the paper).
//
// These are the comparators for Figures 7 and 8: after one core
// decomposition (plus, for Problem 2, one forest construction) they
// recompute every k-core (set)'s score *from scratch* — iterating the
// subgraph's vertices and edges per k — rather than incrementally.  They
// are polynomial (O(sum_k |V(C_k)| + q_k)) but asymptotically and
// practically far slower than Algorithms 2/3/5, which is exactly the gap
// the paper's runtime experiments measure.
//
// Outputs are bit-identical in structure to the optimal algorithms'
// profiles so the tests can assert exact score equality.

#pragma once

#include <vector>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/metrics.h"

namespace corekit {

// Section III-A: per-k from-scratch scoring of every k-core set.  `cores`
// must be the decomposition of `graph`.
CoreSetProfile BaselineFindBestCoreSet(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       Metric metric);

// Section IV-B: per-core from-scratch scoring of every connected k-core.
// Scores are indexed by forest node id (same shape as FindBestSingleCore).
SingleCoreProfile BaselineFindBestSingleCore(const Graph& graph,
                                             const CoreDecomposition& cores,
                                             const CoreForest& forest,
                                             Metric metric);

// From-scratch primary values of the k-core set C_k (used by the baseline
// and exposed for tests).  O(sum of degrees in C_k); triangles add the
// per-k triangle enumeration.
PrimaryValues ScratchCoreSetPrimaries(const Graph& graph,
                                      const CoreDecomposition& cores,
                                      VertexId k, bool with_triangles);

// From-scratch primary values of one connected k-core given its vertex
// list and coreness threshold k.
PrimaryValues ScratchSingleCorePrimaries(const Graph& graph,
                                         const CoreDecomposition& cores,
                                         const std::vector<VertexId>& core,
                                         VertexId k, bool with_triangles);

}  // namespace corekit
