// Definition-driven reference implementations ("naive oracles").
//
// Every optimized component of corekit is validated against an
// implementation that follows the paper's definitions as literally as
// possible, with no shared code or data structures.  These run in
// polynomial-but-slow time and exist purely for the test suite and for
// small-scale debugging; nothing in the library's production paths calls
// them.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/core/primary_values.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// Coreness by literal Definition 3: for k = 1, 2, ... repeatedly delete
// vertices of degree < k until stable; survivors have coreness >= k.
// O(kmax * n * d).
std::vector<VertexId> NaiveCoreness(const Graph& graph);

// Vertex mask of the k-core set by literal Definition 1/2 (iterated
// deletion below threshold k).
std::vector<bool> NaiveCoreSetMask(const Graph& graph, VertexId k);

// All connected k-cores for a fixed k, each as a sorted vertex list.
std::vector<std::vector<VertexId>> NaiveKCores(const Graph& graph, VertexId k);

// Primary values of the subgraph induced by `mask`, by direct counting
// (including brute-force triangle and triplet enumeration).
PrimaryValues NaivePrimaryValues(const Graph& graph,
                                 const std::vector<bool>& mask);

// Score of the k-core set C_k, fully independently of the optimized path.
double NaiveCoreSetScore(const Graph& graph, VertexId k, Metric metric);

// Brute-force triangle count of the whole graph (enumerate edges, count
// common neighbors).  O(m * d).
std::uint64_t NaiveTriangleCount(const Graph& graph);

}  // namespace corekit
