// Core decomposition: coreness of every vertex (Definition 3/4 of the
// paper).
//
// The production path is the Batagelj–Zaversnik bin-sort peeling algorithm
// [7], O(m) time and O(n) working space.  A direct-from-definition
// reference implementation (recursively delete minimum-degree vertices,
// recomputing degrees) lives in naive_oracle.h and is used by the tests to
// validate this one.

#pragma once

#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// The output of a core decomposition.
struct CoreDecomposition {
  // coreness[v] = max{k : v is in the k-core set}; size n.
  std::vector<VertexId> coreness;
  // Graph degeneracy: the largest k with a non-empty k-core (0 for the
  // empty graph).
  VertexId kmax = 0;
  // The peeling order (a degeneracy ordering): vertices in the order the
  // min-degree peel removed them.  Every vertex has at most kmax
  // neighbors later in this order — the property the maximum-clique
  // branch-and-bound exploits.
  std::vector<VertexId> peel_order;

  // Number of vertices with coreness exactly k (the k-shell H_k),
  // for k in [0, kmax].
  std::vector<VertexId> ShellSizes() const;

  // Number of vertices with coreness >= k (i.e. |V(C_k)|), for k in
  // [0, kmax + 1]; the last entry is 0.
  std::vector<VertexId> CoreSetSizes() const;
};

// Batagelj–Zaversnik peeling.  O(m) time, O(n) extra space.
CoreDecomposition ComputeCoreDecomposition(const Graph& graph);

// Rebuilds a full CoreDecomposition — including a valid degeneracy
// peel_order — from a coreness array already known to be exact (e.g.
// maintained incrementally by dynamic::DynamicCoreIndex).  O(n + m),
// but skips the bin-sort bookkeeping of the full peel: shells are
// processed in ascending k, and a vertex of shell k is peeled as soon
// as its count of unpeeled >=k-coreness neighbors drops to k.  By
// Definition 3 every shell-k vertex starts with at least k such
// neighbors, so the first vertex peeled in each shell has exactly k
// later neighbors — making the emitted order a degeneracy ordering
// that replays to the same coreness.  `coreness.size()` must equal
// `graph.NumVertices()`; a coreness array that is not exact for
// `graph` is a CHECK failure.
CoreDecomposition DecompositionFromCoreness(const Graph& graph,
                                            std::vector<VertexId> coreness);

// Membership mask of the k-core set C_k (vertices with coreness >= k).
std::vector<bool> CoreSetMask(const CoreDecomposition& cores, VertexId k);

}  // namespace corekit
