#include "corekit/core/metrics.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

const char* MetricShortName(Metric metric) {
  switch (metric) {
    case Metric::kAverageDegree:
      return "ad";
    case Metric::kInternalDensity:
      return "den";
    case Metric::kCutRatio:
      return "cr";
    case Metric::kConductance:
      return "con";
    case Metric::kModularity:
      return "mod";
    case Metric::kClusteringCoefficient:
      return "cc";
    case Metric::kSeparability:
      return "sep";
    case Metric::kExpansion:
      return "exp";
    case Metric::kNormalizedAssociation:
      return "nassoc";
  }
  return "?";
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kAverageDegree:
      return "average degree";
    case Metric::kInternalDensity:
      return "internal density";
    case Metric::kCutRatio:
      return "cut ratio";
    case Metric::kConductance:
      return "conductance";
    case Metric::kModularity:
      return "modularity";
    case Metric::kClusteringCoefficient:
      return "clustering coefficient";
    case Metric::kSeparability:
      return "separability";
    case Metric::kExpansion:
      return "expansion (negated)";
    case Metric::kNormalizedAssociation:
      return "normalized association";
  }
  return "?";
}

std::optional<Metric> ParseMetric(const std::string& name) {
  for (const Metric metric : kExtendedMetrics) {
    if (name == MetricShortName(metric) || name == MetricName(metric)) {
      return metric;
    }
  }
  for (const Metric metric : kAllMetrics) {
    if (name == MetricShortName(metric) || name == MetricName(metric)) {
      return metric;
    }
  }
  return std::nullopt;
}

bool MetricNeedsTriangles(Metric metric) {
  return metric == Metric::kClusteringCoefficient;
}

namespace {

double AverageDegree(const PrimaryValues& pv) {
  if (pv.num_vertices == 0) return 0.0;
  return static_cast<double>(pv.internal_edges_x2) /
         static_cast<double>(pv.num_vertices);
}

double InternalDensity(const PrimaryValues& pv) {
  if (pv.num_vertices < 2) return 0.0;
  return static_cast<double>(pv.internal_edges_x2) /
         (static_cast<double>(pv.num_vertices) *
          static_cast<double>(pv.num_vertices - 1));
}

double CutRatio(const PrimaryValues& pv, const GraphGlobals& globals) {
  const std::uint64_t outside = globals.num_vertices - pv.num_vertices;
  const double slots =
      static_cast<double>(pv.num_vertices) * static_cast<double>(outside);
  if (slots == 0.0) return 1.0;  // S empty or S = V: no boundary slots
  return 1.0 - static_cast<double>(pv.boundary_edges) / slots;
}

double Conductance(const PrimaryValues& pv) {
  const double volume = static_cast<double>(pv.internal_edges_x2) +
                        static_cast<double>(pv.boundary_edges);
  if (volume == 0.0) return 1.0;
  return 1.0 - static_cast<double>(pv.boundary_edges) / volume;
}

// Modularity of the two-block partition {S, V \ S} (Newman–Girvan, the
// paper's formula instantiated with the k-core side and its complement as
// the communities).
double Modularity(const PrimaryValues& pv, const GraphGlobals& globals) {
  const double m = static_cast<double>(globals.num_edges);
  if (m == 0.0) return 0.0;
  const double m_s = static_cast<double>(pv.internal_edges_x2) / 2.0;
  const double b_s = static_cast<double>(pv.boundary_edges);
  const double m_rest = m - m_s - b_s;
  const double vol_s = (2.0 * m_s + b_s) / (2.0 * m);
  const double vol_rest = (2.0 * m_rest + b_s) / (2.0 * m);
  const double q_s = m_s / m - vol_s * vol_s;
  const double q_rest = m_rest / m - vol_rest * vol_rest;
  return q_s + q_rest;
}

// m(S)/b(S); a perfectly separated community (b = 0) scores its own
// internal edge count, which dominates any finite ratio of the same m.
double Separability(const PrimaryValues& pv) {
  const double m_s = static_cast<double>(pv.internal_edges_x2) / 2.0;
  if (pv.boundary_edges == 0) return m_s;
  return m_s / static_cast<double>(pv.boundary_edges);
}

// Negated boundary edges per member, so that "maximize" means "fewest
// boundary edges per vertex".  Empty S scores 0.
double ExpansionGoodness(const PrimaryValues& pv) {
  if (pv.num_vertices == 0) return 0.0;
  return -static_cast<double>(pv.boundary_edges) /
         static_cast<double>(pv.num_vertices);
}

// m(S) / (m(S) + b(S)); 1 when S captures all volume it touches.  Empty
// volume scores 1 (nothing escapes).
double NormalizedAssociation(const PrimaryValues& pv) {
  const double m_s = static_cast<double>(pv.internal_edges_x2) / 2.0;
  const double total = m_s + static_cast<double>(pv.boundary_edges);
  if (total == 0.0) return 1.0;
  return m_s / total;
}

double ClusteringCoefficient(const PrimaryValues& pv) {
  COREKIT_CHECK(pv.has_triangles)
      << "clustering coefficient needs triangle/triplet primary values";
  if (pv.triplets == 0) return 0.0;
  return 3.0 * static_cast<double>(pv.triangles) /
         static_cast<double>(pv.triplets);
}

}  // namespace

double EvaluateMetric(Metric metric, const PrimaryValues& values,
                      const GraphGlobals& globals) {
  switch (metric) {
    case Metric::kAverageDegree:
      return AverageDegree(values);
    case Metric::kInternalDensity:
      return InternalDensity(values);
    case Metric::kCutRatio:
      return CutRatio(values, globals);
    case Metric::kConductance:
      return Conductance(values);
    case Metric::kModularity:
      return Modularity(values, globals);
    case Metric::kClusteringCoefficient:
      return ClusteringCoefficient(values);
    case Metric::kSeparability:
      return Separability(values);
    case Metric::kExpansion:
      return ExpansionGoodness(values);
    case Metric::kNormalizedAssociation:
      return NormalizedAssociation(values);
  }
  COREKIT_LOG(FATAL) << "unknown metric " << static_cast<int>(metric);
  return 0.0;
}

MetricFn MetricFunction(Metric metric) {
  return [metric](const PrimaryValues& pv, const GraphGlobals& globals) {
    return EvaluateMetric(metric, pv, globals);
  };
}

}  // namespace corekit
