#include "corekit/core/primary_values.h"

#include <sstream>
#include <string>

namespace corekit {

// Definitions live here (out of line) to keep the header minimal.
std::string ToString(const PrimaryValues& pv) {
  std::ostringstream os;
  os << "{n=" << pv.num_vertices << " m=" << pv.internal_edges_x2 / 2
     << " b=" << pv.boundary_edges;
  if (pv.has_triangles) {
    os << " tri=" << pv.triangles << " trip=" << pv.triplets;
  }
  os << "}";
  return os.str();
}

bool operator==(const PrimaryValues& a, const PrimaryValues& b) {
  return a.num_vertices == b.num_vertices &&
         a.internal_edges_x2 == b.internal_edges_x2 &&
         a.boundary_edges == b.boundary_edges &&
         (!a.has_triangles || !b.has_triangles ||
          (a.triangles == b.triangles && a.triplets == b.triplets));
}

}  // namespace corekit
