#include "corekit/core/hierarchy_export.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "corekit/util/logging.h"
#include "corekit/util/table_printer.h"

namespace corekit {

std::string CoreForestToDot(const CoreForest& forest,
                            const HierarchyDotOptions& options) {
  COREKIT_CHECK(options.scores.empty() ||
                options.scores.size() == forest.NumNodes())
      << "scores must be empty or one per forest node";

  std::ostringstream os;
  os << "digraph " << options.title << " {\n";
  os << "  rankdir=TB;\n";
  os << "  node [shape=box, style=rounded];\n";
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const CoreForest::Node& node = forest.node(i);
    if (forest.CoreSize(i) < options.min_core_size) continue;
    os << "  n" << i << " [label=\"k=" << node.coreness
       << "\\nshell=" << node.vertices.size()
       << "\\ncore=" << forest.CoreSize(i);
    if (!options.scores.empty()) {
      os << "\\nscore=" << TablePrinter::FormatDouble(options.scores[i], 4);
    }
    os << "\"];\n";
  }
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    if (forest.CoreSize(i) < options.min_core_size) continue;
    const CoreForest::NodeId parent = forest.node(i).parent;
    if (parent == CoreForest::kNoNode) continue;
    if (forest.CoreSize(parent) < options.min_core_size) continue;
    os << "  n" << parent << " -> n" << i << ";\n";
  }
  os << "}\n";
  return os.str();
}

Status WriteCoreForestDot(const CoreForest& forest, const std::string& path,
                          const HierarchyDotOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + path + "': " +
                           std::strerror(errno));
  }
  const std::string dot = CoreForestToDot(forest, options);
  const bool ok = std::fwrite(dot.data(), 1, dot.size(), file) == dot.size();
  std::fclose(file);
  if (!ok) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

}  // namespace corekit
