#include "corekit/core/metric_combination.h"

#include <algorithm>
#include <numeric>

#include "corekit/util/logging.h"

namespace corekit {

std::vector<double> MinMaxNormalize(std::span<const double> scores) {
  std::vector<double> normalized(scores.begin(), scores.end());
  if (normalized.empty()) return normalized;
  const auto [lo_it, hi_it] =
      std::minmax_element(normalized.begin(), normalized.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  if (hi == lo) {
    std::fill(normalized.begin(), normalized.end(), 0.0);
    return normalized;
  }
  for (double& value : normalized) value = (value - lo) / (hi - lo);
  return normalized;
}

namespace {

CombinedProfile FinishProfile(std::vector<double> scores) {
  CombinedProfile combined;
  combined.scores = std::move(scores);
  combined.best_k = ArgmaxLargestK(combined.scores);
  combined.best_score = combined.scores[combined.best_k];
  return combined;
}

}  // namespace

CombinedProfile CombineWeighted(std::span<const CoreSetProfile> profiles,
                                std::span<const double> weights) {
  COREKIT_CHECK(!profiles.empty());
  COREKIT_CHECK_EQ(profiles.size(), weights.size());
  const std::size_t levels = profiles.front().scores.size();
  double total_weight = 0.0;
  for (const double w : weights) {
    COREKIT_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  COREKIT_CHECK_GT(total_weight, 0.0);

  std::vector<double> combined(levels, 0.0);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    COREKIT_CHECK_EQ(profiles[i].scores.size(), levels)
        << "profiles must come from the same graph";
    const std::vector<double> normalized =
        MinMaxNormalize(profiles[i].scores);
    for (std::size_t k = 0; k < levels; ++k) {
      combined[k] += weights[i] / total_weight * normalized[k];
    }
  }
  return FinishProfile(std::move(combined));
}

CombinedProfile CombineBorda(std::span<const CoreSetProfile> profiles) {
  COREKIT_CHECK(!profiles.empty());
  const std::size_t levels = profiles.front().scores.size();
  std::vector<double> combined(levels, 0.0);
  std::vector<std::size_t> order(levels);
  for (const CoreSetProfile& profile : profiles) {
    COREKIT_CHECK_EQ(profile.scores.size(), levels);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&profile](std::size_t a, std::size_t b) {
                       return profile.scores[a] > profile.scores[b];
                     });
    // Competition ranking: ties share the best position of their block.
    std::size_t position = 0;
    for (std::size_t i = 0; i < levels; ++i) {
      if (i > 0 &&
          profile.scores[order[i]] != profile.scores[order[i - 1]]) {
        position = i;
      }
      combined[order[i]] +=
          static_cast<double>(levels - 1 - position);
    }
  }
  return FinishProfile(std::move(combined));
}

}  // namespace corekit
