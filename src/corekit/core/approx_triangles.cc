#include "corekit/core/approx_triangles.h"

#include <algorithm>

#include "corekit/core/triangle_scoring.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

ApproxTriangleStats EstimateTriangles(const Graph& graph,
                                      std::uint32_t samples,
                                      std::uint64_t seed) {
  ApproxTriangleStats stats;
  stats.samples = samples;
  const VertexId n = graph.NumVertices();

  // Cumulative wedge counts for proportional center sampling.
  std::vector<std::uint64_t> cumulative(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    cumulative[v + 1] = cumulative[v] + Choose2(graph.Degree(v));
  }
  stats.triplets = cumulative[n];
  if (stats.triplets == 0 || samples == 0) return stats;

  Rng rng(seed);
  std::uint64_t closed = 0;
  for (std::uint32_t s = 0; s < samples; ++s) {
    // Pick a wedge index uniformly; binary-search its center.
    const std::uint64_t target = rng.NextBounded(stats.triplets);
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(),
                                     target);
    const auto center = static_cast<VertexId>(
        std::distance(cumulative.begin(), it) - 1);
    const auto nbrs = graph.Neighbors(center);
    COREKIT_DCHECK(nbrs.size() >= 2);
    // Uniform unordered neighbor pair.
    const auto i = static_cast<std::size_t>(rng.NextBounded(nbrs.size()));
    auto j = static_cast<std::size_t>(rng.NextBounded(nbrs.size() - 1));
    if (j >= i) ++j;
    closed += graph.HasEdge(nbrs[i], nbrs[j]) ? 1u : 0u;
  }
  stats.closed_fraction =
      static_cast<double>(closed) / static_cast<double>(samples);
  stats.triangles =
      stats.closed_fraction * static_cast<double>(stats.triplets) / 3.0;
  return stats;
}

}  // namespace corekit
