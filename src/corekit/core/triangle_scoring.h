// Rank-ordered triangle counting (the O(m^1.5) kernel of Algorithm 3).
//
// Every triangle is attributed to its lowest-rank vertex: for a vertex v,
// the triangles {v, u, w} with u, w in N(v, >r) are found by marking
// N(v, >r) and scanning N(u, >r) for marked vertices.  Because the vertex
// rank follows a degeneracy ordering, |N(u, >r)| <= 2*sqrt(m) (Lemma in
// Section III-D), which gives the O(m^1.5) bound.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/vertex_ordering.h"

namespace corekit {

// Scratch space reused across per-vertex triangle counting calls.
// A plain byte mask; the owner must size it to NumVertices() zeros once,
// and it is always returned to all-zeros.
using TriangleScratch = std::vector<std::uint8_t>;

// Number of triangles whose lowest-rank vertex is v.  `scratch` must be
// all-zeros of size n; it is restored before returning.
std::uint64_t CountTrianglesAtVertex(const OrderedGraph& ordered, VertexId v,
                                     TriangleScratch& scratch);

// Total number of triangles in the graph, O(m^1.5).
std::uint64_t CountTriangles(const OrderedGraph& ordered);

// Total number of triplets (paths of length two) in the graph:
// sum_v C(deg(v), 2).  O(n).
std::uint64_t CountTriplets(const Graph& graph);

// C(x, 2) helper used by all triplet computations.
inline std::uint64_t Choose2(std::uint64_t x) { return x * (x - 1) / 2; }

}  // namespace corekit
