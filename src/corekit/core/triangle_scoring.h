// Rank-ordered triangle counting (the O(m^1.5) kernel of Algorithm 3).
//
// Every triangle is attributed to its lowest-rank vertex: for a vertex v,
// the triangles {v, u, w} with u, w in N(v, >r) are found by marking
// N(v, >r) and scanning N(u, >r) for marked vertices.  Because the vertex
// rank follows a degeneracy ordering, |N(u, >r)| <= 2*sqrt(m) (Lemma in
// Section III-D), which gives the O(m^1.5) bound.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/vertex_ordering.h"

namespace corekit {

// Scratch space reused across per-vertex triangle counting calls.
// A plain byte mask; the owner must size it to NumVertices() zeros once,
// and it is always returned to all-zeros.
using TriangleScratch = std::vector<std::uint8_t>;

// Number of triangles whose lowest-rank vertex is v.  `scratch` must be
// all-zeros of size n; it is restored before returning.
//
// This is the scratch-mark reference kernel.  It stays the test oracle
// for the intersection overload below; the two must agree per vertex.
std::uint64_t CountTrianglesAtVertex(const OrderedGraph& ordered, VertexId v,
                                     TriangleScratch& scratch);

// Scratch-free intersection form of the same count:
//   sum over u in N(v, >r) of |ranks(N(v, >r)) ∩ ranks(N(u, >r))|.
// Rank slices are strictly increasing (vertex_ordering.h), so the sum
// runs on the shared sorted-set intersection kernel (corekit/simd/),
// which dispatches to AVX2 when the CPU has it.  Identical result to
// the scratch form — every w counted there satisfies w ∈ N(v, >r) ∩
// N(u, >r), adjacency is preserved by the rank bijection, and
// rank(u) ∉ ranks(N(u, >r)) because the graph is self-loop-free —
// with the same O(m^1.5) bound.
std::uint64_t CountTrianglesAtVertex(const OrderedGraph& ordered, VertexId v);

// Total number of triangles in the graph, O(m^1.5).
std::uint64_t CountTriangles(const OrderedGraph& ordered);

// Total number of triplets (paths of length two) in the graph:
// sum_v C(deg(v), 2).  O(n).
std::uint64_t CountTriplets(const Graph& graph);

// C(x, 2) helper used by all triplet computations.
inline std::uint64_t Choose2(std::uint64_t x) { return x * (x - 1) / 2; }

}  // namespace corekit
