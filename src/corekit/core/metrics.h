// Community scoring metrics (Section II-C of the paper).
//
// Six built-in metrics are provided; all of them are functions of the
// primary values of the evaluated subgraph S plus two graph-level globals
// (n for cut ratio, m for modularity):
//
//   average degree         2 m(S) / n(S)
//   internal density       2 m(S) / (n(S) (n(S)-1))
//   cut ratio              1 - b(S) / (n(S) (n - n(S)))
//   conductance            1 - b(S) / (2 m(S) + b(S))
//   modularity             two-block partition {S, V \ S} modularity
//   clustering coefficient 3 D(S) / t(S)
//
// New metrics (Section VI-A) plug in as any callable with the
// MetricFn signature; every scoring algorithm in corekit accepts either a
// built-in Metric or a custom MetricFn.
//
// Degenerate-subgraph conventions (documented per accessor below) follow
// the natural limits so that score profiles are total functions of k.

#pragma once

#include <functional>
#include <optional>
#include <string>

#include "corekit/core/primary_values.h"

namespace corekit {

enum class Metric : int {
  kAverageDegree = 0,
  kInternalDensity = 1,
  kCutRatio = 2,
  kConductance = 3,
  kModularity = 4,
  kClusteringCoefficient = 5,
  // --- Extended metrics (Section VI-A: further functions of the same
  // primary values, from the Yang–Leskovec catalogue [63]). -------------
  // Separability m(S) / b(S): how much of the community's volume stays
  // inside.  Defined as m(S) when b(S) = 0 (perfectly separated).
  kSeparability = 6,
  // Expansion goodness -b(S) / n(S): expansion measures boundary edges
  // per member (lower is better), so the maximized form is its negation.
  kExpansion = 7,
  // Normalized association m(S) / (m(S) + b(S)): the complement of the
  // normalized-cut contribution of S.
  kNormalizedAssociation = 8,
};

// The paper's six metrics, in its order (ad, den, cr, con, mod, cc).
inline constexpr Metric kAllMetrics[] = {
    Metric::kAverageDegree,  Metric::kInternalDensity,
    Metric::kCutRatio,       Metric::kConductance,
    Metric::kModularity,     Metric::kClusteringCoefficient,
};

// The Section VI-A extensions.
inline constexpr Metric kExtendedMetrics[] = {
    Metric::kSeparability,
    Metric::kExpansion,
    Metric::kNormalizedAssociation,
};

// Paper abbreviation ("ad", "den", "cr", "con", "mod", "cc").
const char* MetricShortName(Metric metric);
// Full name ("average degree", ...).
const char* MetricName(Metric metric);
// Parses either form; empty optional on unknown names.
std::optional<Metric> ParseMetric(const std::string& name);

// True if the metric needs triangle/triplet primary values (and hence the
// O(m^1.5) Algorithm 3 path instead of the O(n) Algorithm 2 path).
bool MetricNeedsTriangles(Metric metric);

// Evaluates a built-in metric from primary values.
//
// Conventions for degenerate inputs:
//   * average degree of an empty S is 0;
//   * internal density needs n(S) >= 2, else 0;
//   * cut ratio is 1 when S = V or S is empty (no boundary slots);
//   * conductance is 1 when 2 m(S) + b(S) = 0;
//   * clustering coefficient is 0 when t(S) = 0;
//   * modularity of an empty graph is 0.
double EvaluateMetric(Metric metric, const PrimaryValues& values,
                      const GraphGlobals& globals);

// Custom-metric extension point.
using MetricFn =
    std::function<double(const PrimaryValues&, const GraphGlobals&)>;

// Wraps a built-in metric as a MetricFn.
MetricFn MetricFunction(Metric metric);

}  // namespace corekit
