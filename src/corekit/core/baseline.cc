#include "corekit/core/baseline.h"

#include <cstdint>

#include "corekit/core/triangle_scoring.h"

namespace corekit {

namespace {

// rank(u) > rank(v) per Definition 5, recomputed from the decomposition
// (the baseline does not build the Algorithm 1 index).
bool RankGreater(const CoreDecomposition& cores, VertexId u, VertexId v) {
  return cores.coreness[u] != cores.coreness[v]
             ? cores.coreness[u] > cores.coreness[v]
             : u > v;
}

// Triangles of the subgraph induced by {u : c(u) >= k} that contain `v`
// as their lowest-rank vertex.  `scratch` as in triangle_scoring.h.
std::uint64_t ScratchTrianglesAtVertex(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       VertexId k, VertexId v,
                                       TriangleScratch& scratch) {
  std::uint64_t triangles = 0;
  for (const VertexId u : graph.Neighbors(v)) {
    if (cores.coreness[u] >= k && RankGreater(cores, u, v)) scratch[u] = 1;
  }
  for (const VertexId u : graph.Neighbors(v)) {
    if (cores.coreness[u] < k || !RankGreater(cores, u, v)) continue;
    for (const VertexId w : graph.Neighbors(u)) {
      if (cores.coreness[w] >= k && RankGreater(cores, w, u)) {
        triangles += scratch[w];
      }
    }
  }
  for (const VertexId u : graph.Neighbors(v)) scratch[u] = 0;
  return triangles;
}

}  // namespace

PrimaryValues ScratchCoreSetPrimaries(const Graph& graph,
                                      const CoreDecomposition& cores,
                                      VertexId k, bool with_triangles) {
  PrimaryValues pv;
  pv.has_triangles = with_triangles;
  const VertexId n = graph.NumVertices();
  TriangleScratch scratch;
  if (with_triangles) scratch.assign(n, 0);

  for (VertexId v = 0; v < n; ++v) {
    if (cores.coreness[v] < k) continue;
    ++pv.num_vertices;
    std::uint64_t inside = 0;
    for (const VertexId u : graph.Neighbors(v)) {
      if (cores.coreness[u] >= k) {
        ++inside;
      } else {
        ++pv.boundary_edges;
      }
    }
    pv.internal_edges_x2 += inside;
    if (with_triangles) {
      pv.triplets += Choose2(inside);
      pv.triangles += ScratchTrianglesAtVertex(graph, cores, k, v, scratch);
    }
  }
  return pv;
}

PrimaryValues ScratchSingleCorePrimaries(const Graph& graph,
                                         const CoreDecomposition& cores,
                                         const std::vector<VertexId>& core,
                                         VertexId k, bool with_triangles) {
  PrimaryValues pv;
  pv.has_triangles = with_triangles;
  TriangleScratch scratch;
  if (with_triangles) scratch.assign(graph.NumVertices(), 0);

  // A neighbor with coreness >= k of a core member is itself a member
  // (adjacent and in C_k implies same connected k-core), so membership
  // tests reduce to coreness comparisons.
  for (const VertexId v : core) {
    COREKIT_DCHECK(cores.coreness[v] >= k);
    ++pv.num_vertices;
    std::uint64_t inside = 0;
    for (const VertexId u : graph.Neighbors(v)) {
      if (cores.coreness[u] >= k) {
        ++inside;
      } else {
        ++pv.boundary_edges;
      }
    }
    pv.internal_edges_x2 += inside;
    if (with_triangles) {
      pv.triplets += Choose2(inside);
      pv.triangles += ScratchTrianglesAtVertex(graph, cores, k, v, scratch);
    }
  }
  return pv;
}

CoreSetProfile BaselineFindBestCoreSet(const Graph& graph,
                                       const CoreDecomposition& cores,
                                       Metric metric) {
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  const bool with_triangles = MetricNeedsTriangles(metric);

  CoreSetProfile profile;
  profile.primaries.reserve(static_cast<std::size_t>(cores.kmax) + 1);
  profile.scores.reserve(static_cast<std::size_t>(cores.kmax) + 1);
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    profile.primaries.push_back(
        ScratchCoreSetPrimaries(graph, cores, k, with_triangles));
    profile.scores.push_back(
        EvaluateMetric(metric, profile.primaries.back(), globals));
  }
  profile.best_k = ArgmaxLargestK(profile.scores);
  profile.best_score = profile.scores[profile.best_k];
  return profile;
}

SingleCoreProfile BaselineFindBestSingleCore(const Graph& graph,
                                             const CoreDecomposition& cores,
                                             const CoreForest& forest,
                                             Metric metric) {
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  const bool with_triangles = MetricNeedsTriangles(metric);

  SingleCoreProfile profile;
  const CoreForest::NodeId count = forest.NumNodes();
  profile.primaries.reserve(count);
  profile.scores.reserve(count);
  for (CoreForest::NodeId i = 0; i < count; ++i) {
    const std::vector<VertexId> members = forest.CoreVertices(i);
    profile.primaries.push_back(ScratchSingleCorePrimaries(
        graph, cores, members, forest.node(i).coreness, with_triangles));
    profile.scores.push_back(
        EvaluateMetric(metric, profile.primaries.back(), globals));
  }
  COREKIT_CHECK(count > 0) << "empty graph has no k-core";
  profile.best_node = 0;
  for (CoreForest::NodeId i = 1; i < count; ++i) {
    if (profile.scores[i] > profile.scores[profile.best_node]) {
      profile.best_node = i;
    }
  }
  profile.best_k = forest.node(profile.best_node).coreness;
  profile.best_score = profile.scores[profile.best_node];
  return profile;
}

}  // namespace corekit
