// The core forest (Section IV-A of the paper) and its LCPS construction
// (Algorithm 4, Matula–Beck level component priority search).
//
// Every connected k-core S with a non-empty shell part S ∩ H_k owns a tree
// node holding exactly those shell vertices (Definition 6); a node's
// parent is the next coarser core that directly contains it
// (Definition 7).  The forest has one tree per connected component of the
// graph and occupies O(n) space.
//
// Construction runs LCPS with a bucket priority queue: O(m) time.  After
// the search the forest is compressed — nodes holding no vertices are
// spliced out (their children re-attach to the nearest vertex-bearing
// ancestor) — and the remaining nodes are sorted by descending coreness,
// the processing order Algorithm 5 requires.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

class CoreForest {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  struct Node {
    // Coreness of the k-core this node represents.
    VertexId coreness = 0;
    // Parent node (next coarser containing core), kNoNode for tree roots.
    NodeId parent = kNoNode;
    // Child nodes (finer cores directly contained in this one).
    std::vector<NodeId> children;
    // The shell part of the core: vertices of the k-core with coreness
    // exactly `coreness` (Definition 6).  Non-empty after compression.
    std::vector<VertexId> vertices;
  };

  // Builds the forest with LCPS.  `cores` must be the decomposition of
  // `graph`.
  CoreForest(const Graph& graph, const CoreDecomposition& cores);

  // Nodes sorted by descending coreness: children always precede parents,
  // so a single forward scan is a valid bottom-up (dense-to-coarse)
  // traversal.
  const std::vector<Node>& nodes() const { return nodes_; }
  NodeId NumNodes() const { return static_cast<NodeId>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[id]; }

  // The node whose core first introduces vertex v, i.e. the node of v's
  // c(v)-core.
  NodeId NodeOfVertex(VertexId v) const { return node_of_vertex_[v]; }

  // All vertices of the k-core represented by `id` (the node's shell
  // vertices plus everything in its subtree).  O(result size).
  std::vector<VertexId> CoreVertices(NodeId id) const;

  // Total vertex count of the k-core represented by `id`, O(1) (subtree
  // sizes are precomputed).
  VertexId CoreSize(NodeId id) const { return subtree_size_[id]; }

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> node_of_vertex_;
  std::vector<VertexId> subtree_size_;
};

}  // namespace corekit
