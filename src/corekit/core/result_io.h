// Persistence for decomposition results and score profiles.
//
// The paper stresses that core decomposition and the Algorithm 1 index
// are computed once and reused across many metric queries; pipelines want
// the same economy across *process* boundaries.  This module provides:
//
//   * a binary snapshot of a CoreDecomposition (magic "CKC1", checksummed)
//     so the O(m) peel never reruns for a stored graph;
//   * CSV export of CoreSetProfile / SingleCoreProfile for plotting the
//     Figure 5 / Figure 6 curves with external tools.

#pragma once

#include <string>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/util/status.h"

namespace corekit {

// Binary round trip for a decomposition.  The peel order is persisted
// too, so degeneracy-order consumers (coloring, cliques) reload intact.
Status WriteCoreDecomposition(const CoreDecomposition& cores,
                              const std::string& path);
Result<CoreDecomposition> ReadCoreDecomposition(const std::string& path);

// CSV: "k,num_vertices,internal_edges,boundary_edges[,triangles,triplets]
// ,score" per level.
Status WriteCoreSetProfileCsv(const CoreSetProfile& profile,
                              const std::string& path);

// CSV: "node,coreness,core_size,num_vertices,internal_edges,
// boundary_edges,score" per forest node.
Status WriteSingleCoreProfileCsv(const SingleCoreProfile& profile,
                                 const CoreForest& forest,
                                 const std::string& path);

}  // namespace corekit
