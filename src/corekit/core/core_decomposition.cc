#include "corekit/core/core_decomposition.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

std::vector<VertexId> CoreDecomposition::ShellSizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(kmax) + 1, 0);
  for (const VertexId c : coreness) ++sizes[c];
  return sizes;
}

std::vector<VertexId> CoreDecomposition::CoreSetSizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(kmax) + 2, 0);
  for (const VertexId c : coreness) ++sizes[c];
  // Suffix-sum: |C_k| = sum_{c >= k} |H_c|.
  for (VertexId k = kmax; k-- > 0;) sizes[k] += sizes[k + 1];
  return sizes;
}

CoreDecomposition ComputeCoreDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.coreness.assign(n, 0);
  if (n == 0) return result;

  // Batagelj–Zaversnik: vertices bucketed by current degree, peeled in
  // non-decreasing degree order; each deletion decrements its unpeeled
  // neighbors' degrees and moves them one bucket down.
  std::vector<VertexId> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // bin[d] = start index (in `order`) of the block of vertices that
  // currently have degree d.
  std::vector<VertexId> bin(static_cast<std::size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (VertexId d = 0; d <= max_degree; ++d) bin[d + 1] += bin[d];

  std::vector<VertexId> order(n);      // vertices sorted by current degree
  std::vector<VertexId> position(n);   // inverse of `order`
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }

  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    result.coreness[v] = degree[v];
    result.kmax = std::max(result.kmax, degree[v]);
    result.peel_order.push_back(v);
    for (const VertexId u : graph.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;  // u already peeled or tied
      // Swap u with the first vertex of its degree block, then shrink the
      // block boundary: u's effective degree drops by one in O(1).
      const VertexId du = degree[u];
      const VertexId pu = position[u];
      const VertexId pw = bin[du];
      const VertexId w = order[pw];
      if (u != w) {
        position[u] = pw;
        order[pw] = u;
        position[w] = pu;
        order[pu] = w;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return result;
}

CoreDecomposition DecompositionFromCoreness(const Graph& graph,
                                            std::vector<VertexId> coreness) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK(coreness.size() == n);
  CoreDecomposition result;
  result.coreness = std::move(coreness);
  if (n == 0) return result;
  const std::vector<VertexId>& core = result.coreness;
  for (const VertexId c : core) result.kmax = std::max(result.kmax, c);

  // Bucket vertices by shell; counting sort keeps ascending vertex ids
  // within each shell, making the emitted order deterministic.
  std::vector<VertexId> shell_start(static_cast<std::size_t>(result.kmax) + 2,
                                    0);
  for (VertexId v = 0; v < n; ++v) ++shell_start[core[v] + 1];
  for (std::size_t k = 1; k < shell_start.size(); ++k) {
    shell_start[k] += shell_start[k - 1];
  }
  std::vector<VertexId> by_shell(n);
  {
    std::vector<VertexId> cursor(shell_start.begin(), shell_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) by_shell[cursor[core[v]]++] = v;
  }

  // Peel shells in ascending k.  When shell k starts, exactly the
  // vertices with coreness < k are peeled, so the number of unpeeled
  // neighbors of v that still count toward it is |{u : core[u] >= k}| —
  // computable from coreness alone.  A shell-k vertex is safe to peel
  // once that count is <= k; peeling it only decrements counts within
  // its own shell (higher shells recount at their own start).
  std::vector<VertexId> remaining(n, 0);
  std::vector<char> peeled(n, 0);
  result.peel_order.reserve(n);
  std::vector<VertexId> queue;
  for (VertexId k = 0; k <= result.kmax; ++k) {
    const VertexId begin = shell_start[k];
    const VertexId end = shell_start[static_cast<std::size_t>(k) + 1];
    if (begin == end) continue;
    queue.clear();
    for (VertexId i = begin; i < end; ++i) {
      const VertexId v = by_shell[i];
      VertexId count = 0;
      for (const VertexId u : graph.Neighbors(v)) {
        count += core[u] >= k ? 1u : 0u;
      }
      remaining[v] = count;
      if (count <= k) queue.push_back(v);
    }
    VertexId peeled_here = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      if (peeled[v] != 0) continue;
      peeled[v] = 1;
      result.peel_order.push_back(v);
      ++peeled_here;
      for (const VertexId u : graph.Neighbors(v)) {
        if (core[u] != k || peeled[u] != 0) continue;
        if (remaining[u]-- == k + 1) queue.push_back(u);
      }
    }
    // A shell that cannot be fully drained means the supplied coreness
    // was not exact for this graph (the stuck remainder is a (k+1)-core).
    COREKIT_CHECK(peeled_here == end - begin);
  }
  return result;
}

std::vector<bool> CoreSetMask(const CoreDecomposition& cores, VertexId k) {
  std::vector<bool> mask(cores.coreness.size());
  for (VertexId v = 0; v < cores.coreness.size(); ++v) {
    mask[v] = cores.coreness[v] >= k;
  }
  return mask;
}

}  // namespace corekit
