#include "corekit/core/core_decomposition.h"

#include <algorithm>

namespace corekit {

std::vector<VertexId> CoreDecomposition::ShellSizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(kmax) + 1, 0);
  for (const VertexId c : coreness) ++sizes[c];
  return sizes;
}

std::vector<VertexId> CoreDecomposition::CoreSetSizes() const {
  std::vector<VertexId> sizes(static_cast<std::size_t>(kmax) + 2, 0);
  for (const VertexId c : coreness) ++sizes[c];
  // Suffix-sum: |C_k| = sum_{c >= k} |H_c|.
  for (VertexId k = kmax; k-- > 0;) sizes[k] += sizes[k + 1];
  return sizes;
}

CoreDecomposition ComputeCoreDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition result;
  result.coreness.assign(n, 0);
  if (n == 0) return result;

  // Batagelj–Zaversnik: vertices bucketed by current degree, peeled in
  // non-decreasing degree order; each deletion decrements its unpeeled
  // neighbors' degrees and moves them one bucket down.
  std::vector<VertexId> degree(n);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // bin[d] = start index (in `order`) of the block of vertices that
  // currently have degree d.
  std::vector<VertexId> bin(static_cast<std::size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v] + 1];
  for (VertexId d = 0; d <= max_degree; ++d) bin[d + 1] += bin[d];

  std::vector<VertexId> order(n);      // vertices sorted by current degree
  std::vector<VertexId> position(n);   // inverse of `order`
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }

  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    result.coreness[v] = degree[v];
    result.kmax = std::max(result.kmax, degree[v]);
    result.peel_order.push_back(v);
    for (const VertexId u : graph.Neighbors(v)) {
      if (degree[u] <= degree[v]) continue;  // u already peeled or tied
      // Swap u with the first vertex of its degree block, then shrink the
      // block boundary: u's effective degree drops by one in O(1).
      const VertexId du = degree[u];
      const VertexId pu = position[u];
      const VertexId pw = bin[du];
      const VertexId w = order[pw];
      if (u != w) {
        position[u] = pw;
        order[pw] = u;
        position[w] = pu;
        order[pu] = w;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return result;
}

std::vector<bool> CoreSetMask(const CoreDecomposition& cores, VertexId k) {
  std::vector<bool> mask(cores.coreness.size());
  for (VertexId v = 0; v < cores.coreness.size(); ++v) {
    mask[v] = cores.coreness[v] >= k;
  }
  return mask;
}

}  // namespace corekit
