// Alternative core-forest construction via union-find (the bottom-up
// hierarchy construction of Sariyuce & Pinar, PVLDB 2016 — reference [50]
// of the paper, which the paper cites for LCPS's bucket structure).
//
// Instead of one priority-guided traversal (Algorithm 4), process shells
// from kmax down to 0 over a vertex union-find: activating a shell's
// vertices and their edges into already-active vertices merges
// components; every component that gained shell vertices at level k is
// exactly one connected k-core and becomes a node adopting the nodes of
// the components it swallowed.  O(m alpha(m)) — asymptotically a hair
// above LCPS's O(m), but with simpler data structures; the
// ablation_ordering bench compares the constants.
//
// The result is bit-compatible with CoreForest up to child ordering and
// per-node vertex ordering; tests assert structural equivalence.

#pragma once

#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/graph/graph.h"

namespace corekit {

// A forest node in the same shape as CoreForest::Node (kept separate so
// the two constructions stay independently testable).
struct UnionFindForestNode {
  VertexId coreness = 0;
  std::uint32_t parent = CoreForest::kNoNode;
  std::vector<std::uint32_t> children;
  std::vector<VertexId> vertices;
};

struct UnionFindForest {
  // Sorted by descending coreness; children precede parents.
  std::vector<UnionFindForestNode> nodes;
};

// Builds the forest bottom-up.  `cores` must be the decomposition of
// `graph`.
UnionFindForest BuildUnionFindForest(const Graph& graph,
                                     const CoreDecomposition& cores);

// Structural equality with an LCPS-built forest: same multiset of
// (coreness, sorted vertex set) nodes and identical parent cores.
bool ForestsEquivalent(const CoreForest& lcps, const UnionFindForest& uf);

}  // namespace corekit
