#include "corekit/core/best_core_set.h"

#include <cstdint>

#include "corekit/core/triangle_scoring.h"

namespace corekit {

std::vector<PrimaryValues> ComputeCoreSetPrimaries(const OrderedGraph& ordered,
                                                   bool with_triangles) {
  const VertexId kmax = ordered.kmax();
  const VertexId n = ordered.NumVertices();
  std::vector<PrimaryValues> primaries(static_cast<std::size_t>(kmax) + 1);

  // Running primary values of the induced prefix (Algorithm 2's in / out /
  // num, with `in` doubled so the half-edge-per-endpoint bookkeeping stays
  // integral).
  std::uint64_t in_x2 = 0;
  std::int64_t out = 0;
  std::uint64_t num = 0;
  std::uint64_t triangles = 0;
  std::uint64_t triplets = 0;

  // Algorithm 3 state.
  TriangleScratch scratch;
  // f_geq[v] / f_gt[v]: number of neighbors of v with coreness >= k /
  // > k, maintained for vertices of the (k+1)-core set.
  std::vector<VertexId> f_geq;
  std::vector<VertexId> f_gt;
  // Deduplicated union of N(u, >) over the current shell (kshell_nbr in
  // the paper), collected with an epoch stamp.
  std::vector<VertexId> shell_nbr;
  std::vector<VertexId> stamp;
  if (with_triangles) {
    scratch.assign(n, 0);
    f_geq.assign(n, 0);
    f_gt.assign(n, 0);
    stamp.assign(n, 0);
  }

  for (VertexId k = kmax;; --k) {
    const auto shell = ordered.Shell(k);

    // --- Algorithm 2, lines 6-9. ---------------------------------------
    for (const VertexId v : shell) {
      const std::uint64_t higher = ordered.CountHigher(v);
      const std::uint64_t equal = ordered.CountEqual(v);
      const std::uint64_t lower = ordered.CountLower(v);
      in_x2 += 2 * higher + equal;
      out += static_cast<std::int64_t>(lower) -
             static_cast<std::int64_t>(higher);
      ++num;
    }

    if (with_triangles) {
      // --- Algorithm 3, lines 7-12: new triangles. -----------------------
      // A triangle enters at k exactly when its lowest-rank vertex is in
      // the k-shell; count rank-increasing wedges from shell vertices.
      for (const VertexId v : shell) {
        triangles += CountTrianglesAtVertex(ordered, v, scratch);
      }

      // --- Algorithm 3, line 13: triplets centered in the shell. ---------
      for (const VertexId v : shell) {
        triplets += Choose2(ordered.CountGeq(v));
      }

      // --- Algorithm 3, lines 14-22: triplets centered in C_{k+1}. -------
      const VertexId epoch = k + 1;  // unique per iteration, never 0
      shell_nbr.clear();
      for (const VertexId u : shell) {
        for (const VertexId v : ordered.NeighborsHigher(u)) {
          if (stamp[v] != epoch) {
            stamp[v] = epoch;
            shell_nbr.push_back(v);
          }
        }
      }
      for (const VertexId v : shell_nbr) f_gt[v] = f_geq[v];
      for (const VertexId v : shell) {
        for (const VertexId u : ordered.Neighbors(v)) ++f_geq[u];
      }
      for (const VertexId v : shell_nbr) {
        const std::uint64_t gt_k = f_gt[v];
        const std::uint64_t eq_k = f_geq[v] - f_gt[v];
        triplets += Choose2(eq_k) + gt_k * eq_k;
      }
    }

    PrimaryValues& pv = primaries[k];
    pv.num_vertices = num;
    pv.internal_edges_x2 = in_x2;
    COREKIT_DCHECK(out >= 0);
    pv.boundary_edges = static_cast<std::uint64_t>(out);
    pv.triangles = triangles;
    pv.triplets = triplets;
    pv.has_triangles = with_triangles;

    if (k == 0) break;
  }
  return primaries;
}

namespace {

CoreSetProfile ProfileFromPrimaries(std::vector<PrimaryValues> primaries,
                                    const OrderedGraph& ordered,
                                    const MetricFn& metric) {
  const GraphGlobals globals{ordered.NumVertices(),
                             ordered.graph().NumEdges()};
  CoreSetProfile profile;
  profile.primaries = std::move(primaries);
  profile.scores.reserve(profile.primaries.size());
  for (const PrimaryValues& pv : profile.primaries) {
    profile.scores.push_back(metric(pv, globals));
  }
  profile.best_k = ArgmaxLargestK(profile.scores);
  profile.best_score = profile.scores[profile.best_k];
  return profile;
}

}  // namespace

CoreSetProfile FindBestCoreSet(const OrderedGraph& ordered, Metric metric) {
  return FindBestCoreSet(ordered, MetricFunction(metric),
                         MetricNeedsTriangles(metric));
}

CoreSetProfile FindBestCoreSet(const OrderedGraph& ordered,
                               const MetricFn& metric, bool needs_triangles) {
  return ProfileFromPrimaries(ComputeCoreSetPrimaries(ordered, needs_triangles),
                              ordered, metric);
}

VertexId ArgmaxLargestK(const std::vector<double>& scores) {
  COREKIT_CHECK(!scores.empty());
  VertexId best = 0;
  for (VertexId k = 0; k < scores.size(); ++k) {
    if (scores[k] >= scores[best]) best = k;
  }
  return best;
}

}  // namespace corekit
