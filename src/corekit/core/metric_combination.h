// Metric combination: the paper's own suggestion for the degenerate
// cases ("Some metrics choose an extreme value of k in core
// decomposition, which may imply to use a combination of these metrics",
// Section V-A; echoed for single cores in V-B).
//
// Two standard aggregation schemes over already-computed per-k profiles:
//
//   * weighted sum of min-max normalized scores — each metric's profile
//     is rescaled to [0, 1] (metrics live on wildly different scales:
//     average degree in the hundreds, cut ratio within 1e-4 of 1.0)
//     before mixing with user weights;
//   * Borda rank aggregation — each metric ranks the levels; a level's
//     combined score is the sum of (#levels - rank) across metrics,
//     immune to scale and outliers.
//
// Both consume profiles from FindBestCoreSetMulti, so combining M metrics
// still costs a single shell walk.

#pragma once

#include <span>
#include <vector>

#include "corekit/core/best_core_set.h"

namespace corekit {

// Min-max normalization of a score vector to [0, 1]; a constant vector
// maps to all zeros.
std::vector<double> MinMaxNormalize(std::span<const double> scores);

// Weighted-sum combination.  All profiles must have equal length (same
// kmax); weights parallel profiles and must sum to a positive value.
// Returns the combined per-k scores and the best k (largest on ties).
struct CombinedProfile {
  std::vector<double> scores;
  VertexId best_k = 0;
  double best_score = 0.0;
};
CombinedProfile CombineWeighted(std::span<const CoreSetProfile> profiles,
                                std::span<const double> weights);

// Borda rank aggregation: per metric, the best level earns (levels - 1)
// points, the runner-up (levels - 2), ... ties share the higher points
// (competition ranking on descending score).
CombinedProfile CombineBorda(std::span<const CoreSetProfile> profiles);

}  // namespace corekit
