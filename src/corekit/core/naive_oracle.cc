#include "corekit/core/naive_oracle.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

// Iteratively deletes vertices with fewer than k alive neighbors.
// `alive` is modified in place.
void PeelBelow(const Graph& graph, VertexId k, std::vector<bool>& alive) {
  const VertexId n = graph.NumVertices();
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      VertexId degree = 0;
      for (const VertexId u : graph.Neighbors(v)) degree += alive[u] ? 1u : 0u;
      if (degree < k) {
        alive[v] = false;
        changed = true;
      }
    }
  }
}

}  // namespace

std::vector<VertexId> NaiveCoreness(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> coreness(n, 0);
  std::vector<bool> alive(n, true);
  for (VertexId k = 1;; ++k) {
    PeelBelow(graph, k, alive);
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) {
        coreness[v] = k;
        any = true;
      }
    }
    if (!any) break;
  }
  return coreness;
}

std::vector<bool> NaiveCoreSetMask(const Graph& graph, VertexId k) {
  std::vector<bool> alive(graph.NumVertices(), true);
  PeelBelow(graph, k, alive);
  return alive;
}

std::vector<std::vector<VertexId>> NaiveKCores(const Graph& graph,
                                               VertexId k) {
  const std::vector<bool> mask = NaiveCoreSetMask(graph, k);
  const VertexId n = graph.NumVertices();
  std::vector<bool> seen(n, false);
  std::vector<std::vector<VertexId>> cores;
  for (VertexId s = 0; s < n; ++s) {
    if (!mask[s] || seen[s]) continue;
    std::vector<VertexId> component{s};
    seen[s] = true;
    for (std::size_t head = 0; head < component.size(); ++head) {
      for (const VertexId u : graph.Neighbors(component[head])) {
        if (mask[u] && !seen[u]) {
          seen[u] = true;
          component.push_back(u);
        }
      }
    }
    std::sort(component.begin(), component.end());
    cores.push_back(std::move(component));
  }
  return cores;
}

PrimaryValues NaivePrimaryValues(const Graph& graph,
                                 const std::vector<bool>& mask) {
  COREKIT_CHECK_EQ(mask.size(), graph.NumVertices());
  PrimaryValues pv;
  pv.has_triangles = true;
  const VertexId n = graph.NumVertices();

  for (VertexId v = 0; v < n; ++v) {
    if (!mask[v]) continue;
    ++pv.num_vertices;
    std::uint64_t inside = 0;
    for (const VertexId u : graph.Neighbors(v)) {
      if (mask[u]) {
        ++inside;
      } else {
        ++pv.boundary_edges;
      }
    }
    pv.internal_edges_x2 += inside;
    pv.triplets += inside * (inside - 1) / 2;
    // Triangles with v as the smallest id: brute-force over neighbor
    // pairs.
    const auto nbrs = graph.Neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId a = nbrs[i];
      if (!mask[a] || a <= v) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId b = nbrs[j];
        if (!mask[b] || b <= v) continue;
        if (graph.HasEdge(a, b)) ++pv.triangles;
      }
    }
  }
  return pv;
}

double NaiveCoreSetScore(const Graph& graph, VertexId k, Metric metric) {
  const std::vector<bool> mask = NaiveCoreSetMask(graph, k);
  const PrimaryValues pv = NaivePrimaryValues(graph, mask);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  return EvaluateMetric(metric, pv, globals);
}

std::uint64_t NaiveTriangleCount(const Graph& graph) {
  std::uint64_t total = 0;
  const VertexId n = graph.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : graph.Neighbors(v)) {
      if (u <= v) continue;
      for (const VertexId w : graph.Neighbors(u)) {
        if (w > u && graph.HasEdge(v, w)) ++total;
      }
    }
  }
  return total;
}

}  // namespace corekit
