// Approximate triangle statistics by wedge sampling (Seshadhri, Pinar &
// Kolda style).  The paper's exact Algorithm 3 is O(m^1.5) — optimal but
// the bottleneck of the whole pipeline (Figure 7's cc columns).  When an
// approximate clustering coefficient is acceptable, sampling closed
// wedges gives an unbiased estimate in O(samples) after an O(n)
// preparation, turning best-k-by-cc into a near-O(n) computation with a
// quantified accuracy trade-off (see bench/ext_approx_cc).

#pragma once

#include <cstdint>

#include "corekit/graph/graph.h"

namespace corekit {

struct ApproxTriangleStats {
  // Exact number of wedges (triplets) — computable in O(n).
  std::uint64_t triplets = 0;
  // Estimated fraction of wedges that close (the graph's global
  // clustering coefficient 3T/t).
  double closed_fraction = 0.0;
  // Estimated triangle count: closed_fraction * triplets / 3.
  double triangles = 0.0;
  std::uint32_t samples = 0;
};

// Samples `samples` wedges uniformly (center chosen proportional to its
// wedge count, endpoints uniform among neighbor pairs) and checks
// closure.  Deterministic given `seed`; standard error of
// closed_fraction is ~ sqrt(p(1-p)/samples).
ApproxTriangleStats EstimateTriangles(const Graph& graph,
                                      std::uint32_t samples,
                                      std::uint64_t seed);

}  // namespace corekit
