#include "corekit/core/vertex_ordering.h"

namespace corekit {

OrderedGraph::OrderedGraph(const Graph& graph, const CoreDecomposition& cores)
    : graph_(&graph),
      kmax_(cores.kmax),
      coreness_(cores.coreness),
      offsets_(graph.Offsets().begin(), graph.Offsets().end()) {
  COREKIT_CHECK_EQ(coreness_.size(), graph.NumVertices());
  BuildSerial();
}

void OrderedGraph::BuildSerial() {
  const VertexId n = graph_->NumVertices();

  // --- Order the vertex set V (Algorithm 1, lines 1-4). ------------------
  // Bin sort by coreness; iterating v in ascending id keeps each bin sorted
  // by id, so the flattened array is sorted by rank = (coreness, id).
  shell_start_.assign(static_cast<std::size_t>(kmax_) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++shell_start_[coreness_[v] + 1];
  for (VertexId k = 0; k <= kmax_; ++k) shell_start_[k + 1] += shell_start_[k];

  order_.resize(n);
  {
    std::vector<VertexId> cursor(shell_start_.begin(), shell_start_.end() - 1);
    for (VertexId v = 0; v < n; ++v) order_[cursor[coreness_[v]]++] = v;
  }

  // --- Order the edge set E (Algorithm 1, lines 5-12). -------------------
  // The paper flattens kmax+1 bins of (v, u) pairs keyed by c(v); reading
  // the bins from coreness 0 upward and appending v to N'(u) yields every
  // N'(u) sorted by ascending rank of v.  We realize the same single-pass
  // bin scan without materializing pairs: iterating the *rank-ordered*
  // vertex array and appending each v to its neighbors' lists visits
  // exactly the bin-flattening order.
  neighbors_.resize(graph_->NeighborArray().size());
  {
    std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const VertexId v : order_) {
      for (const VertexId u : graph_->Neighbors(v)) {
        neighbors_[cursor[u]++] = v;
      }
    }
  }

  // --- Position tags (Algorithm 1, line 13). -----------------------------
  same_.assign(n, 0);
  plus_.assign(n, 0);
  high_.assign(n, 0);
  ComputeTagsRange(0, n);

  // --- Rank images (SIMD intersection substrate). ------------------------
  rank_of_.resize(n);
  for (VertexId r = 0; r < n; ++r) rank_of_[order_[r]] = r;
  neighbor_ranks_.resize(neighbors_.size());
  for (std::size_t e = 0; e < neighbors_.size(); ++e) {
    neighbor_ranks_[e] = rank_of_[neighbors_[e]];
  }
}

void OrderedGraph::ComputeTagsRange(VertexId begin, VertexId end) {
  // One scan of the reordered edge set; each neighbor list is rank-sorted,
  // so the three boundaries are the first positions crossing each
  // threshold.
  for (VertexId v = begin; v < end; ++v) {
    const VertexId deg = Degree(v);
    const VertexId cv = coreness_[v];
    const VertexId* list = neighbors_.data() + offsets_[v];
    VertexId same = deg;
    VertexId plus = deg;
    VertexId high = deg;
    for (VertexId i = 0; i < deg; ++i) {
      const VertexId cu = coreness_[list[i]];
      if (same == deg && cu >= cv) same = i;
      if (plus == deg && cu > cv) plus = i;
      if (high == deg && (cu > cv || (cu == cv && list[i] > v))) high = i;
      if (plus != deg) break;  // all three found (plus implies same & high)
    }
    same_[v] = same;
    plus_[v] = plus;
    high_[v] = high;
  }
}

}  // namespace corekit
