// Graphviz (DOT) export of the core forest — the visualization use the
// paper cites for core hierarchies ([3], [20], [67]: "graph
// visualization" via k-core decomposition).
//
// Each tree node becomes a DOT node labeled with its coreness, shell
// size, total core size, and (optionally) a per-core score; edges point
// from parent cores to the denser cores they contain.  Render with
// `dot -Tsvg hierarchy.dot -o hierarchy.svg`.

#pragma once

#include <string>
#include <vector>

#include "corekit/core/core_forest.h"
#include "corekit/util/status.h"

namespace corekit {

struct HierarchyDotOptions {
  // Graph name emitted in the DOT header.
  std::string title = "core_forest";
  // Optional per-node scores (size NumNodes()); shown in labels when
  // non-empty.
  std::vector<double> scores;
  // Omit nodes whose core has fewer vertices than this (decluttering for
  // large forests).  The nodes' children re-attach nowhere — they are
  // simply skipped together with their subtrees, which is safe because
  // subtrees of small cores are smaller still.
  VertexId min_core_size = 0;
};

// Renders the forest as a DOT digraph string.
std::string CoreForestToDot(const CoreForest& forest,
                            const HierarchyDotOptions& options = {});

// Convenience: renders and writes to `path`.
Status WriteCoreForestDot(const CoreForest& forest, const std::string& path,
                          const HierarchyDotOptions& options = {});

}  // namespace corekit
