// Semi-external core decomposition (in the spirit of Wen, Qin, Zhang,
// Lin & Yu, ICDE 2016 — reference [61] of the paper).
//
// Memory model: O(n) words of RAM (one estimate per vertex plus a buffer
// bounded by the maximum degree); the adjacency lists stay on disk and
// are read *sequentially*, one pass per refinement round.  Each pass
// applies the same capped h-index operator as the distributed algorithm
// (distributed_core.h) vertex by vertex while streaming that vertex's
// neighbor list from the file; estimates decrease monotonically to the
// exact coreness.
//
// Because estimates updated earlier in a pass are visible to later
// vertices of the same pass (Gauss–Seidel style), convergence typically
// takes far fewer passes than the synchronous distributed rounds — the
// property [61] exploits to decompose web-scale graphs on small memory.
//
// The on-disk format is the corekit binary snapshot (edge_list_io.h), so
// any graph written with WriteBinaryGraph can be decomposed without ever
// loading its edges into memory.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corekit/graph/types.h"
#include "corekit/util/status.h"

namespace corekit {

struct SemiExternalCoreResult {
  // Exact coreness of every vertex.
  std::vector<VertexId> coreness;
  // Degeneracy (largest coreness).
  VertexId kmax = 0;
  // Sequential passes over the edge file (including the degree pass).
  VertexId passes = 0;
  // Total bytes streamed from disk.
  std::uint64_t bytes_read = 0;
};

// Decomposes the graph stored at `binary_graph_path` (WriteBinaryGraph
// format) keeping only O(n + max_degree) words in memory.
Result<SemiExternalCoreResult> SemiExternalCoreDecomposition(
    const std::string& binary_graph_path);

}  // namespace corekit
