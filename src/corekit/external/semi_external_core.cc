#include "corekit/external/semi_external_core.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

constexpr char kBinaryMagic[4] = {'C', 'K', 'G', '1'};

// Buffered sequential reader over the binary snapshot's neighbor region.
class EdgeStream {
 public:
  explicit EdgeStream(std::FILE* file) : file_(file) {}

  // Positions the stream at the first neighbor slot (right after the
  // header and offset array).
  bool SeekToNeighbors(std::uint64_t num_vertices) {
    const long header = 4 + 2 * static_cast<long>(sizeof(std::uint64_t));
    const auto offsets_bytes = static_cast<long>(
        (num_vertices + 1) * sizeof(EdgeId));
    return std::fseek(file_, header + offsets_bytes, SEEK_SET) == 0;
  }

  // Reads `count` neighbor ids into `out` (resized).  Returns false on a
  // short read.
  bool ReadNeighbors(std::size_t count, std::vector<VertexId>& out,
                     std::uint64_t& bytes_read) {
    out.resize(count);
    if (count == 0) return true;
    const std::size_t got =
        std::fread(out.data(), sizeof(VertexId), count, file_);
    bytes_read += got * sizeof(VertexId);
    return got == count;
  }

 private:
  std::FILE* file_;
};

}  // namespace

Result<SemiExternalCoreResult> SemiExternalCoreDecomposition(
    const std::string& binary_graph_path) {
  std::FILE* file = std::fopen(binary_graph_path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + binary_graph_path +
                           "': " + std::strerror(errno));
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  SemiExternalCoreResult result;

  // --- Header + degree pass (offsets are read once, only degrees and the
  // maximum degree are retained — O(n) memory). --------------------------
  char magic[4];
  std::uint64_t n = 0;
  std::uint64_t slots = 0;
  if (std::fread(magic, 1, 4, file) != 4 ||
      std::memcmp(magic, kBinaryMagic, 4) != 0) {
    return Status::Corruption("'" + binary_graph_path +
                              "' is not a corekit binary graph");
  }
  if (std::fread(&n, sizeof(n), 1, file) != 1 ||
      std::fread(&slots, sizeof(slots), 1, file) != 1) {
    return Status::Corruption("truncated header");
  }
  result.bytes_read += 4 + 2 * sizeof(std::uint64_t);

  std::vector<VertexId> degree(n);
  VertexId max_degree = 0;
  {
    EdgeId previous = 0;
    if (std::fread(&previous, sizeof(EdgeId), 1, file) != 1 ||
        previous != 0) {
      return Status::Corruption("bad offset array");
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      EdgeId offset = 0;
      if (std::fread(&offset, sizeof(EdgeId), 1, file) != 1) {
        return Status::Corruption("truncated offset array");
      }
      if (offset < previous || offset > slots) {
        return Status::Corruption("non-monotone offset array");
      }
      degree[v] = static_cast<VertexId>(offset - previous);
      max_degree = std::max(max_degree, degree[v]);
      previous = offset;
    }
    result.bytes_read += (n + 1) * sizeof(EdgeId);
  }
  result.passes = 1;  // the degree pass

  // --- Refinement passes: stream adjacency, apply capped h-index with
  // Gauss–Seidel visibility. ---------------------------------------------
  result.coreness.assign(n, 0);
  std::vector<VertexId>& est = result.coreness;
  for (std::uint64_t v = 0; v < n; ++v) est[v] = degree[v];

  EdgeStream stream(file);
  std::vector<VertexId> neighbors;
  std::vector<VertexId> count;  // h-index histogram, size <= max_degree+1
  count.reserve(static_cast<std::size_t>(max_degree) + 1);

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.passes;
    if (!stream.SeekToNeighbors(n)) {
      return Status::IoError("seek failed on '" + binary_graph_path + "'");
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      if (!stream.ReadNeighbors(degree[v], neighbors, result.bytes_read)) {
        return Status::Corruption("truncated neighbor array");
      }
      const VertexId cap = est[v];
      if (cap == 0) continue;
      count.assign(static_cast<std::size_t>(cap) + 1, 0);
      for (const VertexId u : neighbors) {
        if (u >= n) return Status::Corruption("neighbor id out of range");
        ++count[std::min(est[u], cap)];
      }
      VertexId at_least = 0;
      VertexId h = 0;
      for (VertexId k = cap; k > 0; --k) {
        at_least += count[k];
        if (at_least >= k) {
          h = k;
          break;
        }
      }
      if (h < est[v]) {
        est[v] = h;
        changed = true;
      }
    }
  }

  for (const VertexId c : est) result.kmax = std::max(result.kmax, c);
  return result;
}

}  // namespace corekit
