// Core-guided graph clustering (in the spirit of CoreCluster, Giatsidis
// et al. AAAI 2014 — reference [28] of the paper, which uses the k-core
// decomposition to drive a clustering algorithm from the dense center of
// the graph outward).
//
// The clusterer is asynchronous label propagation with a
// degeneracy-guided schedule: vertices are processed in descending
// coreness (rank) order each round, so the stable inner cores crystallize
// labels first and the periphery attaches to them — the "start from the
// center core" intuition the paper's top-down walk shares.  Deterministic
// (fixed order, fixed tie-breaks): ties keep the current label when it is
// among the majority labels, otherwise take the smallest.
//
// Also provides the *full partition modularity* of Section II-C —
// f(P) = sum_i ( m(P_i)/m - ((2 m(P_i) + b(P_i)) / 2m)^2 ) — for
// arbitrary vertex partitions, used to score clusterings and by the tests
// to cross-check the two-block modularity metric.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct CoreClustering {
  // cluster[v] in [0, num_clusters); every vertex is assigned.
  std::vector<VertexId> cluster;
  VertexId num_clusters = 0;
  // Propagation rounds executed until stability (or the cap).
  std::uint32_t rounds = 0;
  // Partition modularity of the result.
  double modularity = 0.0;
};

// Clusters the engine's graph by coreness-guided label propagation,
// taking the schedule from the engine's cached ordering.  `max_rounds`
// caps the sweeps (propagation almost always stabilizes in a handful).
CoreClustering ClusterByCores(CoreEngine& engine,
                              std::uint32_t max_rounds = 30);
// Convenience overload: builds a throwaway engine over `graph`.
CoreClustering ClusterByCores(const Graph& graph,
                              std::uint32_t max_rounds = 30);

// Modularity of an arbitrary partition (labels in [0, num_clusters)).
double PartitionModularity(const Graph& graph,
                           const std::vector<VertexId>& cluster,
                           VertexId num_clusters);

}  // namespace corekit
