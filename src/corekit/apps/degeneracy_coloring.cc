#include "corekit/apps/degeneracy_coloring.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

GraphColoring ColorBySmallestLast(const Graph& graph,
                                  const CoreDecomposition& cores) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_EQ(cores.peel_order.size(), n);
  GraphColoring result;
  result.color.assign(n, kInvalidVertex);
  if (n == 0) return result;

  // First-fit over colors forbidden by already-colored neighbors; at most
  // kmax of them can be colored when v's turn comes, so color ids stay
  // within [0, kmax].
  std::vector<VertexId> forbidden_at(static_cast<std::size_t>(cores.kmax) + 2,
                                     kInvalidVertex);
  for (VertexId i = n; i-- > 0;) {
    const VertexId v = cores.peel_order[i];
    for (const VertexId u : graph.Neighbors(v)) {
      const VertexId c = result.color[u];
      if (c != kInvalidVertex && c < forbidden_at.size()) {
        forbidden_at[c] = v;  // stamped per vertex
      }
    }
    VertexId chosen = 0;
    while (forbidden_at[chosen] == v) ++chosen;
    COREKIT_DCHECK(chosen <= cores.kmax);
    result.color[v] = chosen;
    result.num_colors = std::max(result.num_colors, chosen + 1);
  }
  return result;
}

bool IsProperColoring(const Graph& graph,
                      const std::vector<VertexId>& color) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const VertexId u : graph.Neighbors(v)) {
      if (color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace corekit
