// SIR spreading simulation: the influential-spreader application of
// k-core decomposition (Kitsak et al., Nature Physics 2010 — reference
// [34]; also [24], [40], [41] of the paper).
//
// The classic finding: a node's *coreness* predicts its spreading power
// better than its degree — hubs on the periphery infect less than
// moderately connected nodes in the inner core.  corekit ships a small
// discrete-time SIR engine plus the seed-selection strategies needed to
// reproduce that comparison on synthetic networks (see
// examples/influential_spreaders.cpp and bench/ext_spreaders).

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct SirParams {
  // Per-contact transmission probability beta.
  double infect_prob = 0.1;
  // An infected vertex recovers after one step (the standard SIR with
  // recovery rate 1 used by [34]); max_steps caps runaway cascades.
  std::uint32_t max_steps = 10000;
  // Monte-Carlo repetitions to average over.
  std::uint32_t trials = 100;
  std::uint64_t seed = 1;
};

// Expected outbreak size (total ever-infected vertices, averaged over
// trials) when the epidemic starts from `seeds`.
double ExpectedOutbreakSize(const Graph& graph,
                            const std::vector<VertexId>& seeds,
                            const SirParams& params);

// Average single-seed outbreak size over every vertex in `candidates`
// (each candidate seeds its own simulations).
double AverageSingleSeedOutbreak(const Graph& graph,
                                 const std::vector<VertexId>& candidates,
                                 const SirParams& params);

// Seed pools: the `count` vertices of maximal degree / maximal coreness
// (ties by id).  Top-coreness is the k-shell seeding of [34].
std::vector<VertexId> TopDegreeVertices(const Graph& graph, VertexId count);
std::vector<VertexId> TopCorenessVertices(const Graph& graph,
                                          const CoreDecomposition& cores,
                                          VertexId count);

}  // namespace corekit
