#include "corekit/apps/densest_subgraph.h"

#include <algorithm>

#include "corekit/apps/max_flow.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/metrics.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/util/logging.h"

namespace corekit {

double InducedAverageDegree(const Graph& graph,
                            const std::vector<VertexId>& vertices) {
  if (vertices.empty()) return 0.0;
  std::vector<bool> mask(graph.NumVertices(), false);
  for (const VertexId v : vertices) mask[v] = true;
  std::uint64_t internal_x2 = 0;
  for (const VertexId v : vertices) {
    for (const VertexId u : graph.Neighbors(v)) internal_x2 += mask[u] ? 1u : 0u;
  }
  return static_cast<double>(internal_x2) /
         static_cast<double>(vertices.size());
}

DensestSubgraphResult OptDDensestSubgraph(CoreEngine& engine) {
  COREKIT_CHECK_GT(engine.graph().NumVertices(), 0u);
  const CoreForest& forest = engine.Forest();
  const SingleCoreProfile& profile =
      engine.BestSingleCore(Metric::kAverageDegree);

  DensestSubgraphResult result;
  result.vertices = forest.CoreVertices(profile.best_node);
  std::sort(result.vertices.begin(), result.vertices.end());
  result.average_degree = profile.best_score;
  return result;
}

DensestSubgraphResult OptDDensestSubgraph(const Graph& graph) {
  CoreEngine engine(graph);
  return OptDDensestSubgraph(engine);
}

DensestSubgraphResult CoreAppDensestSubgraph(CoreEngine& engine) {
  const Graph& graph = engine.graph();
  COREKIT_CHECK_GT(graph.NumVertices(), 0u);
  const CoreDecomposition& cores = engine.Cores();

  DensestSubgraphResult result;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (cores.coreness[v] == cores.kmax) result.vertices.push_back(v);
  }
  result.average_degree = InducedAverageDegree(graph, result.vertices);
  return result;
}

DensestSubgraphResult CoreAppDensestSubgraph(const Graph& graph) {
  CoreEngine engine(graph);
  return CoreAppDensestSubgraph(engine);
}

DensestSubgraphResult ExactDensestSubgraph(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_GT(n, 0u);
  const EdgeId m = graph.NumEdges();

  DensestSubgraphResult result;
  if (m == 0) {
    result.vertices.push_back(0);
    result.average_degree = 0.0;
    return result;
  }

  // Goldberg's reduction.  Densities m(S)/|S| are rationals with
  // denominator <= n, so two distinct values differ by at least 1/n^2;
  // binary-searching the guess over multiples of 1/D with D = n^2 pins the
  // optimum exactly (the final half-open interval of width 1/D cannot hold
  // two distinct densities).  All capacities are pre-multiplied by D.
  const auto big_n = static_cast<std::int64_t>(n);
  const std::int64_t d_scale = big_n * big_n;
  const auto big_m = static_cast<std::int64_t>(m);
  const EdgeList edges = graph.ToEdgeList();

  // Feasibility of guess x/D: does some non-empty S have m(S)/|S| > x/D?
  // Also records the witness S when feasible.
  std::vector<VertexId> witness;
  auto feasible = [&](std::int64_t x) {
    const std::uint32_t source = n;
    const std::uint32_t sink = n + 1;
    MaxFlowNetwork net(n + 2);
    for (VertexId v = 0; v < n; ++v) {
      net.AddArc(source, v, big_m * d_scale);
      const auto deg = static_cast<std::int64_t>(graph.Degree(v));
      net.AddArc(v, sink, big_m * d_scale + 2 * x - deg * d_scale);
    }
    for (const auto& [u, v] : edges) {
      net.AddArc(u, v, d_scale);
      net.AddArc(v, u, d_scale);
    }
    const MaxFlowNetwork::FlowValue cut = net.Solve(source, sink);
    if (cut >= big_n * big_m * d_scale) return false;
    witness.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (net.InSourceSide(v)) witness.push_back(v);
    }
    COREKIT_CHECK(!witness.empty());
    return true;
  };

  // Invariant: feasible(lo) true, feasible(hi) false; densities live in
  // (lo/D, hi/D].  Densities are <= m, so hi = m*D + 1 is safely
  // infeasible.
  std::int64_t lo = 0;
  std::int64_t hi = big_m * d_scale + 1;
  COREKIT_CHECK(feasible(lo));
  std::vector<VertexId> best = witness;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      lo = mid;
      best = witness;
    } else {
      hi = mid;
    }
  }

  result.vertices = std::move(best);
  result.average_degree = InducedAverageDegree(graph, result.vertices);
  return result;
}

}  // namespace corekit
