#include "corekit/apps/core_resilience.h"

#include <algorithm>
#include <numeric>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/connected_components.h"
#include "corekit/graph/subgraph.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

const char* RemovalStrategyName(RemovalStrategy strategy) {
  switch (strategy) {
    case RemovalStrategy::kRandom:
      return "random";
    case RemovalStrategy::kHighestDegreeFirst:
      return "degree-targeted";
    case RemovalStrategy::kHighestCorenessFirst:
      return "coreness-targeted";
  }
  return "?";
}

ResilienceCurve ComputeResilienceCurve(const Graph& graph,
                                       RemovalStrategy strategy,
                                       std::uint32_t steps,
                                       VertexId reference_k,
                                       std::uint64_t seed) {
  CoreEngine engine(graph);
  return ComputeResilienceCurve(engine, strategy, steps, reference_k, seed);
}

ResilienceCurve ComputeResilienceCurve(CoreEngine& engine,
                                       RemovalStrategy strategy,
                                       std::uint32_t steps,
                                       VertexId reference_k,
                                       std::uint64_t seed) {
  COREKIT_CHECK_GT(steps, 0u);
  const Graph& graph = engine.graph();
  const VertexId n = graph.NumVertices();
  ResilienceCurve curve;
  curve.strategy = strategy;
  if (n == 0) return curve;

  const CoreDecomposition& initial = engine.Cores();
  curve.reference_k =
      reference_k != 0 ? reference_k
                       : std::max<VertexId>(1, initial.kmax / 2);

  // Removal order, fixed up front on the intact graph.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (strategy) {
    case RemovalStrategy::kRandom: {
      Rng rng(seed);
      rng.Shuffle(order);
      break;
    }
    case RemovalStrategy::kHighestDegreeFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&graph](VertexId a, VertexId b) {
                         return graph.Degree(a) > graph.Degree(b);
                       });
      break;
    case RemovalStrategy::kHighestCorenessFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&initial](VertexId a, VertexId b) {
                         return initial.coreness[a] > initial.coreness[b];
                       });
      break;
  }

  std::vector<bool> alive(n, true);
  std::size_t removed = 0;
  auto measure = [&]() {
    ResiliencePoint point;
    point.removed_fraction =
        static_cast<double>(removed) / static_cast<double>(n);
    const InducedSubgraph remaining = ExtractInducedSubgraph(graph, alive);
    if (remaining.graph.NumVertices() > 0) {
      const CoreDecomposition cores =
          ComputeCoreDecomposition(remaining.graph);
      point.kmax = cores.kmax;
      for (const VertexId c : cores.coreness) {
        point.inner_core_size += (c == cores.kmax && cores.kmax > 0) ? 1u : 0u;
        point.reference_core_size += c >= curve.reference_k ? 1u : 0u;
      }
      const ComponentLabels components =
          ConnectedComponents(remaining.graph);
      std::vector<VertexId> sizes(components.num_components, 0);
      for (const VertexId label : components.label) ++sizes[label];
      for (const VertexId size : sizes) {
        point.largest_component = std::max(point.largest_component, size);
      }
    }
    curve.points.push_back(point);
  };

  measure();  // intact graph
  const std::size_t batch = (static_cast<std::size_t>(n) + steps - 1) / steps;
  std::size_t cursor = 0;
  for (std::uint32_t step = 0; step < steps && cursor < n; ++step) {
    for (std::size_t i = 0; i < batch && cursor < n; ++i, ++cursor) {
      alive[order[cursor]] = false;
      ++removed;
    }
    measure();
  }
  return curve;
}

}  // namespace corekit
