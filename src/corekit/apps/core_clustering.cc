#include "corekit/apps/core_clustering.h"

#include <algorithm>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/util/logging.h"

namespace corekit {

double PartitionModularity(const Graph& graph,
                           const std::vector<VertexId>& cluster,
                           VertexId num_clusters) {
  COREKIT_CHECK_EQ(cluster.size(), graph.NumVertices());
  const double m = static_cast<double>(graph.NumEdges());
  if (m == 0.0) return 0.0;

  // Per-cluster internal edges (x2) and total incident degree (volume).
  std::vector<double> internal_x2(num_clusters, 0.0);
  std::vector<double> volume(num_clusters, 0.0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    COREKIT_DCHECK(cluster[v] < num_clusters);
    volume[cluster[v]] += graph.Degree(v);
    for (const VertexId u : graph.Neighbors(v)) {
      if (cluster[u] == cluster[v]) internal_x2[cluster[v]] += 1.0;
    }
  }
  double q = 0.0;
  for (VertexId c = 0; c < num_clusters; ++c) {
    const double m_c = internal_x2[c] / 2.0;
    const double vol = volume[c] / (2.0 * m);
    q += m_c / m - vol * vol;
  }
  return q;
}

CoreClustering ClusterByCores(const Graph& graph, std::uint32_t max_rounds) {
  CoreEngine engine(graph);
  return ClusterByCores(engine, max_rounds);
}

CoreClustering ClusterByCores(CoreEngine& engine, std::uint32_t max_rounds) {
  const Graph& graph = engine.graph();
  const VertexId n = graph.NumVertices();
  CoreClustering result;
  result.cluster.resize(n);
  if (n == 0) return result;

  // Schedule: descending coreness, ties by id (the reverse of the
  // Algorithm 1 rank order) — the inner core votes first.
  const OrderedGraph& ordered = engine.Ordered();
  std::vector<VertexId> schedule(ordered.VerticesByRank().begin(),
                                 ordered.VerticesByRank().end());
  std::reverse(schedule.begin(), schedule.end());

  // Labels start as self; async majority propagation.
  std::vector<VertexId>& label = result.cluster;
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  // Scratch histogram over neighbor labels, epoch-stamped.
  std::vector<VertexId> count(n, 0);
  std::vector<VertexId> stamp(n, kInvalidVertex);
  std::vector<VertexId> seen;

  bool changed = true;
  while (changed && result.rounds < max_rounds) {
    changed = false;
    ++result.rounds;
    for (const VertexId v : schedule) {
      const auto nbrs = graph.Neighbors(v);
      if (nbrs.empty()) continue;
      // Histogram of neighbor labels.
      seen.clear();
      for (const VertexId u : nbrs) {
        const VertexId l = label[u];
        if (stamp[l] != v) {
          stamp[l] = v;
          count[l] = 0;
          seen.push_back(l);
        }
        ++count[l];
      }
      VertexId max_count = 0;
      for (const VertexId l : seen) max_count = std::max(max_count, count[l]);
      // Keep the current label when it is among the maxima; otherwise the
      // smallest majority label (both deterministic).
      VertexId best_label;
      if (stamp[label[v]] == v && count[label[v]] == max_count) {
        best_label = label[v];
      } else {
        best_label = kInvalidVertex;
        for (const VertexId l : seen) {
          if (count[l] == max_count) best_label = std::min(best_label, l);
        }
      }
      if (best_label != label[v]) {
        label[v] = best_label;
        changed = true;
      }
    }
  }

  // Densify labels.
  std::vector<VertexId> remap(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (remap[label[v]] == kInvalidVertex) remap[label[v]] = next++;
    label[v] = remap[label[v]];
  }
  result.num_clusters = next;
  result.modularity = PartitionModularity(graph, label, next);
  return result;
}

}  // namespace corekit
