#include "corekit/apps/max_clique.h"

#include <algorithm>

#include "corekit/core/core_decomposition.h"
#include "corekit/util/logging.h"

namespace corekit {

namespace {

// Branch-and-bound state over one degeneracy subproblem, using local dense
// ids [0, size) and a byte adjacency matrix (subproblems have at most
// kmax + 1 vertices, so the matrix stays small).
class SubproblemSolver {
 public:
  SubproblemSolver(const std::vector<std::uint8_t>& adjacency,
                   std::uint32_t size)
      : adjacency_(adjacency), size_(size) {}

  // Expands R (current clique, size r_size) with candidate set P.
  // `best` is the global incumbent size; `best_local` collects the local
  // ids of the best clique found in this subproblem.
  void Expand(std::vector<std::uint32_t>& r, std::vector<std::uint32_t>& p,
              std::size_t& best, std::vector<std::uint32_t>& best_local) {
    if (p.empty()) {
      if (r.size() > best) {
        best = r.size();
        best_local = r;
      }
      return;
    }

    // Greedy coloring of P: vertices are grouped into independent color
    // classes; a clique can take at most one vertex per class, so
    // |R| + color(v) bounds any clique through v given the processing
    // order below.
    std::vector<std::uint32_t> colored;   // P reordered by ascending color
    std::vector<std::uint32_t> color_of;  // parallel to `colored`
    colored.reserve(p.size());
    color_of.reserve(p.size());
    {
      std::vector<std::uint32_t> uncolored = p;
      std::uint32_t color = 1;
      std::vector<std::uint32_t> rest;
      while (!uncolored.empty()) {
        rest.clear();
        // One independent set per pass.
        std::vector<std::uint32_t> in_class;
        for (const std::uint32_t v : uncolored) {
          bool independent = true;
          for (const std::uint32_t u : in_class) {
            if (Adjacent(u, v)) {
              independent = false;
              break;
            }
          }
          if (independent) {
            in_class.push_back(v);
            colored.push_back(v);
            color_of.push_back(color);
          } else {
            rest.push_back(v);
          }
        }
        uncolored.swap(rest);
        ++color;
      }
    }

    // Branch in descending color order (deepest bound first).
    std::vector<std::uint32_t> p_new;
    for (std::size_t i = colored.size(); i-- > 0;) {
      const std::uint32_t v = colored[i];
      if (r.size() + color_of[i] <= best) return;  // bound
      p_new.clear();
      for (std::size_t j = 0; j < i; ++j) {
        if (Adjacent(colored[j], v)) p_new.push_back(colored[j]);
      }
      r.push_back(v);
      Expand(r, p_new, best, best_local);
      r.pop_back();
    }
  }

 private:
  bool Adjacent(std::uint32_t a, std::uint32_t b) const {
    return adjacency_[static_cast<std::size_t>(a) * size_ + b] != 0;
  }

  const std::vector<std::uint8_t>& adjacency_;
  std::uint32_t size_;
};

}  // namespace

std::vector<VertexId> FindMaximumClique(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return {};

  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  // position_in_peel[v]: rank of v in the degeneracy order.
  std::vector<VertexId> position(n);
  for (VertexId i = 0; i < n; ++i) position[cores.peel_order[i]] = i;

  std::vector<VertexId> best_clique;
  std::size_t best = 0;

  // Reusable subproblem buffers.
  std::vector<VertexId> members;        // local id -> global id
  std::vector<std::uint8_t> adjacency;  // size^2 dense matrix

  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = cores.peel_order[i];
    // A clique whose earliest-peeled vertex is v lives inside v plus its
    // later-peeled neighbors (at most kmax of them).
    if (static_cast<std::size_t>(cores.coreness[v]) + 1 <= best) continue;

    members.clear();
    members.push_back(v);
    for (const VertexId u : graph.Neighbors(v)) {
      if (position[u] > i) members.push_back(u);
    }
    if (members.size() <= best) continue;

    const auto size = static_cast<std::uint32_t>(members.size());
    adjacency.assign(static_cast<std::size_t>(size) * size, 0);
    for (std::uint32_t a = 0; a < size; ++a) {
      for (std::uint32_t b = a + 1; b < size; ++b) {
        if (graph.HasEdge(members[a], members[b])) {
          adjacency[static_cast<std::size_t>(a) * size + b] = 1;
          adjacency[static_cast<std::size_t>(b) * size + a] = 1;
        }
      }
    }

    SubproblemSolver solver(adjacency, size);
    std::vector<std::uint32_t> r{0};  // local id of v
    std::vector<std::uint32_t> p;
    for (std::uint32_t local = 1; local < size; ++local) p.push_back(local);
    std::vector<std::uint32_t> best_local;
    std::size_t sub_best = best;
    solver.Expand(r, p, sub_best, best_local);
    if (sub_best > best) {
      best = sub_best;
      best_clique.clear();
      for (const std::uint32_t local : best_local) {
        best_clique.push_back(members[local]);
      }
    }
  }

  std::sort(best_clique.begin(), best_clique.end());
  COREKIT_DCHECK(IsClique(graph, best_clique));
  return best_clique;
}

bool IsClique(const Graph& graph, const std::vector<VertexId>& vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!graph.HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace corekit
