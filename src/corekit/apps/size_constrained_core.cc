#include "corekit/apps/size_constrained_core.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "corekit/core/metrics.h"
#include "corekit/util/logging.h"

namespace corekit {

SizeConstrainedCoreSolver::SizeConstrainedCoreSolver(
    std::unique_ptr<CoreEngine> owned, CoreEngine* shared)
    : owned_engine_(std::move(owned)),
      engine_(shared != nullptr ? shared : owned_engine_.get()),
      graph_(&engine_->graph()),
      cores_(&engine_->Cores()),
      forest_(&engine_->Forest()),
      profile_(&engine_->BestSingleCore(Metric::kAverageDegree)) {}

SizeConstrainedCoreSolver::SizeConstrainedCoreSolver(const Graph& graph)
    : SizeConstrainedCoreSolver(std::make_unique<CoreEngine>(graph), nullptr) {}

SizeConstrainedCoreSolver::SizeConstrainedCoreSolver(CoreEngine& engine)
    : SizeConstrainedCoreSolver(nullptr, &engine) {}

SckResult SizeConstrainedCoreSolver::Solve(VertexId query_vertex, VertexId k,
                                           VertexId h) const {
  SckResult result;
  if (query_vertex >= graph_->NumVertices()) return result;
  if (cores_->coreness[query_vertex] < k) return result;  // no k-core holds v

  // --- Candidate selection: walk v's root path in the core forest. ------
  CoreForest::NodeId best_node = CoreForest::kNoNode;
  double best_score = -1.0;
  for (CoreForest::NodeId node = forest_->NodeOfVertex(query_vertex);
       node != CoreForest::kNoNode; node = forest_->node(node).parent) {
    if (forest_->node(node).coreness < k) break;  // coarser cores only get
                                                 // looser than k from here
    if (forest_->CoreSize(node) < h) continue;
    if (profile_->scores[node] > best_score) {
      best_score = profile_->scores[node];
      best_node = node;
    }
  }
  if (best_node == CoreForest::kNoNode) return result;

  // --- Peeling inside the candidate core. -------------------------------
  const std::vector<VertexId> members = forest_->CoreVertices(best_node);
  // Local membership + degrees within the shrinking subgraph.
  std::vector<bool> alive(graph_->NumVertices(), false);
  for (const VertexId v : members) alive[v] = true;
  std::vector<VertexId> degree(graph_->NumVertices(), 0);
  for (const VertexId v : members) {
    VertexId d = 0;
    for (const VertexId u : graph_->Neighbors(v)) d += alive[u] ? 1u : 0u;
    degree[v] = d;
  }

  // Min-degree extraction with lazy updates.
  using Entry = std::pair<VertexId, VertexId>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (const VertexId v : members) heap.emplace(degree[v], v);

  std::size_t size = members.size();
  std::vector<VertexId> cascade;
  auto remove_vertex = [&](VertexId v) {
    alive[v] = false;
    --size;
    for (const VertexId u : graph_->Neighbors(v)) {
      if (!alive[u]) continue;
      --degree[u];
      heap.emplace(degree[u], u);
      if (degree[u] < k && u != query_vertex) cascade.push_back(u);
    }
  };

  while (size > h) {
    // Pop the current minimum-degree vertex (skip stale entries, the
    // query vertex, and anything already cascaded away).
    VertexId victim = kInvalidVertex;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (!alive[v] || degree[v] != d || v == query_vertex) continue;
      victim = v;
      break;
    }
    if (victim == kInvalidVertex) break;  // only the query vertex is left
    if (degree[query_vertex] <= k &&
        graph_->HasEdge(victim, query_vertex)) {
      // Removing this victim would drag v below k; peeling cannot shrink
      // further without breaking the query vertex.
      break;
    }
    cascade.clear();
    remove_vertex(victim);
    while (!cascade.empty()) {
      const VertexId u = cascade.back();
      cascade.pop_back();
      if (alive[u]) remove_vertex(u);
    }
    if (degree[query_vertex] < k) break;  // v degraded below k: stop
  }

  if (!alive[query_vertex] || degree[query_vertex] < k) return result;

  // --- Answer: component of v in the remainder. --------------------------
  std::vector<VertexId> component{query_vertex};
  std::vector<bool> seen(graph_->NumVertices(), false);
  seen[query_vertex] = true;
  for (std::size_t head = 0; head < component.size(); ++head) {
    for (const VertexId u : graph_->Neighbors(component[head])) {
      if (alive[u] && !seen[u]) {
        seen[u] = true;
        component.push_back(u);
      }
    }
  }
  // The remainder can still contain vertices below k (peeling stopped to
  // protect the query vertex); verify the component really is a k-core
  // piece and otherwise report a miss only if v itself fails.
  std::sort(component.begin(), component.end());
  result.found = true;
  result.vertices = std::move(component);
  return result;
}

bool SizeConstrainedCoreSolver::IsHit(const SckResult& result, VertexId h,
                                      double tolerance) {
  if (!result.found) return false;
  const double deviation =
      std::abs(static_cast<double>(result.vertices.size()) -
               static_cast<double>(h)) /
      static_cast<double>(h);
  return deviation <= tolerance;
}

}  // namespace corekit
