#include "corekit/apps/community_search.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

CommunitySearcher::CommunitySearcher(std::unique_ptr<CoreEngine> owned,
                                     CoreEngine* shared, Metric metric)
    : owned_engine_(std::move(owned)),
      engine_(shared != nullptr ? shared : owned_engine_.get()),
      graph_(&engine_->graph()),
      cores_(&engine_->Cores()),
      forest_(&engine_->Forest()),
      profile_(&engine_->BestSingleCore(metric)),
      index_(*forest_, *profile_) {}

CommunitySearcher::CommunitySearcher(const Graph& graph, Metric metric)
    : CommunitySearcher(std::make_unique<CoreEngine>(graph), nullptr, metric) {}

CommunitySearcher::CommunitySearcher(CoreEngine& engine, Metric metric)
    : CommunitySearcher(nullptr, &engine, metric) {}

CommunitySearchResult CommunitySearcher::Materialize(VertexId query,
                                                     VertexId k) const {
  CommunitySearchResult result;
  const CoreForest::NodeId node = index_.NodeOf(query, k);
  if (node == CoreForest::kNoNode) return result;
  result.found = true;
  result.k = k;
  result.score = profile_->scores[node];
  result.members = forest_->CoreVertices(node);
  std::sort(result.members.begin(), result.members.end());
  return result;
}

CommunitySearchResult CommunitySearcher::Search(VertexId query) const {
  if (query >= graph_->NumVertices() || cores_->coreness[query] == 0) {
    return {};
  }
  return Materialize(query, index_.BestKFor(query));
}

std::uint64_t CommunitySearchQueryFold(CoreEngine& engine, Metric metric,
                                       std::uint64_t pick) {
  const std::uint64_t n = engine.graph().NumVertices();
  if (n == 0) return 0;
  CommunitySearcher searcher(engine, metric);
  const auto query = static_cast<VertexId>(pick % n);
  const CommunitySearchResult result = searcher.Search(query);
  // Order-sensitive fold of every answer field, same mixing scheme the
  // serving harness applies to its built-in query kinds.
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
    return sm.Next();
  };
  return mix(mix(result.found ? 1u : 0u, result.k),
             mix(std::bit_cast<std::uint64_t>(result.score),
                 result.members.size()));
}

CommunitySearchResult CommunitySearcher::SearchWithMinK(VertexId query,
                                                        VertexId min_k) const {
  if (query >= graph_->NumVertices() || cores_->coreness[query] < min_k) {
    return {};
  }
  // Best level among those >= min_k on the query's root path.
  VertexId best_k = min_k;
  double best_score = index_.Score(query, min_k);
  for (CoreForest::NodeId cur = forest_->NodeOfVertex(query);
       cur != CoreForest::kNoNode; cur = forest_->node(cur).parent) {
    const VertexId level = forest_->node(cur).coreness;
    if (level < min_k) break;
    if (profile_->scores[cur] > best_score) {
      best_score = profile_->scores[cur];
      best_k = level;
    }
  }
  return Materialize(query, best_k);
}

}  // namespace corekit
