// Dinic's maximum-flow algorithm.
//
// Substrate for the exact densest-subgraph solver (Goldberg's reduction);
// also generally useful.  Capacities are 64-bit integers scaled by the
// caller when fractional guesses are needed.

#pragma once

#include <cstdint>
#include <vector>

namespace corekit {

class MaxFlowNetwork {
 public:
  using FlowValue = std::int64_t;

  explicit MaxFlowNetwork(std::uint32_t num_nodes);

  // Adds a directed arc u -> v with the given capacity (and an implicit
  // zero-capacity reverse arc).  Returns the arc index for later
  // inspection.
  std::uint32_t AddArc(std::uint32_t u, std::uint32_t v, FlowValue capacity);

  // Computes the max flow from `source` to `sink`.  May be called once per
  // network instance.
  FlowValue Solve(std::uint32_t source, std::uint32_t sink);

  // After Solve: true if `node` is on the source side of the min cut.
  bool InSourceSide(std::uint32_t node) const;

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t rev;  // index of the reverse arc in arcs_[to]
    FlowValue capacity;
  };

  bool Bfs(std::uint32_t source, std::uint32_t sink);
  FlowValue Dfs(std::uint32_t node, std::uint32_t sink, FlowValue limit);

  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> iter_;
};

}  // namespace corekit
