// Densest-subgraph algorithms (Section V-D, Table VIII of the paper).
//
// Density here is *average degree* 2 m(S) / n(S), the quantity Table VIII
// reports as davg.  Three solvers:
//
//   * OptDDensestSubgraph — the paper's Opt-D: the best single k-core by
//     average degree (Algorithm 5).  A 1/2-approximation, because the
//     kmax-core is among the scored candidates and is itself a
//     1/2-approximation [26].
//   * CoreAppDensestSubgraph — reimplementation of the core-based
//     approximation of Fang et al. [26] the paper compares against:
//     return the kmax-core set.  Also a 1/2-approximation.
//   * ExactDensestSubgraph — Goldberg's max-flow reduction; exponential
//     in neither n nor m but runs O(log n) max-flows, intended for the
//     test oracle and small graphs.

#pragma once

#include <vector>

#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

struct DensestSubgraphResult {
  // Vertices of the returned subgraph (parent-graph ids, sorted).
  std::vector<VertexId> vertices;
  // Average degree 2 m(S) / n(S) of the returned subgraph.
  double average_degree = 0.0;
};

// The paper's Opt-D (best single k-core under average degree), over the
// engine's cached substrate.
DensestSubgraphResult OptDDensestSubgraph(CoreEngine& engine);
// Convenience overload: builds a throwaway engine over `graph`.
DensestSubgraphResult OptDDensestSubgraph(const Graph& graph);

// CoreApp-style comparator (kmax-core set).
DensestSubgraphResult CoreAppDensestSubgraph(CoreEngine& engine);
DensestSubgraphResult CoreAppDensestSubgraph(const Graph& graph);

// Exact maximum-average-degree subgraph via Goldberg's binary search over
// min cuts.  Intended for graphs up to a few thousand edges (test oracle).
DensestSubgraphResult ExactDensestSubgraph(const Graph& graph);

// Average degree of the subgraph induced by `vertices` (helper shared by
// the solvers, tests, and benches).
double InducedAverageDegree(const Graph& graph,
                            const std::vector<VertexId>& vertices);

}  // namespace corekit
