#include "corekit/apps/anomaly_detection.h"

#include <algorithm>
#include <cmath>

#include "corekit/util/logging.h"

namespace corekit {

MirrorPatternResult DetectMirrorAnomalies(const Graph& graph,
                                          const CoreDecomposition& cores) {
  const VertexId n = graph.NumVertices();
  COREKIT_CHECK_EQ(cores.coreness.size(), n);
  MirrorPatternResult result;
  result.score.assign(n, 0.0);
  if (n == 0) return result;

  // Least squares of y = log(deg + 1) on x = log(coreness + 1).
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  double sum_yy = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const double x = std::log(static_cast<double>(cores.coreness[v]) + 1.0);
    const double y = std::log(static_cast<double>(graph.Degree(v)) + 1.0);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    sum_yy += y * y;
  }
  const double dn = static_cast<double>(n);
  const double var_x = sum_xx - sum_x * sum_x / dn;
  const double var_y = sum_yy - sum_y * sum_y / dn;
  const double cov = sum_xy - sum_x * sum_y / dn;
  result.beta = var_x > 0.0 ? cov / var_x : 0.0;
  result.alpha = (sum_y - result.beta * sum_x) / dn;
  result.correlation =
      (var_x > 0.0 && var_y > 0.0) ? cov / std::sqrt(var_x * var_y) : 0.0;

  for (VertexId v = 0; v < n; ++v) {
    const double x = std::log(static_cast<double>(cores.coreness[v]) + 1.0);
    const double y = std::log(static_cast<double>(graph.Degree(v)) + 1.0);
    result.score[v] = std::abs(y - (result.alpha + result.beta * x));
  }

  result.ranking.resize(n);
  for (VertexId v = 0; v < n; ++v) result.ranking[v] = v;
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [&result](VertexId a, VertexId b) {
                     return result.score[a] > result.score[b];
                   });
  return result;
}

MirrorPatternResult DetectMirrorAnomalies(CoreEngine& engine) {
  return DetectMirrorAnomalies(engine.graph(), engine.Cores());
}

}  // namespace corekit
