// Coreness-based anomaly detection (CoreScope, Shin, Eliassi-Rad &
// Faloutsos, ICDM 2016 — reference [53] of the paper).
//
// CoreScope's "mirror pattern": on real networks, a vertex's degree and
// coreness correlate strongly on a log-log scale.  Vertices that break
// the pattern are structurally anomalous — "loner-stars" with huge degree
// but tiny coreness (followers bought, spam targets) and unusually
// embedded low-degree vertices on the other side.  The detector fits the
// log-log regression degree ~ coreness and scores each vertex by its
// absolute residual.

#pragma once

#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct MirrorPatternResult {
  // Fitted model: log(degree) ~ alpha + beta * log(coreness + 1).
  double alpha = 0.0;
  double beta = 0.0;
  // Pearson correlation of the two log quantities (the "mirror" strength;
  // near 1 on well-behaved networks).
  double correlation = 0.0;
  // score[v] = |log(deg(v)+1) - predicted|; higher = more anomalous.
  std::vector<double> score;
  // Vertex ids sorted by descending score (the anomaly ranking).
  std::vector<VertexId> ranking;
};

// Fits the mirror pattern and ranks anomalies.  `cores` must be the
// decomposition of `graph`.  O(n + m).
MirrorPatternResult DetectMirrorAnomalies(const Graph& graph,
                                          const CoreDecomposition& cores);

// Same detector over the engine's graph and cached decomposition.
MirrorPatternResult DetectMirrorAnomalies(CoreEngine& engine);

}  // namespace corekit
