// Opt-SC: size-constrained k-core search (Section V-D, Table IX of the
// paper).
//
// Query (v, k, h): find a connected subgraph containing v with minimum
// degree >= k and size close to h.  Opt-SC uses the per-core average
// degrees computed by Opt-D (Algorithm 5 with the average-degree metric):
//
//   1. candidate selection — among the cores on v's core-forest
//      root path with coreness k' >= k, containing v, and size >= h, pick
//      the one with the highest average degree;
//   2. peeling — repeatedly delete the minimum-degree vertex (never v) and
//      cascade-delete anything whose degree drops below k, stopping as
//      soon as the subgraph size reaches h (or would break v);
//   3. answer — the connected component of v in what remains.
//
// Table IX reports the hit rate: queries answered with a subgraph within
// 5% of the requested size h.

#pragma once

#include <memory>
#include <vector>

#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct SckResult {
  bool found = false;
  // Vertices of the answer (contains the query vertex; min degree >= k
  // inside the answer).  Empty when !found.
  std::vector<VertexId> vertices;
};

// Answers many queries in time linear in the candidate core's size,
// against a CoreEngine's cached decomposition, ordering, forest and
// average-degree profile.
class SizeConstrainedCoreSolver {
 public:
  // Convenience: builds a private engine over `graph` (which must outlive
  // the solver).
  explicit SizeConstrainedCoreSolver(const Graph& graph);
  // Shares `engine`'s cached artifacts (and must not outlive it).
  explicit SizeConstrainedCoreSolver(CoreEngine& engine);

  // Answers query (query_vertex, k, h).  h is the target size.
  SckResult Solve(VertexId query_vertex, VertexId k, VertexId h) const;

  // True if the returned subgraph size is within `tolerance` (e.g. 0.05)
  // of h — the paper's hit criterion.
  static bool IsHit(const SckResult& result, VertexId h, double tolerance);

  const CoreDecomposition& cores() const { return *cores_; }
  const CoreForest& forest() const { return *forest_; }

 private:
  SizeConstrainedCoreSolver(std::unique_ptr<CoreEngine> owned,
                            CoreEngine* shared);

  std::unique_ptr<CoreEngine> owned_engine_;
  CoreEngine* engine_;
  const Graph* graph_;
  const CoreDecomposition* cores_;
  const CoreForest* forest_;
  const SingleCoreProfile* profile_;  // average-degree scores per node
};

}  // namespace corekit
