// Opt-SC: size-constrained k-core search (Section V-D, Table IX of the
// paper).
//
// Query (v, k, h): find a connected subgraph containing v with minimum
// degree >= k and size close to h.  Opt-SC uses the per-core average
// degrees computed by Opt-D (Algorithm 5 with the average-degree metric):
//
//   1. candidate selection — among the cores on v's core-forest
//      root path with coreness k' >= k, containing v, and size >= h, pick
//      the one with the highest average degree;
//   2. peeling — repeatedly delete the minimum-degree vertex (never v) and
//      cascade-delete anything whose degree drops below k, stopping as
//      soon as the subgraph size reaches h (or would break v);
//   3. answer — the connected component of v in what remains.
//
// Table IX reports the hit rate: queries answered with a subgraph within
// 5% of the requested size h.

#ifndef COREKIT_APPS_SIZE_CONSTRAINED_CORE_H_
#define COREKIT_APPS_SIZE_CONSTRAINED_CORE_H_

#include <vector>

#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct SckResult {
  bool found = false;
  // Vertices of the answer (contains the query vertex; min degree >= k
  // inside the answer).  Empty when !found.
  std::vector<VertexId> vertices;
};

// Precomputes decomposition, ordering, forest and the average-degree
// profile once; answers many queries in time linear in the candidate
// core's size.
class SizeConstrainedCoreSolver {
 public:
  explicit SizeConstrainedCoreSolver(const Graph& graph);

  // Answers query (query_vertex, k, h).  h is the target size.
  SckResult Solve(VertexId query_vertex, VertexId k, VertexId h) const;

  // True if the returned subgraph size is within `tolerance` (e.g. 0.05)
  // of h — the paper's hit criterion.
  static bool IsHit(const SckResult& result, VertexId h, double tolerance);

  const CoreDecomposition& cores() const { return cores_; }
  const CoreForest& forest() const { return forest_; }

 private:
  const Graph& graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
  CoreForest forest_;
  SingleCoreProfile profile_;  // average-degree scores per forest node
};

}  // namespace corekit

#endif  // COREKIT_APPS_SIZE_CONSTRAINED_CORE_H_
