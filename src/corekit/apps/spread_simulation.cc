#include "corekit/apps/spread_simulation.h"

#include <algorithm>

#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

namespace {

// One SIR realization; returns the number of ever-infected vertices.
// `state` is scratch (0 susceptible / 1 infected / 2 recovered), reset on
// exit.
std::uint64_t RunOnce(const Graph& graph, const std::vector<VertexId>& seeds,
                      const SirParams& params, Rng& rng,
                      std::vector<std::uint8_t>& state,
                      std::vector<VertexId>& frontier,
                      std::vector<VertexId>& next_frontier,
                      std::vector<VertexId>& touched) {
  frontier.clear();
  touched.clear();
  for (const VertexId s : seeds) {
    if (state[s] == 0) {
      state[s] = 1;
      frontier.push_back(s);
      touched.push_back(s);
    }
  }
  std::uint64_t infected_total = frontier.size();

  for (std::uint32_t step = 0;
       step < params.max_steps && !frontier.empty(); ++step) {
    next_frontier.clear();
    for (const VertexId v : frontier) {
      for (const VertexId u : graph.Neighbors(v)) {
        if (state[u] == 0 && rng.NextBool(params.infect_prob)) {
          state[u] = 1;
          next_frontier.push_back(u);
          touched.push_back(u);
          ++infected_total;
        }
      }
      state[v] = 2;  // recover after one infectious step
    }
    frontier.swap(next_frontier);
  }
  for (const VertexId v : frontier) state[v] = 2;  // cap hit: close out

  for (const VertexId v : touched) state[v] = 0;  // reset scratch
  return infected_total;
}

}  // namespace

double ExpectedOutbreakSize(const Graph& graph,
                            const std::vector<VertexId>& seeds,
                            const SirParams& params) {
  COREKIT_CHECK_GT(params.trials, 0u);
  for (const VertexId s : seeds) COREKIT_CHECK(s < graph.NumVertices());
  Rng rng(params.seed);
  std::vector<std::uint8_t> state(graph.NumVertices(), 0);
  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;
  std::vector<VertexId> touched;
  std::uint64_t total = 0;
  for (std::uint32_t t = 0; t < params.trials; ++t) {
    total += RunOnce(graph, seeds, params, rng, state, frontier,
                     next_frontier, touched);
  }
  return static_cast<double>(total) / static_cast<double>(params.trials);
}

double AverageSingleSeedOutbreak(const Graph& graph,
                                 const std::vector<VertexId>& candidates,
                                 const SirParams& params) {
  COREKIT_CHECK(!candidates.empty());
  double total = 0.0;
  SirParams per_seed = params;
  for (const VertexId candidate : candidates) {
    // Derive an independent stream per candidate for reproducibility.
    per_seed.seed = SplitMix64(params.seed + candidate).Next();
    total += ExpectedOutbreakSize(graph, {candidate}, per_seed);
  }
  return total / static_cast<double>(candidates.size());
}

namespace {

template <typename Score>
std::vector<VertexId> TopBy(VertexId n, VertexId count, Score score) {
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  count = std::min(count, n);
  std::partial_sort(all.begin(), all.begin() + count, all.end(),
                    [&score](VertexId a, VertexId b) {
                      return score(a) != score(b) ? score(a) > score(b)
                                                  : a < b;
                    });
  all.resize(count);
  return all;
}

}  // namespace

std::vector<VertexId> TopDegreeVertices(const Graph& graph, VertexId count) {
  return TopBy(graph.NumVertices(), count,
               [&graph](VertexId v) { return graph.Degree(v); });
}

std::vector<VertexId> TopCorenessVertices(const Graph& graph,
                                          const CoreDecomposition& cores,
                                          VertexId count) {
  return TopBy(graph.NumVertices(), count,
               [&cores](VertexId v) { return cores.coreness[v]; });
}

}  // namespace corekit
