// Exact maximum clique (Section V-D, Table VIII of the paper).
//
// Table VIII checks whether the maximum clique is contained in S*, the
// best average-degree k-core returned by Opt-D.  This solver provides the
// exact maximum clique: degeneracy-ordered decomposition into subproblems
// of size <= kmax + 1, each solved by Tomita-style branch and bound with
// a greedy-coloring upper bound.  Exponential worst case (the problem is
// NP-hard) but fast on sparse real-world-like graphs, exactly as in the
// maximum-clique literature [12].

#pragma once

#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// Vertices of one maximum clique (sorted ascending).  The empty graph
// yields an empty clique; any non-empty graph yields at least one vertex.
std::vector<VertexId> FindMaximumClique(const Graph& graph);

// True if `vertices` (distinct ids) form a clique in `graph`.
bool IsClique(const Graph& graph, const std::vector<VertexId>& vertices);

}  // namespace corekit
