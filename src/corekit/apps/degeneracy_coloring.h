// Smallest-last greedy coloring (Matula & Beck, JACM 1983 — reference
// [42] of the paper, the same work LCPS comes from; graph coloring is its
// title application).
//
// Coloring greedily in the *reverse* of the peel order (vertices return
// in largest-coreness-first order) guarantees at most degeneracy + 1 =
// kmax + 1 colors: when a vertex is colored, only its later-peeled
// neighbors are already colored, and there are at most kmax of those.
// This is often far below Δ + 1 on skewed graphs — the classic win the
// bench quantifies.

#pragma once

#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph.h"

namespace corekit {

struct GraphColoring {
  // color[v] in [0, num_colors).
  std::vector<VertexId> color;
  VertexId num_colors = 0;
};

// Greedy coloring along the reverse peel order.  Uses at most kmax + 1
// colors.  `cores` must be the decomposition of `graph` (its peel_order
// drives the schedule).
GraphColoring ColorBySmallestLast(const Graph& graph,
                                  const CoreDecomposition& cores);

// True if no edge is monochromatic.
bool IsProperColoring(const Graph& graph, const std::vector<VertexId>& color);

}  // namespace corekit
