// Core resilience: structural-collapse analysis via the core hierarchy
// (Morone, Del Ferraro & Makse, Nature Physics 2019 — reference [44] of
// the paper: "the k-core as a predictor of structural collapse").
//
// The diagnostic: remove vertices progressively (randomly, or
// adversarially by decreasing coreness / degree) and track how the inner
// core degrades — kmax, the size of the kmax-core, and the size of a
// fixed reference k-core.  Real mutualistic/social systems show an
// *abrupt* collapse of the inner core under targeted removal long before
// the giant component disappears; the bench (ext_resilience) reproduces
// that contrast between random and targeted attacks.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/engine/core_engine.h"
#include "corekit/graph/graph.h"

namespace corekit {

enum class RemovalStrategy : int {
  kRandom = 0,
  kHighestDegreeFirst = 1,
  kHighestCorenessFirst = 2,
};
const char* RemovalStrategyName(RemovalStrategy strategy);

struct ResiliencePoint {
  // Fraction of vertices removed so far.
  double removed_fraction = 0.0;
  // Degeneracy of the remaining graph.
  VertexId kmax = 0;
  // Vertices in the remaining graph's kmax-core set.
  VertexId inner_core_size = 0;
  // Vertices with coreness >= reference_k in the remaining graph.
  VertexId reference_core_size = 0;
  // Largest connected component of the remaining graph.
  VertexId largest_component = 0;
};

struct ResilienceCurve {
  RemovalStrategy strategy = RemovalStrategy::kRandom;
  VertexId reference_k = 0;
  std::vector<ResiliencePoint> points;
};

// Removes vertices under `strategy` in `steps` equal batches (targeted
// orders are computed once on the intact graph, the convention of [44]),
// recomputing the core structure after each batch.  `reference_k`
// defaults to half the initial kmax when 0.
//
// The engine overload reads the *intact* graph's decomposition from the
// engine's cache; the per-batch decompositions of the mutilated subgraphs
// are outside the engine's cached universe and are computed directly.
ResilienceCurve ComputeResilienceCurve(CoreEngine& engine,
                                       RemovalStrategy strategy,
                                       std::uint32_t steps,
                                       VertexId reference_k = 0,
                                       std::uint64_t seed = 1);
// Convenience overload: builds a throwaway engine over `graph`.
ResilienceCurve ComputeResilienceCurve(const Graph& graph,
                                       RemovalStrategy strategy,
                                       std::uint32_t steps,
                                       VertexId reference_k = 0,
                                       std::uint64_t seed = 1);

}  // namespace corekit
