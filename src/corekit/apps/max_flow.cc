#include "corekit/apps/max_flow.h"

#include <algorithm>
#include <limits>

#include "corekit/util/logging.h"

namespace corekit {

MaxFlowNetwork::MaxFlowNetwork(std::uint32_t num_nodes) : arcs_(num_nodes) {}

std::uint32_t MaxFlowNetwork::AddArc(std::uint32_t u, std::uint32_t v,
                                     FlowValue capacity) {
  COREKIT_CHECK(u < arcs_.size());
  COREKIT_CHECK(v < arcs_.size());
  COREKIT_CHECK_GE(capacity, 0);
  const auto u_index = static_cast<std::uint32_t>(arcs_[u].size());
  const auto v_index = static_cast<std::uint32_t>(arcs_[v].size());
  arcs_[u].push_back(Arc{v, v_index, capacity});
  arcs_[v].push_back(Arc{u, u_index, 0});
  return u_index;
}

bool MaxFlowNetwork::Bfs(std::uint32_t source, std::uint32_t sink) {
  level_.assign(arcs_.size(), -1);
  std::vector<std::uint32_t> queue{source};
  level_[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    for (const Arc& arc : arcs_[u]) {
      if (arc.capacity > 0 && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[sink] >= 0;
}

MaxFlowNetwork::FlowValue MaxFlowNetwork::Dfs(std::uint32_t node,
                                              std::uint32_t sink,
                                              FlowValue limit) {
  if (node == sink) return limit;
  for (std::uint32_t& i = iter_[node]; i < arcs_[node].size(); ++i) {
    Arc& arc = arcs_[node][i];
    if (arc.capacity <= 0 || level_[arc.to] != level_[node] + 1) continue;
    const FlowValue pushed =
        Dfs(arc.to, sink, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      arcs_[arc.to][arc.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

MaxFlowNetwork::FlowValue MaxFlowNetwork::Solve(std::uint32_t source,
                                                std::uint32_t sink) {
  COREKIT_CHECK_NE(source, sink);
  FlowValue total = 0;
  while (Bfs(source, sink)) {
    iter_.assign(arcs_.size(), 0);
    while (true) {
      const FlowValue pushed =
          Dfs(source, sink, std::numeric_limits<FlowValue>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

bool MaxFlowNetwork::InSourceSide(std::uint32_t node) const {
  COREKIT_CHECK(node < arcs_.size());
  COREKIT_CHECK(!level_.empty()) << "Solve() must run first";
  // After the final BFS (which failed to reach the sink), the source side
  // of the min cut is exactly the set of reachable nodes.
  return level_[node] >= 0;
}

}  // namespace corekit
