// Community search: given a query vertex, return its best community
// (the k-core use case of references [15], [16], [25], [57] of the
// paper, powered by the best-k machinery).
//
// The community candidates for a query vertex v are exactly the cores on
// its core-forest root path; under a metric on the primary values, the
// best community is the best-scoring core on that path — the per-vertex
// personalization of the paper's Problem 2, answered through the
// CoreHierarchyIndex and materialized on demand.

#pragma once

#include <memory>
#include <vector>

#include "corekit/core/hierarchy_index.h"
#include "corekit/core/metrics.h"
#include "corekit/engine/core_engine.h"

namespace corekit {

struct CommunitySearchResult {
  bool found = false;
  // The level whose core is returned (v's personalized best k).
  VertexId k = 0;
  double score = 0.0;
  // Members, sorted ascending; contains the query vertex.
  std::vector<VertexId> members;
};

// Answers queries in O(|answer| + log depth) against a CoreEngine's
// cached substrate (decomposition, ordering, forest, score profile) plus
// its own hierarchy index.
class CommunitySearcher {
 public:
  // Convenience: builds a private engine over `graph` (which must outlive
  // the searcher).
  CommunitySearcher(const Graph& graph, Metric metric);
  // Shares `engine`'s cached artifacts (and must not outlive it); other
  // consumers of the same engine hit the same cache.
  CommunitySearcher(CoreEngine& engine, Metric metric);

  // Best community of `query` under the searcher's metric; not found for
  // out-of-range or isolated vertices.
  CommunitySearchResult Search(VertexId query) const;

  // Best community of `query` at cohesion at least `min_k` (the
  // constrained variant of [15]/[16]); not found when coreness(query) <
  // min_k.
  CommunitySearchResult SearchWithMinK(VertexId query, VertexId min_k) const;

  const CoreDecomposition& cores() const { return *cores_; }

 private:
  CommunitySearcher(std::unique_ptr<CoreEngine> owned, CoreEngine* shared,
                    Metric metric);

  CommunitySearchResult Materialize(VertexId query, VertexId k) const;

  std::unique_ptr<CoreEngine> owned_engine_;
  CoreEngine* engine_;
  const Graph* graph_;
  const CoreDecomposition* cores_;
  const CoreForest* forest_;
  const SingleCoreProfile* profile_;
  CoreHierarchyIndex index_;
};

// Adapter for EngineServerOptions::extension_query: searches for the
// community of vertex `pick % n` and returns a deterministic fold of the
// answer.  Lives here (not in engine/) so the engine layer stays below
// apps/; the serving harness and its tests inject it explicitly.
std::uint64_t CommunitySearchQueryFold(CoreEngine& engine, Metric metric,
                                       std::uint64_t pick);

}  // namespace corekit
