// Status / Result<T>: the corekit error model for recoverable failures.
//
// Follows the database-systems idiom (RocksDB Status, Arrow Result): API
// functions that can fail for reasons outside the programmer's control
// (missing files, malformed inputs, out-of-range arguments supplied by a
// user) return Status or Result<T>.  Exceptions never cross the corekit
// public API; invariant violations abort via COREKIT_CHECK.
//
//   Result<Graph> g = ReadEdgeListFile(path);
//   if (!g.ok()) return g.status();
//   Use(g.value());

#pragma once

#include <string>
#include <utility>
#include <variant>

#include "corekit/util/logging.h"

namespace corekit {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

// A success-or-error value.  Cheap to copy on the OK path (no allocation).
class Status {
 public:
  // OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "IoError: could not open ...".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error.  Accessing value() on an error status is a fatal
// programming error.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // (the Arrow/absl convention).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    COREKIT_CHECK(!std::get<Status>(rep_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    COREKIT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    COREKIT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    COREKIT_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace corekit

// Propagates a non-OK Status from an expression, RocksDB-style.
#define COREKIT_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::corekit::Status _corekit_status = (expr);    \
    if (!_corekit_status.ok()) return _corekit_status; \
  } while (false)

namespace corekit::internal_status {

// Out-of-line message builder so COREKIT_CHECK_OK stays small.
inline std::string CheckOkMessage(const char* expr, const Status& status) {
  return "Check failed: " + std::string(expr) + " is OK (" +
         status.ToString() + ") ";
}

}  // namespace corekit::internal_status

// Fatal unless `expr` (a Status expression, evaluated once) is OK; the
// message includes the status code and text.  Usable as a stream for
// extra context, like COREKIT_CHECK.  For *recoverable* errors prefer
// COREKIT_RETURN_IF_ERROR; this macro is for statuses that can only be
// non-OK through a programming error.
#define COREKIT_CHECK_OK(expr)                                          \
  for (const ::corekit::Status _corekit_check_ok_status = (expr);       \
       !_corekit_check_ok_status.ok();)                                 \
  COREKIT_LOG_FATAL << ::corekit::internal_status::CheckOkMessage(      \
      #expr, _corekit_check_ok_status)
