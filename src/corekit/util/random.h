// Deterministic pseudo-random number generation for workload generators and
// property tests.
//
// The generators (src/corekit/gen/) must be reproducible across runs and
// platforms, so corekit carries its own engines instead of relying on the
// standard library's unspecified distributions:
//   * SplitMix64   — seed expander / cheap stateless stream.
//   * Xoshiro256** — the workhorse engine (Blackman & Vigna 2018).
// Rng wraps Xoshiro256** with the bounded-int / real / shuffle helpers the
// library needs, all with fully specified behaviour.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "corekit/util/logging.h"

namespace corekit {

// SplitMix64: expands a 64-bit seed into a high-quality stream.  Mainly used
// to seed Xoshiro and to derive independent sub-seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// The main corekit random engine (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  // Uniform 64-bit word.
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be positive.  Uses Lemire's
  // multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound) {
    COREKIT_DCHECK(bound > 0);
    // 128-bit multiply; __uint128_t is available on all supported targets.
    std::uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    COREKIT_DCHECK(lo <= hi);
    const auto range =
        static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
    if (range == 0) return static_cast<std::int64_t>(NextUint64());
    return lo + static_cast<std::int64_t>(NextBounded(range));
  }

  // Uniform real in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent generator (for parallel or per-component streams).
  Rng Split() { return Rng(NextUint64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

// Deterministic 64-bit seed derived from a human-readable name (FNV-1a +
// SplitMix64 finalizer).  Used so each synthetic dataset gets a stable,
// independent random stream.
std::uint64_t SeedFromString(std::string_view name);

}  // namespace corekit
