#include "corekit/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace corekit {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

bool Json::bool_value() const {
  COREKIT_CHECK(is_bool()) << "Json::bool_value() on non-bool";
  return bool_;
}

double Json::number_value() const {
  COREKIT_CHECK(is_number()) << "Json::number_value() on non-number";
  return number_;
}

const std::string& Json::string_value() const {
  COREKIT_CHECK(is_string()) << "Json::string_value() on non-string";
  return string_;
}

const std::vector<Json>& Json::items() const {
  COREKIT_CHECK(is_array()) << "Json::items() on non-array";
  return array_;
}

void Json::Append(Json value) {
  COREKIT_CHECK(is_array()) << "Json::Append() on non-array";
  array_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  COREKIT_CHECK(is_object()) << "Json::members() on non-object";
  return object_;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  COREKIT_CHECK(is_object()) << "Json::Set() on non-object";
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return existing;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

double Json::NumberOr(std::string_view key, double fallback) const {
  const Json* member = Find(key);
  return member != nullptr && member->is_number() ? member->number_value()
                                                  : fallback;
}

std::string Json::StringOr(std::string_view key, std::string fallback) const {
  const Json* member = Find(key);
  return member != nullptr && member->is_string() ? member->string_value()
                                                  : fallback;
}

std::string JsonFormatNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  char buffer[40];
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  // Shortest representation that round-trips: try increasing precision.
  for (const int precision : {9, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // UTF-8 passthrough
        }
    }
  }
  out += '"';
  return out;
}

void Json::DumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += JsonFormatNumber(number_);
      return;
    case Type::kString:
      out += JsonQuote(string_);
      return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        item.DumpTo(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += JsonQuote(key);
        out += ':';
        value.DumpTo(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

// --- Parsing ---------------------------------------------------------------

namespace {

// Like COREKIT_RETURN_IF_ERROR, but also usable from functions returning
// Result<Json> (the implicit Status -> Result conversion applies).
#define COREKIT_RETURN_IF_ERROR_RESULT(expr)        \
  do {                                              \
    ::corekit::Status _status = (expr);             \
    if (!_status.ok()) return _status;              \
  } while (false)

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    Json root;
    COREKIT_RETURN_IF_ERROR_RESULT(ParseValue(root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(Json& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out = Json();
        return ConsumeLiteral("null");
      case 't':
        out = Json(true);
        return ConsumeLiteral("true");
      case 'f':
        out = Json(false);
        return ConsumeLiteral("false");
      case '"': {
        std::string value;
        COREKIT_RETURN_IF_ERROR_RESULT(ParseString(value));
        out = Json(std::move(value));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      COREKIT_RETURN_IF_ERROR_RESULT(ParseValue(item, depth + 1));
      out.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      std::string key;
      COREKIT_RETURN_IF_ERROR_RESULT(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      Json value;
      COREKIT_RETURN_IF_ERROR_RESULT(ParseValue(value, depth + 1));
      out.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseHex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    return Status::OK();
  }

  void AppendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          COREKIT_RETURN_IF_ERROR_RESULT(ParseHex4(cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            COREKIT_RETURN_IF_ERROR_RESULT(ParseHex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Json& out) {
    const std::size_t start = pos_;
    (void)Consume('-');
    if (pos_ >= text_.size()) return Error("truncated number");
    if (!Consume('0')) {
      if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("truncated fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("truncated exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = Json(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

#undef COREKIT_RETURN_IF_ERROR_RESULT

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace corekit
