#include "corekit/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace corekit {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity GetMinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool emit =
      static_cast<int>(severity_) >=
          g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal;
  if (emit) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
                 line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace corekit
