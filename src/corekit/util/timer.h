// Wall-clock timing utilities used by the benchmark harnesses (Figures 7-8
// of the paper report end-to-end runtime of baseline vs optimal algorithms).

#pragma once

#include <chrono>
#include <cstdint>

namespace corekit {

// A simple monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace corekit
