#include "corekit/util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "corekit/util/logging.h"

namespace corekit {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  COREKIT_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  COREKIT_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string TablePrinter::FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace corekit
