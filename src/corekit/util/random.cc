#include "corekit/util/random.h"

#include <string_view>

namespace corekit {

// FNV-1a, finalized through SplitMix64 so short names still give
// well-mixed seeds.  Declared in random.h's companion below.
std::uint64_t SeedFromString(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h).Next();
}

}  // namespace corekit
