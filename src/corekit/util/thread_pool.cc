#include "corekit/util/thread_pool.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

// The pool whose job chunks the current thread is executing right now
// (caller or worker), nullptr outside any ParallelFor body.  Reentrancy
// detection: a nested ParallelFor on the same pool is a programming error
// that would otherwise self-deadlock on entry_mutex_ (caller) or starve
// forever (worker); the thread-local marker lets Debug builds fail loudly
// *before* touching any lock, deterministically on every thread count —
// while a concurrent call from an unrelated thread (tls_draining_pool ==
// nullptr there) passes and simply queues at the entry mutex.
thread_local const ThreadPool* tls_draining_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::uint32_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = std::min(num_threads, 64u);
  workers_.reserve(num_threads_ - 1);
  for (std::uint32_t t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainCurrentJob() {
  const ThreadPool* previous = tls_draining_pool;
  tls_draining_pool = this;
  while (true) {
    const std::size_t begin =
        next_index_.fetch_add(job_chunk_, std::memory_order_relaxed);
    if (begin >= job_total_) break;
    const std::size_t end = std::min(job_total_, begin + job_chunk_);
    (*job_fn_)(begin, end);
  }
  tls_draining_pool = previous;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_job = 0;
  while (true) {
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && job_id_ == last_job) {
        wake_workers_.Wait(mutex_);
      }
      if (shutting_down_) return;
      last_job = job_id_;
    }
    DrainCurrentJob();
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out signals the caller.
      MutexLock lock(mutex_);
      job_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t total, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  COREKIT_CHECK_GT(chunk, 0u);
  if (total == 0) return;
  // Reentrancy (a nested call from inside fn, on any thread of this pool)
  // would self-deadlock below; fail loudly first.  Checked before any
  // lock so the failure is deterministic on every thread count.  Under
  // NDEBUG the marker test is not evaluated (zero release overhead).
  COREKIT_DCHECK(tls_draining_pool != this);
  if (num_threads_ == 1 || total <= chunk) {
    // Serial fast path: locals only, so concurrent callers need no lock
    // here (and a 1-thread pool stays lock-free under contention).  The
    // marker still guards against nesting.
    const ThreadPool* previous = tls_draining_pool;
    tls_draining_pool = this;
    for (std::size_t begin = 0; begin < total; begin += chunk) {
      fn(begin, std::min(total, begin + chunk));
    }
    tls_draining_pool = previous;
    return;
  }

  // One job owns the pool at a time; concurrent callers queue here.
  MutexLock entry(entry_mutex_);
  {
    MutexLock lock(mutex_);
    job_fn_ = &fn;
    job_total_ = total;
    job_chunk_ = chunk;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_.store(static_cast<std::uint32_t>(workers_.size()),
                          std::memory_order_relaxed);
    ++job_id_;
  }
  wake_workers_.NotifyAll();

  // The caller works too.
  DrainCurrentJob();

  MutexLock lock(mutex_);
  while (active_workers_.load(std::memory_order_acquire) != 0) {
    job_done_.Wait(mutex_);
  }
  job_fn_ = nullptr;
}

}  // namespace corekit
