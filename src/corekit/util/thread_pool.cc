#include "corekit/util/thread_pool.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

ThreadPool::ThreadPool(std::uint32_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = std::min(num_threads, 64u);
  workers_.reserve(num_threads_ - 1);
  for (std::uint32_t t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainCurrentJob() {
  while (true) {
    const std::size_t begin =
        next_index_.fetch_add(job_chunk_, std::memory_order_relaxed);
    if (begin >= job_total_) return;
    const std::size_t end = std::min(job_total_, begin + job_chunk_);
    (*job_fn_)(begin, end);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_job = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [this, last_job] {
        return shutting_down_ || job_id_ != last_job;
      });
      if (shutting_down_) return;
      last_job = job_id_;
    }
    DrainCurrentJob();
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out signals the caller.
      std::lock_guard<std::mutex> lock(mutex_);
      job_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t total, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  COREKIT_CHECK_GT(chunk, 0u);
  if (total == 0) return;
  // Nested calls (from fn, on any thread) would deadlock on the shared job
  // state; fail loudly instead.  The flag is enforced on the serial fast
  // path too: whether a nested call deadlocks depends on the thread count,
  // so a debug run must trip even where release would happen to survive.
  // Under NDEBUG the exchange is not evaluated (zero release overhead).
  COREKIT_DCHECK(!in_flight_.exchange(true, std::memory_order_acq_rel));
  if (num_threads_ == 1 || total <= chunk) {
    // Serial fast path.
    for (std::size_t begin = 0; begin < total; begin += chunk) {
      fn(begin, std::min(total, begin + chunk));
    }
    in_flight_.store(false, std::memory_order_release);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_total_ = total;
    job_chunk_ = chunk;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_.store(static_cast<std::uint32_t>(workers_.size()),
                          std::memory_order_relaxed);
    ++job_id_;
  }
  wake_workers_.notify_all();

  // The caller works too.
  DrainCurrentJob();

  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [this] {
    return active_workers_.load(std::memory_order_acquire) == 0;
  });
  job_fn_ = nullptr;
  in_flight_.store(false, std::memory_order_release);
}

}  // namespace corekit
