// Fixed-width ASCII table printer for the benchmark harnesses.
//
// Every bench binary regenerates one paper table/figure as rows on stdout;
// TablePrinter keeps their formatting uniform:
//
//   TablePrinter t({"Dataset", "n", "m", "davg", "kmax"});
//   t.AddRow({"er-small", "10000", "50000", "10.0", "12"});
//   t.Print(std::cout);

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace corekit {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the header, a separator, and all rows, each column padded to its
  // widest cell.
  void Print(std::ostream& os) const;

  // Formats a double with `digits` significant decimals, trimming trailing
  // zeros ("3.1700" -> "3.17", "2.0" -> "2").
  static std::string FormatDouble(double value, int digits = 4);

  // Formats seconds adaptively ("812us", "3.42ms", "1.27s").
  static std::string FormatSeconds(double seconds);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corekit
