// A small fixed-size thread pool with a blocking parallel-for.
//
// The parallel substrates (parallel peel, parallel triangle counting)
// need to run many short waves of data-parallel work; spawning threads
// per wave costs more than the work itself (measurably so in
// bench/ablation_ordering).  ThreadPool keeps the workers alive and hands
// them index ranges.
//
// Semantics: ParallelFor(total, chunk, fn) invokes fn(begin, end) over
// disjoint ranges covering [0, total) and returns when all ranges are
// done.  fn runs concurrently on pool threads AND the calling thread;
// exceptions are not supported (corekit is exception-free).
//
// Concurrency: ParallelFor may be called from multiple threads at once
// (the shared-CoreEngine serving path).  Calls serialize on an internal
// entry mutex — one job drains the pool at a time, later callers queue at
// the entry and run their jobs back to back.  What stays forbidden is
// *reentrancy*: fn must not call ParallelFor on the same pool (from the
// caller or a worker) — that would self-deadlock on the entry hand-off,
// so Debug builds trip a COREKIT_DCHECK via a thread-local "currently
// draining this pool" marker before touching any lock.  Nesting into a
// *different* pool remains allowed.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "corekit/util/thread_annotations.h"

namespace corekit {

class ThreadPool {
 public:
  // `num_threads` = 0 picks hardware concurrency (at least 1).  The pool
  // owns num_threads - 1 workers; the calling thread participates in
  // every ParallelFor, so num_threads == 1 degenerates to serial (no
  // workers are spawned, fn runs entirely on the calling thread, and no
  // lock is taken on the serial fast path).
  explicit ThreadPool(std::uint32_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::uint32_t num_threads() const { return num_threads_; }

  // Runs fn(begin, end) over chunks of [0, total).  Blocks until done.
  // Safe to call concurrently from several threads (calls serialize, see
  // the header comment); NOT reentrant — no nested ParallelFor on the
  // same pool from inside fn, enforced by a COREKIT_DCHECK in Debug.
  void ParallelFor(std::size_t total, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& fn)
      COREKIT_EXCLUDES(entry_mutex_, mutex_);

 private:
  void WorkerLoop() COREKIT_EXCLUDES(mutex_);
  // Claims and processes chunks until the current job is exhausted.
  void DrainCurrentJob();

  std::uint32_t num_threads_;
  std::vector<std::thread> workers_;

  // Serializes concurrent ParallelFor callers: held for the whole span of
  // one job, it guards the *right to run a job* — a virtual resource with
  // no data member sibling, hence the waiver.
  Mutex entry_mutex_;  // corekit-lint: allow(lock-discipline)

  Mutex mutex_;
  CondVar wake_workers_;
  CondVar job_done_;
  bool shutting_down_ COREKIT_GUARDED_BY(mutex_) = false;

  // Incremented under mutex_ per ParallelFor; the bump is the handshake
  // that publishes the job fields below to the workers.
  std::uint64_t job_id_ COREKIT_GUARDED_BY(mutex_) = 0;

  // Current job description.  Written by the caller under mutex_ *before*
  // the job_id_ bump, then read by workers without a lock: a worker only
  // reaches these after observing the new job_id_ under mutex_, and the
  // caller only rewrites them after active_workers_ hits zero.  That
  // release/acquire handshake — not entry_mutex_, and not a per-access
  // lock — is what makes the unguarded reads safe, so they are
  // deliberately not COREKIT_GUARDED_BY-annotated.
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_total_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> next_index_{0};
  std::atomic<std::uint32_t> active_workers_{0};
};

}  // namespace corekit
