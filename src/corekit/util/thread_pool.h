// A small fixed-size thread pool with a blocking parallel-for.
//
// The parallel substrates (parallel peel, parallel triangle counting)
// need to run many short waves of data-parallel work; spawning threads
// per wave costs more than the work itself (measurably so in
// bench/ablation_ordering).  ThreadPool keeps the workers alive and hands
// them index ranges.
//
// Semantics: ParallelFor(total, chunk, fn) invokes fn(begin, end) over
// disjoint ranges covering [0, total) and returns when all ranges are
// done.  fn runs concurrently on pool threads AND the calling thread;
// exceptions are not supported (corekit is exception-free).

#ifndef COREKIT_UTIL_THREAD_POOL_H_
#define COREKIT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace corekit {

class ThreadPool {
 public:
  // `num_threads` = 0 picks hardware concurrency (at least 1).  The pool
  // owns num_threads - 1 workers; the calling thread participates in
  // every ParallelFor, so num_threads == 1 degenerates to serial.
  explicit ThreadPool(std::uint32_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::uint32_t num_threads() const { return num_threads_; }

  // Runs fn(begin, end) over chunks of [0, total).  Blocks until done.
  // Not reentrant (no nested ParallelFor from inside fn, on any thread):
  // a nested call would deadlock on the shared job state.  Debug builds
  // enforce this with a COREKIT_DCHECK on an in-flight flag.
  void ParallelFor(std::size_t total, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and processes chunks until the current job is exhausted.
  void DrainCurrentJob();

  std::uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable job_done_;
  bool shutting_down_ = false;

  // Current job state.
  std::uint64_t job_id_ = 0;  // incremented per ParallelFor
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_total_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> next_index_{0};
  std::atomic<std::uint32_t> active_workers_{0};
  // Set for the duration of a ParallelFor; nested calls trip the DCHECK.
  std::atomic<bool> in_flight_{false};
};

}  // namespace corekit

#endif  // COREKIT_UTIL_THREAD_POOL_H_
