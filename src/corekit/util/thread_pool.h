// A small fixed-size thread pool with a blocking parallel-for.
//
// The parallel substrates (parallel peel, parallel triangle counting)
// need to run many short waves of data-parallel work; spawning threads
// per wave costs more than the work itself (measurably so in
// bench/ablation_ordering).  ThreadPool keeps the workers alive and hands
// them index ranges.
//
// Semantics: ParallelFor(total, chunk, fn) invokes fn(begin, end) over
// disjoint ranges covering [0, total) and returns when all ranges are
// done.  fn runs concurrently on pool threads AND the calling thread;
// exceptions are not supported (corekit is exception-free).
//
// Concurrency: ParallelFor may be called from multiple threads at once
// (the shared-CoreEngine serving path).  Calls serialize on an internal
// entry mutex — one job drains the pool at a time, later callers queue at
// the entry and run their jobs back to back.  What stays forbidden is
// *reentrancy*: fn must not call ParallelFor on the same pool (from the
// caller or a worker) — that would self-deadlock on the entry hand-off,
// so Debug builds trip a COREKIT_DCHECK via a thread-local "currently
// draining this pool" marker before touching any lock.  Nesting into a
// *different* pool remains allowed.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace corekit {

class ThreadPool {
 public:
  // `num_threads` = 0 picks hardware concurrency (at least 1).  The pool
  // owns num_threads - 1 workers; the calling thread participates in
  // every ParallelFor, so num_threads == 1 degenerates to serial (no
  // workers are spawned, fn runs entirely on the calling thread, and no
  // lock is taken on the serial fast path).
  explicit ThreadPool(std::uint32_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::uint32_t num_threads() const { return num_threads_; }

  // Runs fn(begin, end) over chunks of [0, total).  Blocks until done.
  // Safe to call concurrently from several threads (calls serialize, see
  // the header comment); NOT reentrant — no nested ParallelFor on the
  // same pool from inside fn, enforced by a COREKIT_DCHECK in Debug.
  void ParallelFor(std::size_t total, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and processes chunks until the current job is exhausted.
  void DrainCurrentJob();

  std::uint32_t num_threads_;
  std::vector<std::thread> workers_;

  // Serializes concurrent ParallelFor callers: held for the whole span of
  // one job so the shared job state below is owned by exactly one caller.
  std::mutex entry_mutex_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable job_done_;
  bool shutting_down_ = false;

  // Current job state (owned by the entry_mutex_ holder).
  std::uint64_t job_id_ = 0;  // incremented per ParallelFor
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_total_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> next_index_{0};
  std::atomic<std::uint32_t> active_workers_{0};
};

}  // namespace corekit
