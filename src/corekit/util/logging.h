// Lightweight logging and invariant-checking macros for corekit.
//
// Recoverable failures (I/O errors, malformed inputs) are reported through
// corekit::Status (see status.h).  The macros in this header are for
// *programming errors*: violated invariants abort the process with a
// source-located message, in both debug and release builds.
//
//   COREKIT_CHECK(cond) << "extra context " << value;
//   COREKIT_CHECK_EQ(a, b);
//   COREKIT_DCHECK(cond);           // debug-only variant
//   COREKIT_LOG(INFO) << "message";

#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace corekit {

enum class LogSeverity : int {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal_logging {

// Accumulates a log message and emits it (to stderr) on destruction.
// A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Lets the ternary in COREKIT_CHECK consume a streamed LogMessage:
// operator& binds looser than operator<<, so the whole stream expression
// is built first, then voidified to match the other ternary branch.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging

// Minimum severity emitted to stderr; messages below it are dropped.
// Defaults to kInfo.  Thread-safe to set before spawning threads.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity GetMinLogSeverity();

}  // namespace corekit

#define COREKIT_LOG_INFO \
  ::corekit::internal_logging::LogMessage( \
      ::corekit::LogSeverity::kInfo, __FILE__, __LINE__)
#define COREKIT_LOG_WARNING \
  ::corekit::internal_logging::LogMessage( \
      ::corekit::LogSeverity::kWarning, __FILE__, __LINE__)
#define COREKIT_LOG_ERROR \
  ::corekit::internal_logging::LogMessage( \
      ::corekit::LogSeverity::kError, __FILE__, __LINE__)
#define COREKIT_LOG_FATAL \
  ::corekit::internal_logging::LogMessage( \
      ::corekit::LogSeverity::kFatal, __FILE__, __LINE__)

#define COREKIT_LOG(severity) COREKIT_LOG_##severity

// Fatal unless `cond` holds.  Usable as a stream for extra context.
#define COREKIT_CHECK(cond)                             \
  (cond) ? (void)0                                      \
         : ::corekit::internal_logging::Voidify() &     \
               COREKIT_LOG_FATAL << "Check failed: " #cond " "

namespace corekit::internal_logging {

// Out-of-line check-with-operands helper so the macro below stays small.
template <typename A, typename B>
std::string CheckOpMessage(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "Check failed: " << expr << " (" << a << " vs. " << b << ") ";
  return os.str();
}

}  // namespace corekit::internal_logging

#define COREKIT_CHECK_OP(op, a, b)                              \
  ((a)op(b)) ? (void)0                                          \
             : ::corekit::internal_logging::Voidify() &         \
                   COREKIT_LOG_FATAL                            \
                       << ::corekit::internal_logging::CheckOpMessage( \
                              #a " " #op " " #b, (a), (b))

#define COREKIT_CHECK_EQ(a, b) COREKIT_CHECK_OP(==, a, b)
#define COREKIT_CHECK_NE(a, b) COREKIT_CHECK_OP(!=, a, b)
#define COREKIT_CHECK_LT(a, b) COREKIT_CHECK_OP(<, a, b)
#define COREKIT_CHECK_LE(a, b) COREKIT_CHECK_OP(<=, a, b)
#define COREKIT_CHECK_GT(a, b) COREKIT_CHECK_OP(>, a, b)
#define COREKIT_CHECK_GE(a, b) COREKIT_CHECK_OP(>=, a, b)

#ifdef NDEBUG
// Compiles (but does not evaluate) the condition, so release builds catch
// type errors in DCHECK expressions.  Not usable as a stream.
#define COREKIT_DCHECK(cond) ((void)sizeof(!(cond)))
#define COREKIT_DCHECK_EQ(a, b) COREKIT_DCHECK((a) == (b))
#define COREKIT_DCHECK_LT(a, b) COREKIT_DCHECK((a) < (b))
#define COREKIT_DCHECK_LE(a, b) COREKIT_DCHECK((a) <= (b))
#else
#define COREKIT_DCHECK(cond) COREKIT_CHECK(cond)
#define COREKIT_DCHECK_EQ(a, b) COREKIT_CHECK_EQ(a, b)
#define COREKIT_DCHECK_LT(a, b) COREKIT_CHECK_LT(a, b)
#define COREKIT_DCHECK_LE(a, b) COREKIT_CHECK_LE(a, b)
#endif
