// A minimal JSON document model: parse, navigate, mutate, serialize.
//
// corekit emits machine-readable artifacts in several places — the
// engine's StageStats dump, the benchmark harness's BENCH_<suite>.json
// files, hierarchy exports — and the regression tooling (bench_diff, the
// schema golden tests) must read them back without an external
// dependency.  This is a deliberately small, allocation-friendly value
// type: objects preserve insertion order (stable serialization for
// golden files and diffs), numbers are doubles (integers round-trip
// exactly up to 2^53, far beyond any counter in a BENCH file), and
// parsing is strict recursive descent with a depth limit.
//
//   Result<Json> doc = Json::Parse(text);
//   const Json* cases = doc->Find("cases");
//   for (const Json& c : cases->items()) { ... }
//
// Not a streaming parser; documents here are kilobytes, not gigabytes.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "corekit/util/status.h"

namespace corekit {

class Json {
 public:
  enum class Type : int {
    kNull = 0,
    kBool = 1,
    kNumber = 2,
    kString = 3,
    kArray = 4,
    kObject = 5,
  };

  // Null by default.
  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::int64_t value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::uint64_t value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT

  static Json Array() { return Json(Type::kArray); }
  static Json Object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; CHECK-fail on type mismatch (programming error).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;

  // --- Arrays --------------------------------------------------------------
  const std::vector<Json>& items() const;
  void Append(Json value);

  // --- Objects (insertion-ordered) -----------------------------------------
  const std::vector<std::pair<std::string, Json>>& members() const;
  // The member's value, or nullptr when absent (or not an object).
  const Json* Find(std::string_view key) const;
  // Inserts or overwrites; returns the stored value.
  Json& Set(std::string key, Json value);

  // Convenience: Find(key)->number_value() with a fallback for absent or
  // non-numeric members.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;

  // Compact single-line serialization.  Doubles print with enough digits
  // to round-trip; integral values print without a fractional part.
  std::string Dump() const;

  // Strict JSON parsing (UTF-8 passthrough, \uXXXX escapes with surrogate
  // pairs, max nesting depth 64).  Trailing garbage is a Corruption error.
  static Result<Json> Parse(std::string_view text);

 private:
  explicit Json(Type type) : type_(type) {}
  void DumpTo(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// Serializes one double the way Json::Dump does (shared with the ad-hoc
// emitters that predate Json, e.g. StageStats::ToJson).
std::string JsonFormatNumber(double value);

// Escapes and quotes `text` as a JSON string literal.
std::string JsonQuote(std::string_view text);

}  // namespace corekit
