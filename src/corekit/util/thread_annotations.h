#pragma once

// Clang Thread Safety Analysis surface for corekit.
//
// Every mutex-guarded member and locking function in src/ is annotated
// with the COREKIT_* macros below so that a Clang build with
// `-Wthread-safety -Werror=thread-safety` (the CI `thread-safety` job)
// proves the lock discipline at compile time.  Under GCC and MSVC the
// macros expand to nothing; the wrappers degrade to thin forwarding
// shims over the std primitives with zero behavioural difference.
//
// Conventions (see DESIGN.md, "Static concurrency analysis"):
//  - Data members protected by a mutex carry COREKIT_GUARDED_BY(mu).
//  - Functions that must be entered with a mutex held carry
//    COREKIT_REQUIRES(mu); functions that must NOT be entered with it
//    held carry COREKIT_EXCLUDES(mu).
//  - Raw std::mutex / std::condition_variable declarations are banned
//    under src/ (corekit_lint `lock-discipline` pass): libstdc++'s
//    types carry no capability attributes, so the analysis cannot see
//    them.  Use corekit::Mutex / corekit::CondVar instead.
//  - What the analysis cannot express (dynamic lock sets, "guarded by
//    any one of several mutexes") is fenced behind small helpers marked
//    COREKIT_NO_THREAD_SAFETY_ANALYSIS with a comment explaining why.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define COREKIT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COREKIT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Type annotations.
#define COREKIT_CAPABILITY(x) COREKIT_THREAD_ANNOTATION(capability(x))
#define COREKIT_SCOPED_CAPABILITY COREKIT_THREAD_ANNOTATION(scoped_lockable)

// Member annotations.
#define COREKIT_GUARDED_BY(x) COREKIT_THREAD_ANNOTATION(guarded_by(x))
#define COREKIT_PT_GUARDED_BY(x) COREKIT_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations.
#define COREKIT_REQUIRES(...) \
  COREKIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define COREKIT_EXCLUDES(...) \
  COREKIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define COREKIT_ACQUIRE(...) \
  COREKIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define COREKIT_RELEASE(...) \
  COREKIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define COREKIT_TRY_ACQUIRE(...) \
  COREKIT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define COREKIT_RETURN_CAPABILITY(x) \
  COREKIT_THREAD_ANNOTATION(lock_returned(x))
#define COREKIT_NO_THREAD_SAFETY_ANALYSIS \
  COREKIT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace corekit {

// std::mutex with the `capability` attribute the analysis needs.
// Both spellings of the lock interface are provided: Lock()/Unlock()
// for corekit code, lock()/unlock() so the wrapper still satisfies the
// standard Lockable requirements (std::condition_variable_any, and any
// generic code that expects them).
class COREKIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COREKIT_ACQUIRE() { mu_.lock(); }
  void Unlock() COREKIT_RELEASE() { mu_.unlock(); }
  bool TryLock() COREKIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock() COREKIT_ACQUIRE() { mu_.lock(); }
  void unlock() COREKIT_RELEASE() { mu_.unlock(); }
  bool try_lock() COREKIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock over corekit::Mutex; the scoped-capability attribute lets
// the analysis track the critical section it delimits.
class COREKIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COREKIT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() COREKIT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable paired with corekit::Mutex.
//
// Deliberately no predicate overload: Clang analyzes a wait-predicate
// lambda as a separate, unannotated function, so guarded members read
// inside one escape the analysis.  Callers write the explicit loop
//
//     while (!condition) cv.Wait(mu);
//
// which keeps every guarded read inside the annotated critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires `mu` before
  // returning — the caller's capability is held again on return, which
  // is why the analysis is happy with REQUIRES here.
  void Wait(Mutex& mu) COREKIT_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace corekit
