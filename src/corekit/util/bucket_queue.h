// BucketQueue: a monotone integer priority queue over a bounded key range.
//
// This is the bucket structure that makes LCPS forest construction
// (Algorithm 4 of the paper) run in O(m): keys are corenesses in
// [0, kmax], PopMax scans downward from a cached cursor, and because every
// push during one tree's exploration uses keys <= the current maximum + 1,
// the cursor moves O(kmax + pushes) in total.
//
// Values are stored per-bucket in LIFO order.  Duplicate pushes of the same
// value are allowed (LCPS relies on lazy deletion via its visited set).

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "corekit/util/logging.h"

namespace corekit {

template <typename V>
class BucketQueue {
 public:
  // Keys must lie in [0, max_key].
  explicit BucketQueue(std::uint32_t max_key)
      : buckets_(static_cast<std::size_t>(max_key) + 1), size_(0), cursor_(0) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void Push(std::uint32_t key, V value) {
    COREKIT_DCHECK(key < buckets_.size());
    buckets_[key].push_back(std::move(value));
    ++size_;
    if (key > cursor_) cursor_ = key;
  }

  // Removes and returns (key, value) with the maximum key.  Queue must be
  // non-empty.
  std::pair<std::uint32_t, V> PopMax() {
    COREKIT_CHECK(!empty());
    while (buckets_[cursor_].empty()) {
      COREKIT_DCHECK(cursor_ > 0);
      --cursor_;
    }
    V value = std::move(buckets_[cursor_].back());
    buckets_[cursor_].pop_back();
    --size_;
    return {cursor_, std::move(value)};
  }

  // Drops all elements but keeps the allocated bucket array (reused across
  // trees in the forest construction).
  void Clear() {
    if (size_ == 0) {
      cursor_ = 0;
      return;
    }
    for (auto& bucket : buckets_) bucket.clear();
    size_ = 0;
    cursor_ = 0;
  }

 private:
  std::vector<std::vector<V>> buckets_;
  std::size_t size_;
  std::uint32_t cursor_;
};

}  // namespace corekit
