#include "corekit/distributed/distributed_core.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

VertexId CappedHIndex(const std::vector<VertexId>& estimates, VertexId cap) {
  if (cap == 0) return 0;
  // count[k] = number of entries with value >= k (clamped to cap).
  std::vector<VertexId> count(static_cast<std::size_t>(cap) + 1, 0);
  for (const VertexId est : estimates) {
    ++count[std::min(est, cap)];
  }
  VertexId at_least = 0;
  for (VertexId k = cap;; --k) {
    at_least += count[k];
    if (at_least >= k) return k;
    if (k == 0) break;
  }
  return 0;
}

DistributedCoreResult ComputeCoreDecompositionDistributed(
    const Graph& graph, VertexId max_rounds) {
  const VertexId n = graph.NumVertices();
  DistributedCoreResult result;
  result.coreness.resize(n);
  for (VertexId v = 0; v < n; ++v) result.coreness[v] = graph.Degree(v);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<VertexId>& est = result.coreness;
  // Active set: vertices whose estimate may shrink because a neighbor's
  // estimate changed last round.  Round 1 recomputes everyone (every
  // vertex "hears" its neighbors' initial degrees).
  std::vector<bool> in_frontier(n, true);
  std::vector<VertexId> frontier(n);
  for (VertexId v = 0; v < n; ++v) frontier[v] = v;

  std::vector<VertexId> next_frontier;
  std::vector<VertexId> scratch;   // capped counts, reused
  std::vector<VertexId> new_est(est);

  while (!frontier.empty()) {
    if (max_rounds != 0 && result.rounds >= max_rounds) return result;
    ++result.rounds;
    next_frontier.clear();

    // Phase 1 (compute): every active vertex applies the capped h-index
    // to its neighbors' current estimates.
    for (const VertexId v : frontier) {
      const VertexId cap = est[v];
      if (cap == 0) continue;
      scratch.assign(static_cast<std::size_t>(cap) + 1, 0);
      for (const VertexId u : graph.Neighbors(v)) {
        ++scratch[std::min(est[u], cap)];
      }
      VertexId at_least = 0;
      VertexId h = 0;
      for (VertexId k = cap; k > 0; --k) {
        at_least += scratch[k];
        if (at_least >= k) {
          h = k;
          break;
        }
      }
      new_est[v] = h;
    }

    // Phase 2 (broadcast): changed vertices notify their neighbors, who
    // join the next round's frontier.
    for (const VertexId v : frontier) {
      in_frontier[v] = false;
    }
    for (const VertexId v : frontier) {
      if (new_est[v] == est[v]) continue;
      COREKIT_DCHECK(new_est[v] < est[v]);  // estimates only shrink
      est[v] = new_est[v];
      result.messages += graph.Degree(v);
      for (const VertexId u : graph.Neighbors(v)) {
        if (!in_frontier[u]) {
          in_frontier[u] = true;
          next_frontier.push_back(u);
        }
      }
    }
    frontier.swap(next_frontier);
  }
  result.converged = true;
  return result;
}

}  // namespace corekit
