// Distributed core decomposition (Montresor, De Pellegrini & Miorandi,
// IEEE TPDS 2013 — reference [43] of the paper), as a simulated
// message-passing system.
//
// Every vertex runs the same local program: it keeps an upper-bound
// estimate of its own coreness (initially its degree) and repeatedly
// applies the capped h-index operator to its neighbors' estimates,
//
//   est'(v) = max { k <= est(v) : |{u in N(v) : est(u) >= k}| >= k },
//
// broadcasting only when its estimate drops.  Estimates decrease
// monotonically and the unique fixpoint is exactly the coreness function;
// the number of rounds to convergence is the graph's "locality depth".
//
// The simulation is round-synchronous and instruments exactly what a real
// deployment would bill: rounds to quiescence and messages sent
// (estimate-change broadcasts).  Used by the ext_distributed bench to
// show the convergence behaviour [43] reports, and tested against the
// exact Batagelj–Zaversnik decomposition.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

struct DistributedCoreResult {
  // Final estimates; equals the exact coreness when converged.
  std::vector<VertexId> coreness;
  // Rounds executed until no estimate changed (or the cap was hit).
  VertexId rounds = 0;
  // Total estimate-change broadcasts (each reaches all neighbors of the
  // sender; message count bills one per notified neighbor).
  std::uint64_t messages = 0;
  // True when a global fixpoint was reached within the round cap.
  bool converged = false;
};

// Runs the protocol.  `max_rounds` = 0 means "until convergence".
DistributedCoreResult ComputeCoreDecompositionDistributed(
    const Graph& graph, VertexId max_rounds = 0);

// The capped h-index operator on a list of neighbor estimates, exposed
// for tests: max k <= cap with at least k entries >= k.
VertexId CappedHIndex(const std::vector<VertexId>& estimates, VertexId cap);

}  // namespace corekit
