#include "corekit/analysis/invariant_audit.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "corekit/graph/connected_components.h"

namespace corekit {

namespace {

// Built via append (not `"v" + std::to_string(v)`): GCC 12's -Wrestrict
// false-positives on operator+ with an rvalue string under -Werror.
std::string VertexLabel(VertexId v) {
  std::string label = "v";
  label += std::to_string(v);
  return label;
}

// Brute count of neighbors of `v` whose coreness passes `pred`.
template <typename Pred>
VertexId CountNeighborsIf(const Graph& graph, VertexId v, Pred pred) {
  VertexId count = 0;
  for (const VertexId u : graph.Neighbors(v)) {
    if (pred(u)) ++count;
  }
  return count;
}

std::uint64_t Choose2(std::uint64_t d) { return d * (d - 1) / 2; }

}  // namespace

void AuditResult::AddFailure(std::string message) {
  if (failures.size() < kMaxReportedFailures) {
    failures.push_back(std::move(message));
  }
  ++total_violations;
}

std::string AuditResult::Summary() const {
  std::string out;
  for (const std::string& failure : failures) {
    if (!out.empty()) out += '\n';
    out += failure;
  }
  if (total_violations > failures.size()) {
    out += "\n... and " +
           std::to_string(total_violations - failures.size()) +
           " more violations";
  }
  return out;
}

// --- Core decomposition -----------------------------------------------------

AuditResult AuditCoreDecomposition(const Graph& graph,
                                   const CoreDecomposition& cores) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  if (cores.coreness.size() != n) {
    result.AddFailure("coreness has " + std::to_string(cores.coreness.size()) +
                      " entries for a graph with " + std::to_string(n) +
                      " vertices");
    return result;
  }

  VertexId max_coreness = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_coreness = std::max(max_coreness, cores.coreness[v]);
    if (cores.coreness[v] > graph.Degree(v)) {
      result.AddFailure("c(" + VertexLabel(v) + ") = " +
                        std::to_string(cores.coreness[v]) +
                        " exceeds its degree " +
                        std::to_string(graph.Degree(v)));
    }
  }
  if (cores.kmax != max_coreness) {
    result.AddFailure("kmax = " + std::to_string(cores.kmax) +
                      " but the maximum coreness is " +
                      std::to_string(max_coreness));
  }

  // Membership (Definition 3) and the locality fixpoint: c(v) must equal
  // the h-index of its neighbors' corenesses — the largest k such that v
  // has >= k neighbors with coreness >= k.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = cores.coreness[v];
    const VertexId deg = graph.Degree(v);
    // ge[k] = number of neighbors with coreness >= k, for k clamped to
    // [0, deg] (an h-index never exceeds the degree).
    std::vector<VertexId> bucket(static_cast<std::size_t>(deg) + 1, 0);
    for (const VertexId u : graph.Neighbors(v)) {
      ++bucket[std::min(cores.coreness[u], deg)];
    }
    VertexId h_index = 0;
    VertexId at_least = 0;
    for (VertexId k = deg;; --k) {
      at_least += bucket[k];
      if (at_least >= k) {
        h_index = k;
        break;
      }
      if (k == 0) break;
    }
    if (cv <= deg) {
      const VertexId support = CountNeighborsIf(
          graph, v, [&](VertexId u) { return cores.coreness[u] >= cv; });
      if (support < cv) {
        result.AddFailure(VertexLabel(v) + " claims coreness " +
                          std::to_string(cv) + " but only " +
                          std::to_string(support) +
                          " neighbors have coreness >= " + std::to_string(cv));
      }
    }
    if (h_index != cv) {
      result.AddFailure("c(" + VertexLabel(v) + ") = " + std::to_string(cv) +
                        " violates the locality fixpoint (neighbor h-index " +
                        std::to_string(h_index) + ")");
    }
  }

  // peel_order must be a permutation of the vertices.
  if (cores.peel_order.size() != n) {
    result.AddFailure("peel_order has " +
                      std::to_string(cores.peel_order.size()) +
                      " entries, expected " + std::to_string(n));
    return result;
  }
  std::vector<VertexId> position(n, kInvalidVertex);
  bool valid_permutation = true;
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = cores.peel_order[i];
    if (v >= n || position[v] != kInvalidVertex) {
      result.AddFailure("peel_order[" + std::to_string(i) +
                        "] = " + std::to_string(v) +
                        " is out of range or repeated");
      valid_permutation = false;
      break;
    }
    position[v] = i;
  }

  // Peel replay: in a valid min-degree peel the coreness of the i-th
  // peeled vertex equals the running maximum of "neighbors peeled later"
  // counts.  This is the global check that catches uniform under-claims
  // (e.g. an all-zero coreness array) which every local condition above
  // accepts.
  if (valid_permutation) {
    VertexId level = 0;
    for (VertexId i = 0; i < n; ++i) {
      const VertexId v = cores.peel_order[i];
      const VertexId later = CountNeighborsIf(
          graph, v, [&](VertexId u) { return position[u] > i; });
      level = std::max(level, later);
      if (cores.coreness[v] != level) {
        result.AddFailure("peel replay: " + VertexLabel(v) + " (position " +
                          std::to_string(i) + ") should have coreness " +
                          std::to_string(level) + ", found " +
                          std::to_string(cores.coreness[v]));
      }
    }
  }
  return result;
}

// --- Ordered graph (Algorithm 1 / Table II) ---------------------------------

AuditResult AuditOrderedGraph(const Graph& graph,
                              const CoreDecomposition& cores,
                              const OrderedGraph& ordered) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  if (cores.coreness.size() != n || ordered.NumVertices() != n) {
    result.AddFailure("vertex counts disagree: graph " + std::to_string(n) +
                      ", cores " + std::to_string(cores.coreness.size()) +
                      ", ordered " + std::to_string(ordered.NumVertices()));
    return result;
  }
  if (ordered.kmax() != cores.kmax) {
    result.AddFailure("ordered kmax " + std::to_string(ordered.kmax()) +
                      " != decomposition kmax " + std::to_string(cores.kmax));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (ordered.Coreness(v) != cores.coreness[v]) {
      result.AddFailure("cached coreness of " + VertexLabel(v) + " is " +
                        std::to_string(ordered.Coreness(v)) +
                        ", decomposition says " +
                        std::to_string(cores.coreness[v]));
    }
  }

  // The vertex order: a permutation, strictly ascending by (coreness, id).
  const std::span<const VertexId> order = ordered.VerticesByRank();
  if (order.size() != n) {
    result.AddFailure("rank order has " + std::to_string(order.size()) +
                      " entries, expected " + std::to_string(n));
    return result;
  }
  std::vector<char> seen(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const VertexId v = order[i];
    if (v >= n || seen[v]) {
      result.AddFailure("rank order entry " + std::to_string(i) + " (" +
                        std::to_string(v) + ") is out of range or repeated");
      return result;
    }
    seen[v] = 1;
    if (i > 0 && !ordered.RankGreater(v, order[i - 1])) {
      result.AddFailure("rank order not ascending at position " +
                        std::to_string(i) + ": " + VertexLabel(order[i - 1]) +
                        " !< " + VertexLabel(v));
    }
  }

  // Shell boundaries against a brute walk of the order.
  const VertexId kmax = cores.kmax;
  for (VertexId k = 0; k <= kmax; ++k) {
    VertexId expected_begin = 0;
    while (expected_begin < n &&
           cores.coreness[order[expected_begin]] < k) {
      ++expected_begin;
    }
    if (ordered.ShellBegin(k) != expected_begin) {
      result.AddFailure("ShellBegin(" + std::to_string(k) + ") = " +
                        std::to_string(ordered.ShellBegin(k)) +
                        ", expected " + std::to_string(expected_begin));
    }
    if (ordered.CoreSetSize(k) != n - expected_begin) {
      result.AddFailure("CoreSetSize(" + std::to_string(k) + ") = " +
                        std::to_string(ordered.CoreSetSize(k)) +
                        ", expected " + std::to_string(n - expected_begin));
    }
    for (const VertexId v : ordered.Shell(k)) {
      if (cores.coreness[v] != k) {
        result.AddFailure("Shell(" + std::to_string(k) + ") contains " +
                          VertexLabel(v) + " with coreness " +
                          std::to_string(cores.coreness[v]));
      }
    }
  }

  // Adjacency: same multiset as the graph, sorted by ascending rank, and
  // position tags matching brute-force Table II counts.
  std::vector<VertexId> sorted_by_id;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = cores.coreness[v];
    const std::span<const VertexId> neighbors = ordered.Neighbors(v);
    const std::span<const VertexId> graph_neighbors = graph.Neighbors(v);
    if (neighbors.size() != graph_neighbors.size()) {
      result.AddFailure("ordered degree of " + VertexLabel(v) + " is " +
                        std::to_string(neighbors.size()) + ", graph degree " +
                        std::to_string(graph_neighbors.size()));
      continue;
    }
    sorted_by_id.assign(neighbors.begin(), neighbors.end());
    std::sort(sorted_by_id.begin(), sorted_by_id.end());
    if (!std::equal(sorted_by_id.begin(), sorted_by_id.end(),
                    graph_neighbors.begin())) {
      result.AddFailure("ordered adjacency of " + VertexLabel(v) +
                        " is not a permutation of the graph adjacency");
    }
    for (std::size_t i = 1; i < neighbors.size(); ++i) {
      if (!ordered.RankGreater(neighbors[i], neighbors[i - 1])) {
        result.AddFailure("adjacency of " + VertexLabel(v) +
                          " not rank-sorted at slot " + std::to_string(i));
        break;
      }
    }

    const VertexId lower = CountNeighborsIf(
        graph, v, [&](VertexId u) { return cores.coreness[u] < cv; });
    const VertexId equal = CountNeighborsIf(
        graph, v, [&](VertexId u) { return cores.coreness[u] == cv; });
    const VertexId higher = CountNeighborsIf(
        graph, v, [&](VertexId u) { return cores.coreness[u] > cv; });
    const VertexId higher_rank = CountNeighborsIf(
        graph, v, [&](VertexId u) { return ordered.RankGreater(u, v); });
    if (ordered.CountLower(v) != lower || ordered.CountEqual(v) != equal ||
        ordered.CountHigher(v) != higher) {
      result.AddFailure(
          "position tags of " + VertexLabel(v) + " claim <,=,> counts " +
          std::to_string(ordered.CountLower(v)) + "," +
          std::to_string(ordered.CountEqual(v)) + "," +
          std::to_string(ordered.CountHigher(v)) + "; brute force finds " +
          std::to_string(lower) + "," + std::to_string(equal) + "," +
          std::to_string(higher));
    }
    if (ordered.CountGeq(v) != equal + higher) {
      result.AddFailure("CountGeq(" + VertexLabel(v) + ") = " +
                        std::to_string(ordered.CountGeq(v)) + ", expected " +
                        std::to_string(equal + higher));
    }
    if (ordered.CountHigherRank(v) != higher_rank) {
      result.AddFailure("CountHigherRank(" + VertexLabel(v) + ") = " +
                        std::to_string(ordered.CountHigherRank(v)) +
                        ", expected " + std::to_string(higher_rank));
    }

    // The O(1) slices must return exactly the advertised neighbor sets.
    for (const VertexId u : ordered.NeighborsLower(v)) {
      if (cores.coreness[u] >= cv) {
        result.AddFailure("NeighborsLower(" + VertexLabel(v) + ") contains " +
                          VertexLabel(u) + " with coreness >= c(v)");
        break;
      }
    }
    for (const VertexId u : ordered.NeighborsEqual(v)) {
      if (cores.coreness[u] != cv) {
        result.AddFailure("NeighborsEqual(" + VertexLabel(v) + ") contains " +
                          VertexLabel(u) + " with coreness != c(v)");
        break;
      }
    }
    for (const VertexId u : ordered.NeighborsHigher(v)) {
      if (cores.coreness[u] <= cv) {
        result.AddFailure("NeighborsHigher(" + VertexLabel(v) + ") contains " +
                          VertexLabel(u) + " with coreness <= c(v)");
        break;
      }
    }
    for (const VertexId u : ordered.NeighborsHigherRank(v)) {
      if (!ordered.RankGreater(u, v)) {
        result.AddFailure("NeighborsHigherRank(" + VertexLabel(v) +
                          ") contains " + VertexLabel(u) +
                          " with rank <= rank(v)");
        break;
      }
    }
  }
  return result;
}

// --- Core forest (Definitions 6/7) ------------------------------------------

AuditResult AuditCoreForest(const Graph& graph, const CoreDecomposition& cores,
                            const CoreForest& forest) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  if (cores.coreness.size() != n) {
    result.AddFailure("coreness has " + std::to_string(cores.coreness.size()) +
                      " entries for a graph with " + std::to_string(n) +
                      " vertices");
    return result;
  }
  const CoreForest::NodeId num_nodes = forest.NumNodes();

  // Every vertex lives in exactly one node, at its own coreness level.
  std::vector<char> seen(n, 0);
  std::uint64_t covered = 0;
  for (CoreForest::NodeId id = 0; id < num_nodes; ++id) {
    const CoreForest::Node& node = forest.node(id);
    if (node.vertices.empty()) {
      result.AddFailure("node " + std::to_string(id) +
                        " holds no vertices (compression failed)");
    }
    for (const VertexId v : node.vertices) {
      if (v >= n) {
        result.AddFailure("node " + std::to_string(id) +
                          " holds out-of-range vertex " + std::to_string(v));
        continue;
      }
      if (seen[v]) {
        result.AddFailure(VertexLabel(v) + " appears in more than one node");
        continue;
      }
      seen[v] = 1;
      ++covered;
      if (cores.coreness[v] != node.coreness) {
        result.AddFailure(VertexLabel(v) + " with coreness " +
                          std::to_string(cores.coreness[v]) +
                          " sits in a node of coreness " +
                          std::to_string(node.coreness));
      }
      if (forest.NodeOfVertex(v) != id) {
        result.AddFailure("NodeOfVertex(" + VertexLabel(v) + ") = " +
                          std::to_string(forest.NodeOfVertex(v)) +
                          " but the vertex is stored in node " +
                          std::to_string(id));
      }
    }
  }
  if (covered != n) {
    result.AddFailure(std::to_string(n - covered) +
                      " vertices appear in no forest node");
  }

  // Tree shape: mutual parent/child links, strictly coarser parents, and
  // the descending-coreness node order (children precede parents).
  for (CoreForest::NodeId id = 0; id < num_nodes; ++id) {
    const CoreForest::Node& node = forest.node(id);
    if (id > 0 && forest.node(id - 1).coreness < node.coreness) {
      result.AddFailure("nodes not sorted by descending coreness at " +
                        std::to_string(id));
    }
    if (node.parent != CoreForest::kNoNode) {
      if (node.parent >= num_nodes) {
        result.AddFailure("node " + std::to_string(id) +
                          " has out-of-range parent");
        continue;
      }
      const CoreForest::Node& parent = forest.node(node.parent);
      if (node.parent <= id) {
        result.AddFailure("child node " + std::to_string(id) +
                          " does not precede its parent " +
                          std::to_string(node.parent));
      }
      if (parent.coreness >= node.coreness) {
        result.AddFailure("parent of node " + std::to_string(id) +
                          " has coreness " + std::to_string(parent.coreness) +
                          " >= child coreness " +
                          std::to_string(node.coreness));
      }
      if (std::count(parent.children.begin(), parent.children.end(), id) !=
          1) {
        result.AddFailure("node " + std::to_string(id) +
                          " missing from (or duplicated in) its parent's "
                          "children");
      }
    }
    for (const CoreForest::NodeId child : node.children) {
      if (child >= num_nodes || forest.node(child).parent != id) {
        result.AddFailure("child link " + std::to_string(id) + " -> " +
                          std::to_string(child) +
                          " has no matching parent link");
      }
    }
  }

  // Subtree sizes: own vertices plus children's cores.  Children precede
  // parents, so one ascending pass has every child size ready.
  std::vector<std::uint64_t> subtree(num_nodes, 0);
  for (CoreForest::NodeId id = 0; id < num_nodes; ++id) {
    std::uint64_t size = forest.node(id).vertices.size();
    for (const CoreForest::NodeId child : forest.node(id).children) {
      if (child < id) size += subtree[child];
    }
    subtree[id] = size;
    if (forest.CoreSize(id) != size) {
      result.AddFailure("CoreSize(" + std::to_string(id) + ") = " +
                        std::to_string(forest.CoreSize(id)) + ", expected " +
                        std::to_string(size));
    }
  }

  // Each node's core must induce a connected subgraph (a k-core in the
  // single-core sense is connected by definition).
  std::vector<CoreForest::NodeId> stamp(n, CoreForest::kNoNode);
  std::vector<VertexId> queue;
  for (CoreForest::NodeId id = 0; id < num_nodes; ++id) {
    const std::vector<VertexId> core = forest.CoreVertices(id);
    if (core.empty()) continue;
    for (const VertexId v : core) {
      if (v < n) stamp[v] = id;
    }
    queue.clear();
    queue.push_back(core.front());
    stamp[core.front()] = CoreForest::kNoNode;  // un-stamp when visited
    std::size_t reached = 0;
    while (reached < queue.size()) {
      const VertexId v = queue[reached++];
      for (const VertexId u : graph.Neighbors(v)) {
        if (stamp[u] == id) {
          stamp[u] = CoreForest::kNoNode;
          queue.push_back(u);
        }
      }
    }
    if (queue.size() != core.size()) {
      result.AddFailure("core of node " + std::to_string(id) +
                        " is disconnected: reached " +
                        std::to_string(queue.size()) + " of " +
                        std::to_string(core.size()) + " vertices");
      for (const VertexId v : core) {  // clear leftover stamps
        if (v < n) stamp[v] = CoreForest::kNoNode;
      }
    }
  }

  // One tree per connected component: roots and component labels must be
  // in bijection.
  if (covered == n && n > 0) {
    std::vector<CoreForest::NodeId> root(num_nodes);
    for (CoreForest::NodeId id = num_nodes; id-- > 0;) {
      const CoreForest::NodeId parent = forest.node(id).parent;
      // Parents come later in node order, so root[parent] is already set.
      root[id] = (parent == CoreForest::kNoNode || parent <= id)
                     ? id
                     : root[parent];
    }
    const ComponentLabels components = ConnectedComponents(graph);
    std::vector<CoreForest::NodeId> root_of_component(
        components.num_components, CoreForest::kNoNode);
    std::vector<VertexId> component_of_root(num_nodes, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      const CoreForest::NodeId r = root[forest.NodeOfVertex(v)];
      const VertexId c = components.label[v];
      if (root_of_component[c] == CoreForest::kNoNode) {
        root_of_component[c] = r;
      } else if (root_of_component[c] != r) {
        result.AddFailure("component " + std::to_string(c) +
                          " spans two trees (roots " +
                          std::to_string(root_of_component[c]) + " and " +
                          std::to_string(r) + ")");
      }
      if (component_of_root[r] == kInvalidVertex) {
        component_of_root[r] = c;
      } else if (component_of_root[r] != c) {
        result.AddFailure("tree rooted at node " + std::to_string(r) +
                          " spans two components (" +
                          std::to_string(component_of_root[r]) + " and " +
                          std::to_string(c) + ")");
      }
    }
  }
  return result;
}

// --- Primary values of the k-core sets --------------------------------------

AuditResult AuditPrimaryValues(const Graph& graph,
                               const CoreDecomposition& cores,
                               std::span<const PrimaryValues> per_level) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  if (cores.coreness.size() != n) {
    result.AddFailure("coreness has " + std::to_string(cores.coreness.size()) +
                      " entries for a graph with " + std::to_string(n) +
                      " vertices");
    return result;
  }
  const VertexId kmax = cores.kmax;
  const std::size_t levels = static_cast<std::size_t>(kmax) + 1;
  if (per_level.size() != levels) {
    result.AddFailure("profile has " + std::to_string(per_level.size()) +
                      " levels, expected kmax + 1 = " +
                      std::to_string(levels));
    return result;
  }

  // One histogram pass over vertices / edges / triangles, bucketed by the
  // minimum (and maximum) coreness involved; suffix sums then give the
  // exact n, m, b, D of every C_k.
  std::vector<std::uint64_t> vertices_ge(levels + 1, 0);
  std::vector<std::uint64_t> edges_min_ge(levels + 1, 0);
  std::vector<std::uint64_t> edges_max_ge(levels + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++vertices_ge[cores.coreness[v]];
    for (const VertexId u : graph.Neighbors(v)) {
      if (u <= v) continue;  // each undirected edge once
      ++edges_min_ge[std::min(cores.coreness[v], cores.coreness[u])];
      ++edges_max_ge[std::max(cores.coreness[v], cores.coreness[u])];
    }
  }
  for (std::size_t k = levels; k-- > 0;) {
    vertices_ge[k] += vertices_ge[k + 1];
    edges_min_ge[k] += edges_min_ge[k + 1];
    edges_max_ge[k] += edges_max_ge[k + 1];
  }

  bool needs_triangles = false;
  for (const PrimaryValues& pv : per_level) {
    needs_triangles = needs_triangles || pv.has_triangles;
  }
  std::vector<std::uint64_t> triangles_ge(levels + 1, 0);
  std::vector<std::uint64_t> triplets_per_level(levels, 0);
  if (needs_triangles) {
    // Triangles, each counted once at its minimum coreness: for every
    // edge (v, u) with v < u, intersect the > u suffixes of both sorted
    // adjacency lists.
    for (VertexId v = 0; v < n; ++v) {
      const std::span<const VertexId> nv = graph.Neighbors(v);
      for (const VertexId u : nv) {
        if (u <= v) continue;
        const std::span<const VertexId> nu = graph.Neighbors(u);
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < nv.size() && j < nu.size()) {
          if (nv[i] <= u) {
            ++i;
          } else if (nu[j] <= u) {
            ++j;
          } else if (nv[i] < nu[j]) {
            ++i;
          } else if (nv[i] > nu[j]) {
            ++j;
          } else {
            const VertexId w = nv[i];
            ++triangles_ge[std::min({cores.coreness[v], cores.coreness[u],
                                     cores.coreness[w]})];
            ++i;
            ++j;
          }
        }
      }
    }
    for (std::size_t k = levels; k-- > 0;) {
      triangles_ge[k] += triangles_ge[k + 1];
    }
    // Triplets of C_k: sum over members of C(deg_in_Ck, 2), via each
    // vertex's suffix counts of neighbor corenesses.
    std::vector<std::uint64_t> neighbor_ge(levels + 1);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId cv = cores.coreness[v];
      std::fill(neighbor_ge.begin(), neighbor_ge.end(), 0);
      for (const VertexId u : graph.Neighbors(v)) {
        ++neighbor_ge[cores.coreness[u]];
      }
      std::uint64_t inside_degree = 0;
      for (std::size_t k = levels; k-- > 0;) {
        inside_degree += neighbor_ge[k];
        if (k <= cv) triplets_per_level[k] += Choose2(inside_degree);
      }
    }
  }

  for (std::size_t k = 0; k < levels; ++k) {
    const PrimaryValues& pv = per_level[k];
    const std::string level = "C_" + std::to_string(k);
    if (pv.num_vertices != vertices_ge[k]) {
      result.AddFailure("n(" + level + ") = " +
                        std::to_string(pv.num_vertices) + ", brute force " +
                        std::to_string(vertices_ge[k]));
    }
    if (pv.internal_edges_x2 % 2 != 0) {
      result.AddFailure("2m(" + level + ") = " +
                        std::to_string(pv.internal_edges_x2) + " is odd");
    } else if (pv.internal_edges_x2 / 2 != edges_min_ge[k]) {
      result.AddFailure("m(" + level + ") = " +
                        std::to_string(pv.internal_edges_x2 / 2) +
                        ", brute force " + std::to_string(edges_min_ge[k]));
    }
    const std::uint64_t boundary = edges_max_ge[k] - edges_min_ge[k];
    if (pv.boundary_edges != boundary) {
      result.AddFailure("b(" + level + ") = " +
                        std::to_string(pv.boundary_edges) + ", brute force " +
                        std::to_string(boundary));
    }
    if (pv.has_triangles) {
      if (pv.triangles != triangles_ge[k]) {
        result.AddFailure("D(" + level + ") = " +
                          std::to_string(pv.triangles) + ", brute force " +
                          std::to_string(triangles_ge[k]));
      }
      if (pv.triplets != triplets_per_level[k]) {
        result.AddFailure("t(" + level + ") = " + std::to_string(pv.triplets) +
                          ", brute force " +
                          std::to_string(triplets_per_level[k]));
      }
    }
  }
  return result;
}

// --- Primary values of individual cores (Algorithm 5) -----------------------

AuditResult AuditSingleCorePrimaryValues(
    const Graph& graph, const CoreForest& forest,
    std::span<const PrimaryValues> per_node) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  const CoreForest::NodeId num_nodes = forest.NumNodes();
  if (per_node.size() != num_nodes) {
    result.AddFailure("profile has " + std::to_string(per_node.size()) +
                      " nodes, forest has " + std::to_string(num_nodes));
    return result;
  }

  std::vector<CoreForest::NodeId> stamp(n, CoreForest::kNoNode);
  for (CoreForest::NodeId id = 0; id < num_nodes; ++id) {
    const PrimaryValues& pv = per_node[id];
    const std::vector<VertexId> core = forest.CoreVertices(id);
    for (const VertexId v : core) {
      if (v < n) stamp[v] = id;
    }
    std::uint64_t half_edges = 0;
    std::uint64_t boundary = 0;
    for (const VertexId v : core) {
      for (const VertexId u : graph.Neighbors(v)) {
        if (stamp[u] == id) {
          ++half_edges;
        } else {
          ++boundary;
        }
      }
    }
    const std::string label = "core of node " + std::to_string(id);
    if (pv.num_vertices != core.size()) {
      result.AddFailure("n(" + label + ") = " +
                        std::to_string(pv.num_vertices) + ", brute force " +
                        std::to_string(core.size()));
    }
    if (pv.internal_edges_x2 != half_edges) {
      result.AddFailure("2m(" + label + ") = " +
                        std::to_string(pv.internal_edges_x2) +
                        ", brute force " + std::to_string(half_edges));
    }
    if (pv.boundary_edges != boundary) {
      result.AddFailure("b(" + label + ") = " +
                        std::to_string(pv.boundary_edges) + ", brute force " +
                        std::to_string(boundary));
    }
    if (pv.has_triangles) {
      std::uint64_t triangles = 0;
      std::uint64_t triplets = 0;
      for (const VertexId v : core) {
        const std::span<const VertexId> nv = graph.Neighbors(v);
        std::uint64_t inside_degree = 0;
        for (const VertexId u : nv) {
          if (stamp[u] == id) ++inside_degree;
        }
        triplets += Choose2(inside_degree);
        for (const VertexId u : nv) {
          if (u <= v || stamp[u] != id) continue;
          const std::span<const VertexId> nu = graph.Neighbors(u);
          std::size_t i = 0;
          std::size_t j = 0;
          while (i < nv.size() && j < nu.size()) {
            if (nv[i] <= u || stamp[nv[i]] != id) {
              ++i;
            } else if (nu[j] <= u || stamp[nu[j]] != id) {
              ++j;
            } else if (nv[i] < nu[j]) {
              ++i;
            } else if (nv[i] > nu[j]) {
              ++j;
            } else {
              ++triangles;
              ++i;
              ++j;
            }
          }
        }
      }
      if (pv.triangles != triangles) {
        result.AddFailure("D(" + label + ") = " + std::to_string(pv.triangles) +
                          ", brute force " + std::to_string(triangles));
      }
      if (pv.triplets != triplets) {
        result.AddFailure("t(" + label + ") = " + std::to_string(pv.triplets) +
                          ", brute force " + std::to_string(triplets));
      }
    }
    for (const VertexId v : core) {
      if (v < n) stamp[v] = CoreForest::kNoNode;
    }
  }
  return result;
}

// --- Patched coreness (mutable engine) --------------------------------------

AuditResult AuditPatchedCoreness(const Graph& graph,
                                 std::span<const VertexId> coreness) {
  AuditResult result;
  const VertexId n = graph.NumVertices();
  if (coreness.size() != n) {
    result.AddFailure("patched coreness has " +
                      std::to_string(coreness.size()) +
                      " entries for a graph with " + std::to_string(n) +
                      " vertices");
    return result;
  }
  const CoreDecomposition fresh = ComputeCoreDecomposition(graph);
  for (VertexId v = 0; v < n; ++v) {
    if (coreness[v] != fresh.coreness[v]) {
      result.AddFailure("patched c(" + VertexLabel(v) + ") = " +
                        std::to_string(coreness[v]) +
                        " but a cold recompute gives " +
                        std::to_string(fresh.coreness[v]));
    }
  }
  return result;
}

// --- Truss decomposition -----------------------------------------------------

AuditResult AuditTrussDecomposition(const Graph& graph,
                                    const TrussDecomposition& truss) {
  AuditResult result;
  const EdgeList expected_edges = graph.ToEdgeList();
  if (truss.edges != expected_edges) {
    result.AddFailure("edge list does not match Graph::ToEdgeList() (" +
                      std::to_string(truss.edges.size()) + " vs " +
                      std::to_string(expected_edges.size()) + " edges)");
    return result;
  }
  if (truss.truss.size() != truss.edges.size()) {
    result.AddFailure("truss array has " + std::to_string(truss.truss.size()) +
                      " entries for " + std::to_string(truss.edges.size()) +
                      " edges");
    return result;
  }

  VertexId max_truss = 0;
  for (std::size_t i = 0; i < truss.truss.size(); ++i) {
    max_truss = std::max(max_truss, truss.truss[i]);
    if (truss.truss[i] < 2) {
      result.AddFailure("edge " + std::to_string(i) + " has truss number " +
                        std::to_string(truss.truss[i]) + " < 2");
    }
  }
  if (truss.tmax != max_truss) {
    result.AddFailure("tmax = " + std::to_string(truss.tmax) +
                      " but the maximum truss number is " +
                      std::to_string(max_truss));
  }

  // Per-vertex adjacency annotated with truss numbers, sorted by neighbor
  // id (the edge list is sorted by (u, v), so insertion order is already
  // ascending per vertex).
  const VertexId n = graph.NumVertices();
  std::vector<std::vector<std::pair<VertexId, VertexId>>> adjacency(n);
  for (std::size_t i = 0; i < truss.edges.size(); ++i) {
    const auto [u, v] = truss.edges[i];
    adjacency[u].emplace_back(v, truss.truss[i]);
    adjacency[v].emplace_back(u, truss.truss[i]);
  }

  // k-truss membership: an edge with truss t must close >= t - 2
  // triangles among edges of truss >= t.
  for (std::size_t i = 0; i < truss.edges.size(); ++i) {
    const auto [u, v] = truss.edges[i];
    const VertexId t = truss.truss[i];
    if (t < 2) continue;
    std::uint64_t support = 0;
    const auto& au = adjacency[u];
    const auto& av = adjacency[v];
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < au.size() && b < av.size()) {
      if (au[a].first < av[b].first) {
        ++a;
      } else if (au[a].first > av[b].first) {
        ++b;
      } else {
        if (au[a].second >= t && av[b].second >= t) ++support;
        ++a;
        ++b;
      }
    }
    if (support < t - 2) {
      result.AddFailure("edge (" + std::to_string(u) + "," +
                        std::to_string(v) + ") claims truss " +
                        std::to_string(t) + " but closes only " +
                        std::to_string(support) +
                        " triangles in the >= t subgraph");
    }
  }

  // The membership check cannot see uniform under-claims (truss == 2
  // everywhere passes it); on small graphs, replay the definition.
  if (truss.edges.size() <= kNaiveTrussAuditMaxEdges) {
    const std::vector<VertexId> naive = NaiveTrussNumbers(graph);
    for (std::size_t i = 0; i < truss.truss.size(); ++i) {
      if (truss.truss[i] != naive[i]) {
        result.AddFailure("edge (" + std::to_string(truss.edges[i].first) +
                          "," + std::to_string(truss.edges[i].second) +
                          ") has truss " + std::to_string(truss.truss[i]) +
                          ", naive oracle says " + std::to_string(naive[i]));
      }
    }
  }
  return result;
}

}  // namespace corekit
