// COREKIT_AUDIT: machine-checked structural invariants for the paper's
// core data structures — a custom sanitizer for the pipeline.
//
// The time/space optimality claims rest on structural properties that a
// single corrupted value silently breaks: the rank-sorted adjacency and
// same/plus/high position tags of Algorithm 1 (Table II), the exact
// primary values n(S), m(S), b(S) maintained incrementally by
// Algorithms 2/3/5, and the shape of the core forest (Definitions 6/7).
// Each auditor here revalidates one structure from first principles
// (brute-force recounts against the raw graph), returning every violated
// invariant as a human-readable failure.
//
// The auditors are always compiled and unit-tested; building with
// -DCOREKIT_AUDIT=ON additionally wires them into the CoreEngine stage
// boundaries (core_engine.cc), so every artifact the engine publishes is
// validated the moment it is built — the CI audit job runs the whole
// test suite in that mode.  Audits cost O(m) to O(m^1.5) per call, the
// same flavor of overhead as ASan: unusable in production, invaluable in
// CI.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/primary_values.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"
#include "corekit/truss/truss_decomposition.h"

namespace corekit {

// Outcome of one audit: a (capped) list of violated invariants plus the
// uncapped total, so a mass corruption doesn't drown the report.
struct AuditResult {
  // First kMaxReportedFailures violations, one message each.
  std::vector<std::string> failures;
  // Total violations found, including those past the cap.
  std::size_t total_violations = 0;

  static constexpr std::size_t kMaxReportedFailures = 16;

  bool ok() const { return total_violations == 0; }

  // All reported failures joined with newlines, plus a "… and N more"
  // trailer when the cap was hit.  Empty when ok().
  std::string Summary() const;

  // Records one violation (message kept only below the cap).
  void AddFailure(std::string message);
};

// Validates `cores` against the raw graph:
//   * coreness / peel_order have size n; peel_order is a permutation;
//   * kmax equals the maximum coreness and every c(v) <= deg(v);
//   * k-core membership: every v has >= c(v) neighbors with coreness
//     >= c(v) (Definition 3);
//   * locality fixpoint: c(v) equals the h-index of its neighbors'
//     corenesses (the [43]-style condition distributed maintenance
//     checks);
//   * peel replay: walking peel_order with a running level max over the
//     later-neighbor counts reproduces every coreness exactly — this is
//     the check that catches uniform *under*-claims the local conditions
//     cannot see.
AuditResult AuditCoreDecomposition(const Graph& graph,
                                   const CoreDecomposition& cores);

// Validates the Algorithm 1 index against the graph and decomposition:
//   * the rank order is a permutation sorted strictly by (coreness, id)
//     and the shell boundaries / CoreSetSize match it;
//   * every adjacency list is the graph's, re-sorted by ascending rank;
//   * the same/plus/high position tags agree with brute-force counts of
//     |N(v,<)|, |N(v,=)|, |N(v,>)|, |N(v,>=)|, |N(v,>r)| (Table II), and
//     the O(1) slice formulas return exactly those neighbor sets.
AuditResult AuditOrderedGraph(const Graph& graph,
                              const CoreDecomposition& cores,
                              const OrderedGraph& ordered);

// Validates the core forest (Definitions 6/7, Algorithm 4):
//   * every vertex appears in exactly one node, whose coreness is c(v),
//     and NodeOfVertex agrees;
//   * tree shape: parent/child links are mutual, parents have strictly
//     smaller coreness, and children precede parents in node order;
//   * CoreSize equals |own vertices| + sum of children's CoreSizes;
//   * each node's core induces a connected subgraph;
//   * component consistency: one tree per connected component (roots and
//     component labels are in bijection).
AuditResult AuditCoreForest(const Graph& graph, const CoreDecomposition& cores,
                            const CoreForest& forest);

// Validates the per-level primary values of the k-core sets C_k
// (Algorithm 2/3 output, CoreSetProfile::primaries): for every k in
// [0, kmax], n(C_k), m(C_k), b(C_k) — and D/t when has_triangles — are
// recomputed brute-force from the raw graph and compared.
AuditResult AuditPrimaryValues(const Graph& graph,
                               const CoreDecomposition& cores,
                               std::span<const PrimaryValues> per_level);

// Same, for the per-forest-node primaries of the single-core walk
// (Algorithm 5 output, SingleCoreProfile::primaries): each node's
// connected core is materialized and its values recounted.
AuditResult AuditSingleCorePrimaryValues(
    const Graph& graph, const CoreForest& forest,
    std::span<const PrimaryValues> per_node);

// Validates an incrementally-patched coreness array (the mutable-engine
// path: DynamicCoreIndex cascades applied by CoreEngine::ApplyBatch) at
// a patch boundary: recomputes the decomposition of `graph` from scratch
// with the Batagelj–Zaversnik peel and compares element-wise.  This is
// the ground-truth differential the subcore-locality arguments promise —
// any divergence means a cascade visited too few vertices.
AuditResult AuditPatchedCoreness(const Graph& graph,
                                 std::span<const VertexId> coreness);

// Validates the truss decomposition (Section VI-B):
//   * edges match Graph::ToEdgeList() and tmax the maximum truss number;
//   * every truss number is >= 2 and at most the edge's support + 2;
//   * k-truss membership: an edge with truss t closes >= t - 2 triangles
//     within the subgraph of edges with truss >= t;
//   * on small graphs (m <= kNaiveTrussAuditMaxEdges) the numbers are
//     additionally cross-checked against the definition-driven
//     NaiveTrussNumbers oracle, which also catches under-claims.
AuditResult AuditTrussDecomposition(const Graph& graph,
                                    const TrussDecomposition& truss);

// Edge-count bound below which AuditTrussDecomposition runs the O(tmax *
// m * d) naive oracle cross-check.
inline constexpr std::size_t kNaiveTrussAuditMaxEdges = 2000;

}  // namespace corekit
