// Runtime ISA dispatch for the SIMD kernels.  One binary runs
// everywhere: kernels are compiled per-ISA with function-level target
// attributes and selected once at startup from CPUID, so no special
// compiler flags are needed and machines without AVX2 silently take
// the scalar path.  `COREKIT_FORCE_SCALAR=1` in the environment pins
// the scalar path regardless of CPU support (the CI differential leg
// and the bench harness use this as a test axis).

#pragma once

namespace corekit::simd {

// x86-64 with a GCC/Clang-compatible compiler is the only target we
// emit vector code for; everything else compiles the scalar kernels
// only and dispatch degenerates to a constant.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define COREKIT_SIMD_X86 1
#endif

enum class IsaLevel {
  kScalar = 0,
  kAvx2 = 1,
};

// The ISA the dispatching kernels will use.  Detected once (CPUID +
// COREKIT_FORCE_SCALAR env) and cached; cheap to call in hot loops.
IsaLevel ActiveIsa();

// True when the running CPU supports AVX2, independent of any
// force-scalar override.  Tests use this to decide whether the AVX2
// kernel can be exercised at all.
bool CpuSupportsAvx2();

// Overrides the cached ISA.  Test-only: selecting kAvx2 on a CPU
// without AVX2 support will fault.  Callers must restore the previous
// level (or re-detect) before returning.
void SetIsaForTesting(IsaLevel isa);

// Re-runs detection (CPUID + environment) and reinstalls the result.
// Pairs with SetIsaForTesting.
void ResetIsaForTesting();

// Stable human-readable name ("scalar", "avx2") for logs and bench
// metadata.
const char* IsaName(IsaLevel isa);

}  // namespace corekit::simd
