// Sorted-set intersection kernels over strictly increasing uint32
// sequences (CSR adjacency lists, rank slices).  The layer speaks raw
// std::uint32_t spans rather than graph types so it sits below graph/
// in the layering DAG; callers cast VertexId / rank arrays at the
// boundary.
//
// Contract shared by every kernel here: both inputs are strictly
// increasing (sorted, duplicate-free).  Under that contract the AVX2
// and scalar paths return identical counts on identical inputs — the
// differential tests in tests/simd/ and the COREKIT_AUDIT revalidation
// both rely on this.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "corekit/simd/dispatch.h"

namespace corekit::simd {

// When one list is at least this many times longer than the other,
// per-element galloping search beats a linear merge (and beats the
// 8-lane block scan, which is still linear in the longer list).
inline constexpr std::size_t kGallopRatio = 32;

// |a ∩ b| via the ISA selected at startup (see dispatch.h).
std::size_t IntersectCount(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b);

// Portable reference path: linear merge, switching to galloping
// search when the size ratio exceeds kGallopRatio.
std::size_t IntersectCountScalar(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b);

// AVX2 path: iterate the smaller list, advance the larger one in
// 8-lane blocks with a broadcast-compare per element.  Falls back to
// galloping for heavily skewed sizes.  On non-x86 builds this compiles
// to a call to the scalar kernel; calling it on an x86 CPU without
// AVX2 faults — gate on CpuSupportsAvx2() or use IntersectCount.
std::size_t IntersectCountAvx2(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b);

// Membership probe in a strictly increasing list (binary search).
// Shared by Graph::HasEdge and the wedge sampler so exactly one
// implementation exists to audit.
bool SortedContains(std::span<const std::uint32_t> sorted,
                    std::uint32_t value);

}  // namespace corekit::simd
