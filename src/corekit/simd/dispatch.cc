#include "corekit/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace corekit::simd {

namespace {

bool ForceScalarFromEnv() {
  const char* env = std::getenv("COREKIT_FORCE_SCALAR");
  if (env == nullptr) return false;
  // Any non-empty value other than literal "0" forces scalar.
  return !(env[0] == '\0' || (env[0] == '0' && env[1] == '\0'));
}

IsaLevel DetectIsa() {
  if (ForceScalarFromEnv()) return IsaLevel::kScalar;
  if (CpuSupportsAvx2()) return IsaLevel::kAvx2;
  return IsaLevel::kScalar;
}

std::atomic<IsaLevel>& IsaSlot() {
  static std::atomic<IsaLevel> slot{DetectIsa()};
  return slot;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(COREKIT_SIMD_X86)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

IsaLevel ActiveIsa() { return IsaSlot().load(std::memory_order_relaxed); }

void SetIsaForTesting(IsaLevel isa) {
  IsaSlot().store(isa, std::memory_order_relaxed);
}

void ResetIsaForTesting() {
  IsaSlot().store(DetectIsa(), std::memory_order_relaxed);
}

const char* IsaName(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace corekit::simd
