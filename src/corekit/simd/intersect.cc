#include "corekit/simd/intersect.h"

#include <algorithm>

#if defined(COREKIT_SIMD_X86)
#include <immintrin.h>
#endif

namespace corekit::simd {

namespace {

// Galloping (exponential + binary search) intersection for heavily
// skewed sizes: O(|small| * log |large|).  `small` must be the shorter
// span.  The search window's lower bound only moves forward, so the
// whole pass stays sub-linear in the large list.
std::size_t IntersectCountGallop(std::span<const std::uint32_t> small,
                                 std::span<const std::uint32_t> large) {
  std::size_t count = 0;
  std::size_t lo = 0;
  for (const std::uint32_t x : small) {
    // Exponential probe from the current frontier.
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, large.size());
    const auto* it =
        std::lower_bound(large.data() + lo, large.data() + hi, x);
    lo = static_cast<std::size_t>(it - large.data());
    if (lo == large.size()) break;
    if (*it == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::size_t IntersectCountMerge(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b) {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::size_t IntersectCountScalar(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kGallopRatio) return IntersectCountGallop(a, b);
  return IntersectCountMerge(a, b);
}

#if defined(COREKIT_SIMD_X86)

__attribute__((target("avx2"))) std::size_t IntersectCountAvx2(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kGallopRatio) return IntersectCountGallop(a, b);

  std::size_t count = 0;
  std::size_t j = 0;
  // Blocks of 8 lanes; the ragged tail is handled by scalar merge.
  const std::size_t b_blocked = b.size() & ~std::size_t{7};
  for (const std::uint32_t x : a) {
    // Skip whole blocks strictly below x.  j only moves forward across
    // iterations, so this is amortized O(|b| / 8) for the whole pass.
    while (j < b_blocked && b[j + 7] < x) j += 8;
    if (j < b_blocked) {
      const __m256i vx = _mm256_set1_epi32(static_cast<int>(x));
      const __m256i vb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b.data() + j));
      const __m256i eq = _mm256_cmpeq_epi32(vx, vb);
      // Strictly increasing lists: at most one lane can match.
      if (_mm256_movemask_epi8(eq) != 0) ++count;
    } else {
      while (j < b.size() && b[j] < x) ++j;
      if (j == b.size()) break;
      if (b[j] == x) {
        ++count;
        ++j;
      }
    }
  }
  return count;
}

#else  // !COREKIT_SIMD_X86

std::size_t IntersectCountAvx2(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b) {
  return IntersectCountScalar(a, b);
}

#endif  // COREKIT_SIMD_X86

std::size_t IntersectCount(std::span<const std::uint32_t> a,
                           std::span<const std::uint32_t> b) {
  switch (ActiveIsa()) {
    case IsaLevel::kAvx2:
      return IntersectCountAvx2(a, b);
    case IsaLevel::kScalar:
      break;
  }
  return IntersectCountScalar(a, b);
}

bool SortedContains(std::span<const std::uint32_t> sorted,
                    std::uint32_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace corekit::simd
