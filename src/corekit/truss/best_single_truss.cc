#include "corekit/truss/best_single_truss.h"

#include "corekit/util/logging.h"

namespace corekit {

std::vector<PrimaryValues> ComputeSingleTrussPrimaries(
    const Graph& graph, const TrussDecomposition& trusses,
    const TrussForest& forest) {
  const TrussForest::NodeId count = forest.NumNodes();
  std::vector<PrimaryValues> primaries(count);

  // Membership stamp reused across nodes (epoch = node id + 1).
  std::vector<TrussForest::NodeId> stamp(graph.NumVertices(),
                                         TrussForest::kNoNode);
  for (TrussForest::NodeId i = 0; i < count; ++i) {
    PrimaryValues& pv = primaries[i];
    const std::vector<VertexId> vertices = forest.TrussVertices(trusses, i);
    for (const VertexId v : vertices) stamp[v] = i;
    pv.num_vertices = vertices.size();
    pv.internal_edges_x2 = 2 * forest.TrussEdgeCount(i);
    for (const VertexId v : vertices) {
      for (const VertexId u : graph.Neighbors(v)) {
        pv.boundary_edges += stamp[u] == i ? 0u : 1u;
      }
    }
  }
  return primaries;
}

SingleTrussProfile FindBestSingleTruss(const Graph& graph,
                                       const TrussDecomposition& trusses,
                                       const TrussForest& forest,
                                       Metric metric) {
  COREKIT_CHECK(!MetricNeedsTriangles(metric))
      << "triangle-based metrics are out of scope for the truss extension";
  SingleTrussProfile profile;
  profile.primaries = ComputeSingleTrussPrimaries(graph, trusses, forest);
  COREKIT_CHECK(!profile.primaries.empty()) << "graph has no edges";
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  profile.scores.reserve(profile.primaries.size());
  for (const PrimaryValues& pv : profile.primaries) {
    profile.scores.push_back(EvaluateMetric(metric, pv, globals));
  }
  // Nodes are sorted by descending level: strictly-greater keeps the
  // largest k among ties, matching the core-side convention.
  profile.best_node = 0;
  for (TrussForest::NodeId i = 1; i < profile.scores.size(); ++i) {
    if (profile.scores[i] > profile.scores[profile.best_node]) {
      profile.best_node = i;
    }
  }
  profile.best_k = forest.node(profile.best_node).level;
  profile.best_score = profile.scores[profile.best_node];
  return profile;
}

}  // namespace corekit
