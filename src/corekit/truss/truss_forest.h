// The truss forest: the k-truss analogue of the core forest, completing
// the Section VI-B extension for *single* trusses.
//
// A connected k-truss is a connected component of the subgraph formed by
// truss->=k edges.  Like k-cores these nest — the component structure at
// level k+1 refines the structure at level k — so the hierarchy is again
// a forest: each node represents one connected k-truss and stores the
// edges of truss number exactly k inside it; parents are the next coarser
// containing trusses.
//
// Construction processes truss levels from tmax down to 2 over a
// union-find on vertices (the Sariyuce–Pinar style bottom-up hierarchy
// construction [50]): activating a level's edges merges components, and
// every component that gained edges at the level becomes a node adopting
// the nodes of the components it swallowed.  O(m alpha(m)) after the
// truss decomposition.
//
// The paper notes that a *time-optimal* best-single-truss algorithm is
// open ("designing an optimal solution is still challenging"); corekit
// therefore pairs this forest with a direct per-community scorer
// (best_single_truss.h) rather than claiming optimality.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/truss/truss_decomposition.h"

namespace corekit {

class TrussForest {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  struct Node {
    // Truss level k of the connected k-truss this node represents.
    VertexId level = 2;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    // Ids (into the decomposition's edge list) of the edges with truss
    // number exactly `level` in this truss; never empty.
    std::vector<EdgeId> edges;
  };

  // Builds the forest.  `trusses` must be the decomposition of `graph`.
  TrussForest(const Graph& graph, const TrussDecomposition& trusses);

  // Nodes sorted by descending level; children precede parents.
  const std::vector<Node>& nodes() const { return nodes_; }
  NodeId NumNodes() const { return static_cast<NodeId>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[id]; }

  // Total number of edges of the k-truss represented by `id` (subtree
  // total), O(1).
  EdgeId TrussEdgeCount(NodeId id) const { return subtree_edges_[id]; }

  // All edge ids of the k-truss represented by `id` (subtree edges).
  std::vector<EdgeId> TrussEdges(NodeId id) const;

  // The distinct vertices touched by the k-truss represented by `id`,
  // sorted ascending.
  std::vector<VertexId> TrussVertices(const TrussDecomposition& trusses,
                                      NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<EdgeId> subtree_edges_;
};

}  // namespace corekit
