// Finding the best k for truss decomposition (the extension the paper
// sketches in Section VI-B).
//
// The k-truss set T_k is the subgraph formed by all edges with truss
// number >= k; T_{k+1} is a subgraph of T_k, so the same top-down
// incremental paradigm applies: walk truss levels from tmax down to 2,
// absorbing each level's edges and their newly touched vertices into the
// running primary values.
//
// Subgraphs here are *edge-induced*: V(T_k) is the set of endpoints of
// truss->=k edges, m(T_k) counts exactly those edges, and b(T_k) counts
// graph edges with exactly one endpoint inside V(T_k) — the same
// boundary notion the vertex-based metrics use.  Metrics on n/m/b apply
// directly (clustering coefficient is left out: triangles of an
// edge-induced subgraph are not derivable from the five primary values
// alone and Section VI-B scopes the sketch to the incremental scoring).
//
// Complexity: after the O(m^1.5) truss decomposition, scoring every level
// takes O(m) — each edge and each vertex is absorbed exactly once.

#pragma once

#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/core/primary_values.h"
#include "corekit/truss/truss_decomposition.h"

namespace corekit {

struct TrussSetProfile {
  // scores[k] = Q(T_k) for k in [2, tmax]; indices 0 and 1 are unused
  // (kept so scores[k] indexes by k directly) and mirror T_2.
  std::vector<double> scores;
  std::vector<PrimaryValues> primaries;
  VertexId best_k = 2;
  double best_score = 0.0;
};

// Primary values (n, m, b) of every k-truss set, top-down incremental.
std::vector<PrimaryValues> ComputeTrussSetPrimaries(
    const Graph& graph, const TrussDecomposition& trusses);

// Best k for the k-truss set under a metric on n/m/b.  Metrics requiring
// triangles are rejected with a CHECK (see header comment).
TrussSetProfile FindBestTrussSet(const Graph& graph,
                                 const TrussDecomposition& trusses,
                                 Metric metric);
TrussSetProfile FindBestTrussSet(const Graph& graph,
                                 const TrussDecomposition& trusses,
                                 const MetricFn& metric);

}  // namespace corekit
