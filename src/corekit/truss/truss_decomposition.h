// Truss decomposition: the Section VI-B extension of the paper.
//
// The k-truss of G is the maximal subgraph whose every edge closes at
// least k-2 triangles within the subgraph; the truss number t(e) of an
// edge is the largest k such that e belongs to the k-truss.  Like
// coreness, truss numbers are computed by peeling: repeatedly remove the
// edge with minimum support (triangle count), bucketed so each edge moves
// O(1) per support decrement.  O(m^1.5) time, O(m) space — the same
// bounds as triangle counting.
//
// Section VI-B sketches how the paper's best-k machinery transfers to
// trusses: rank edges by truss number and compute the score of every
// k-truss set incrementally from k = tmax down to 2.  best_truss_set.h
// implements exactly that.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// Truss numbers for every undirected edge of the graph.
struct TrussDecomposition {
  // Edges in Graph::ToEdgeList() order (u < v, sorted by (u, v)).
  EdgeList edges;
  // truss[i] = truss number of edges[i]; always >= 2 (an edge in no
  // triangle has truss 2).
  std::vector<VertexId> truss;
  // Largest truss number (2 for a triangle-free graph with edges; 0 for
  // an edgeless graph).
  VertexId tmax = 0;

  // Number of edges with truss number exactly k / at least k.
  std::vector<EdgeId> LevelSizes() const;
};

// Peeling-based truss decomposition.  O(m^1.5) time.
TrussDecomposition ComputeTrussDecomposition(const Graph& graph);

// --- Shared edge-indexing helpers (also used by the frontier-parallel
// truss peel in parallel/frontier_truss.h). ------------------------------

// Sentinel for "no such CSR slot".
inline constexpr EdgeId kInvalidEdgeSlot = static_cast<EdgeId>(-1);

// Index of the CSR slot holding neighbor `v` in `u`'s (sorted) adjacency
// list, or kInvalidEdgeSlot when the edge does not exist.
EdgeId EdgeSlotOf(const Graph& graph, VertexId u, VertexId v);

// Maps every directed CSR slot to its undirected edge id: forward slots
// (u < v) get ids in ToEdgeList() order, reverse slots resolve to the
// same id.  Size == graph.NeighborArray().size().
std::vector<EdgeId> MapSlotsToEdges(const Graph& graph);

// Support (triangle count) of every undirected edge, each triangle
// counted once at its lowest-(degree, id) vertex.  `slot_edge` must be
// MapSlotsToEdges(graph).  O(m^1.5) time.
std::vector<VertexId> ComputeEdgeSupports(const Graph& graph,
                                          const std::vector<EdgeId>& slot_edge);

// Definition-driven oracle for tests: iteratively delete edges with
// support < k - 2 until stable, for k = 3, 4, ...; survivors of round k
// have truss >= k.  O(tmax * m * d).
std::vector<VertexId> NaiveTrussNumbers(const Graph& graph);

}  // namespace corekit
