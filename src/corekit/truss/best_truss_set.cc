#include "corekit/truss/best_truss_set.h"

#include <algorithm>

#include "corekit/core/best_core_set.h"
#include "corekit/util/logging.h"

namespace corekit {

std::vector<PrimaryValues> ComputeTrussSetPrimaries(
    const Graph& graph, const TrussDecomposition& trusses) {
  const VertexId tmax = std::max<VertexId>(trusses.tmax, 2);
  std::vector<PrimaryValues> primaries(static_cast<std::size_t>(tmax) + 1);

  // Bucket edge ids by truss number for the top-down walk.
  std::vector<std::vector<EdgeId>> by_level(
      static_cast<std::size_t>(tmax) + 1);
  for (EdgeId e = 0; e < trusses.truss.size(); ++e) {
    by_level[trusses.truss[e]].push_back(e);
  }

  // Running state: V(T_k) membership, m(T_k), and the boundary edge count
  // b(T_k).  When a vertex first enters V, all its graph edges become
  // boundary candidates; each edge whose second endpoint is already
  // inside flips from boundary to (vertex-)internal.  Note b counts edges
  // with exactly one endpoint in V(T_k), matching the primary-value
  // definition; m counts only truss->=k edges.
  std::vector<bool> in_v(graph.NumVertices(), false);
  std::uint64_t num = 0;
  std::uint64_t edges_in_set = 0;
  std::int64_t boundary = 0;

  auto absorb_vertex = [&](VertexId v) {
    if (in_v[v]) return;
    in_v[v] = true;
    ++num;
    for (const VertexId u : graph.Neighbors(v)) {
      if (in_v[u]) {
        --boundary;  // (v, u) was boundary for u; now both ends inside
      } else {
        ++boundary;
      }
    }
  };

  for (VertexId k = tmax;; --k) {
    if (k >= 2) {
      for (const EdgeId e : by_level[k]) {
        const auto [u, v] = trusses.edges[e];
        absorb_vertex(u);
        absorb_vertex(v);
        ++edges_in_set;
      }
    }
    PrimaryValues& pv = primaries[k];
    pv.num_vertices = num;
    pv.internal_edges_x2 = 2 * edges_in_set;
    COREKIT_DCHECK(boundary >= 0);
    pv.boundary_edges = static_cast<std::uint64_t>(boundary);
    if (k == 0) break;
  }
  return primaries;
}

TrussSetProfile FindBestTrussSet(const Graph& graph,
                                 const TrussDecomposition& trusses,
                                 Metric metric) {
  COREKIT_CHECK(!MetricNeedsTriangles(metric))
      << "triangle-based metrics are out of scope for the truss extension";
  return FindBestTrussSet(graph, trusses, MetricFunction(metric));
}

TrussSetProfile FindBestTrussSet(const Graph& graph,
                                 const TrussDecomposition& trusses,
                                 const MetricFn& metric) {
  TrussSetProfile profile;
  profile.primaries = ComputeTrussSetPrimaries(graph, trusses);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  profile.scores.reserve(profile.primaries.size());
  for (const PrimaryValues& pv : profile.primaries) {
    profile.scores.push_back(metric(pv, globals));
  }
  // argmax over k in [2, tmax], largest k on ties (the paper's
  // convention); indices 0/1 alias T_2 and are excluded.
  profile.best_k = 2;
  for (VertexId k = 2; k < profile.scores.size(); ++k) {
    if (profile.scores[k] >= profile.scores[profile.best_k]) {
      profile.best_k = k;
    }
  }
  profile.best_score = profile.scores[profile.best_k];
  return profile;
}

}  // namespace corekit
