#include "corekit/truss/truss_decomposition.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

EdgeId EdgeSlotOf(const Graph& graph, VertexId u, VertexId v) {
  const auto nbrs = graph.Neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdgeSlot;
  return graph.Offsets()[u] +
         static_cast<EdgeId>(std::distance(nbrs.begin(), it));
}

std::vector<EdgeId> MapSlotsToEdges(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<EdgeId> slot_edge(graph.NeighborArray().size());
  EdgeId next = 0;
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId begin = graph.Offsets()[u];
    const auto nbrs = graph.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) slot_edge[begin + i] = next++;
    }
  }
  COREKIT_CHECK_EQ(next, graph.NumEdges());
  for (VertexId u = 0; u < n; ++u) {
    const EdgeId begin = graph.Offsets()[u];
    const auto nbrs = graph.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u > nbrs[i]) {
        const EdgeId reverse = EdgeSlotOf(graph, nbrs[i], u);
        COREKIT_DCHECK(reverse != kInvalidEdgeSlot);
        slot_edge[begin + i] = slot_edge[reverse];
      }
    }
  }
  return slot_edge;
}

std::vector<VertexId> ComputeEdgeSupports(
    const Graph& graph, const std::vector<EdgeId>& slot_edge) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> support(graph.NumEdges(), 0);
  auto pos_greater = [&graph](VertexId a, VertexId b) {
    const VertexId da = graph.Degree(a);
    const VertexId db = graph.Degree(b);
    return da != db ? da > db : a > b;
  };
  // mark[w] = 1 + edge id of (v, w) while scanning from v.
  std::vector<EdgeId> mark(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const EdgeId begin = graph.Offsets()[v];
    const auto nbrs = graph.Neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (pos_greater(nbrs[i], v)) mark[nbrs[i]] = slot_edge[begin + i] + 1;
    }
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (!pos_greater(u, v)) continue;
      const EdgeId vu = slot_edge[begin + i];
      const EdgeId u_begin = graph.Offsets()[u];
      const auto u_nbrs = graph.Neighbors(u);
      for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
        const VertexId w = u_nbrs[j];
        if (!pos_greater(w, u)) continue;
        if (mark[w] != 0) {
          ++support[vu];
          ++support[slot_edge[u_begin + j]];
          ++support[mark[w] - 1];
        }
      }
    }
    for (const VertexId w : nbrs) mark[w] = 0;
  }
  return support;
}

std::vector<EdgeId> TrussDecomposition::LevelSizes() const {
  std::vector<EdgeId> sizes(static_cast<std::size_t>(tmax) + 1, 0);
  for (const VertexId t : truss) ++sizes[t];
  return sizes;
}

TrussDecomposition ComputeTrussDecomposition(const Graph& graph) {
  TrussDecomposition result;
  result.edges = graph.ToEdgeList();
  const auto m = static_cast<EdgeId>(result.edges.size());
  result.truss.assign(m, 2);
  if (m == 0) return result;

  // Slot-to-edge mapping and per-edge supports via the shared helpers
  // (the frontier-parallel peel reuses both).
  const std::vector<EdgeId> slot_edge = MapSlotsToEdges(graph);
  std::vector<VertexId> support = ComputeEdgeSupports(graph, slot_edge);

  // --- Peel edges in non-decreasing support order (bin positions, the
  // Batagelj–Zaversnik technique lifted to edges). ------------------------
  VertexId max_support = 0;
  for (const VertexId s : support) max_support = std::max(max_support, s);
  std::vector<EdgeId> bin(static_cast<std::size_t>(max_support) + 2, 0);
  for (const VertexId s : support) ++bin[s + 1];
  for (VertexId s = 0; s <= max_support; ++s) bin[s + 1] += bin[s];
  std::vector<EdgeId> order(m);
  std::vector<EdgeId> position(m);
  {
    std::vector<EdgeId> cursor(bin.begin(), bin.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      position[e] = cursor[support[e]]++;
      order[position[e]] = e;
    }
  }

  std::vector<bool> alive(m, true);
  auto decrement = [&](EdgeId e, VertexId floor) {
    // Moves e one bucket down unless already at the floor.
    if (support[e] <= floor) return;
    const VertexId s = support[e];
    const EdgeId pe = position[e];
    const EdgeId pw = bin[s];
    const EdgeId other = order[pw];
    if (e != other) {
      position[e] = pw;
      order[pw] = e;
      position[other] = pe;
      order[pe] = other;
    }
    ++bin[s];
    --support[e];
  };

  result.tmax = 2;
  for (EdgeId i = 0; i < m; ++i) {
    const EdgeId e = order[i];
    const VertexId s = support[e];
    result.truss[e] = s + 2;
    result.tmax = std::max(result.tmax, result.truss[e]);
    alive[e] = false;

    const auto [eu, ev] = result.edges[e];
    VertexId x = eu;
    VertexId y = ev;
    if (graph.Degree(x) > graph.Degree(y)) std::swap(x, y);
    for (const VertexId w : graph.Neighbors(x)) {
      if (w == y) continue;
      const EdgeId xw_slot = EdgeSlotOf(graph, x, w);
      const EdgeId xw = slot_edge[xw_slot];
      if (!alive[xw]) continue;
      const EdgeId yw_slot = EdgeSlotOf(graph, y, w);
      if (yw_slot == kInvalidEdgeSlot) continue;
      const EdgeId yw = slot_edge[yw_slot];
      if (!alive[yw]) continue;
      // Triangle (x, y, w) loses edge e: both surviving edges lose one
      // support, never dropping below the level being peeled.
      decrement(xw, s);
      decrement(yw, s);
    }
  }
  return result;
}

std::vector<VertexId> NaiveTrussNumbers(const Graph& graph) {
  const EdgeList edges = graph.ToEdgeList();
  const std::size_t m = edges.size();
  std::vector<VertexId> truss(m, 2);
  std::vector<bool> alive(m, true);

  // Alive-edge lookup by CSR slot (both directions of an edge share one
  // alive flag through the id of the forward slot).
  auto edge_index = [&](VertexId u, VertexId v) -> std::size_t {
    if (u > v) std::swap(u, v);
    const auto it = std::lower_bound(edges.begin(), edges.end(),
                                     Edge{u, v});
    if (it == edges.end() || *it != Edge{u, v}) return m;  // not an edge
    return static_cast<std::size_t>(std::distance(edges.begin(), it));
  };

  // Support of edge i within the alive subgraph.
  auto alive_support = [&](std::size_t i) {
    VertexId count = 0;
    const auto [u, v] = edges[i];
    for (const VertexId w : graph.Neighbors(u)) {
      if (w == v) continue;
      const std::size_t uw = edge_index(u, w);
      if (uw == m || !alive[uw]) continue;
      const std::size_t vw = edge_index(v, w);
      if (vw == m || !alive[vw]) continue;
      ++count;
    }
    return count;
  };

  for (VertexId k = 3;; ++k) {
    // Delete edges with support < k - 2 until stable.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < m; ++i) {
        if (!alive[i]) continue;
        if (alive_support(i) < k - 2) {
          alive[i] = false;
          changed = true;
        }
      }
    }
    bool any = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (alive[i]) {
        truss[i] = k;
        any = true;
      }
    }
    if (!any) break;
  }
  return truss;
}

}  // namespace corekit
