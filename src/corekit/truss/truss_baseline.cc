#include "corekit/truss/truss_baseline.h"

#include <algorithm>

#include "corekit/util/logging.h"

namespace corekit {

PrimaryValues ScratchTrussSetPrimaries(const Graph& graph,
                                       const TrussDecomposition& trusses,
                                       VertexId k) {
  PrimaryValues pv;
  std::vector<bool> in_v(graph.NumVertices(), false);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    if (trusses.truss[e] < k) continue;
    pv.internal_edges_x2 += 2;
    in_v[trusses.edges[e].first] = true;
    in_v[trusses.edges[e].second] = true;
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!in_v[v]) continue;
    ++pv.num_vertices;
    for (const VertexId u : graph.Neighbors(v)) {
      pv.boundary_edges += in_v[u] ? 0u : 1u;
    }
  }
  return pv;
}

TrussSetProfile BaselineFindBestTrussSet(const Graph& graph,
                                         const TrussDecomposition& trusses,
                                         Metric metric) {
  COREKIT_CHECK(!MetricNeedsTriangles(metric))
      << "triangle-based metrics are out of scope for the truss extension";
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  const VertexId tmax = std::max<VertexId>(trusses.tmax, 2);

  TrussSetProfile profile;
  profile.primaries.resize(static_cast<std::size_t>(tmax) + 1);
  profile.scores.resize(static_cast<std::size_t>(tmax) + 1);
  for (VertexId k = 2; k <= tmax; ++k) {
    profile.primaries[k] = ScratchTrussSetPrimaries(graph, trusses, k);
    profile.scores[k] = EvaluateMetric(metric, profile.primaries[k], globals);
  }
  // Indices 0/1 mirror T_2, as in the incremental profile.
  profile.primaries[0] = profile.primaries[1] = profile.primaries[2];
  profile.scores[0] = profile.scores[1] = profile.scores[2];

  profile.best_k = 2;
  for (VertexId k = 2; k <= tmax; ++k) {
    if (profile.scores[k] >= profile.scores[profile.best_k]) {
      profile.best_k = k;
    }
  }
  profile.best_score = profile.scores[profile.best_k];
  return profile;
}

}  // namespace corekit
