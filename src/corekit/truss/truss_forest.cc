#include "corekit/truss/truss_forest.h"

#include <algorithm>
#include <utility>

#include "corekit/util/logging.h"

namespace corekit {

namespace {

// Union-find over vertices with path halving; component payload (pending
// child nodes, pending level edges) lives in side tables keyed by root and
// is merged small-to-large.
class ComponentTracker {
 public:
  explicit ComponentTracker(VertexId n)
      : parent_(n), node_(n, TrussForest::kNoNode) {
    for (VertexId v = 0; v < n; ++v) parent_[v] = v;
  }

  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  // Merges the components of a and b; returns the surviving root.
  VertexId Union(VertexId a, VertexId b,
                 std::vector<std::vector<TrussForest::NodeId>>& children) {
    VertexId ra = Find(a);
    VertexId rb = Find(b);
    if (ra == rb) return ra;
    // Small-to-large on the pending child lists.
    if (children[ra].size() < children[rb].size()) std::swap(ra, rb);
    parent_[rb] = ra;
    children[ra].insert(children[ra].end(), children[rb].begin(),
                        children[rb].end());
    children[rb].clear();
    children[rb].shrink_to_fit();
    if (node_[rb] != TrussForest::kNoNode &&
        node_[ra] == TrussForest::kNoNode) {
      node_[ra] = node_[rb];
    }
    return ra;
  }

  // Latest forest node representing the component rooted at `root`.
  TrussForest::NodeId NodeOf(VertexId root) const { return node_[root]; }
  void SetNode(VertexId root, TrussForest::NodeId node) {
    node_[root] = node;
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<TrussForest::NodeId> node_;
};

}  // namespace

TrussForest::TrussForest(const Graph& graph,
                         const TrussDecomposition& trusses) {
  const VertexId n = graph.NumVertices();
  const auto m = static_cast<EdgeId>(trusses.edges.size());
  if (m == 0) return;

  // Bucket edge ids by truss level for the descending walk.
  std::vector<std::vector<EdgeId>> by_level(
      static_cast<std::size_t>(trusses.tmax) + 1);
  for (EdgeId e = 0; e < m; ++e) by_level[trusses.truss[e]].push_back(e);

  ComponentTracker tracker(n);
  // pending_children[root]: nodes of already-built deeper trusses merged
  // into the component since its last own node was created.
  std::vector<std::vector<NodeId>> pending_children(n);
  // Temporary per-level buffers.
  std::vector<VertexId> touched_roots;
  std::vector<std::vector<EdgeId>> level_edges_of_root(n);

  // Raw nodes (already in descending-level creation order).
  struct RawNode {
    VertexId level;
    std::vector<NodeId> children;
    std::vector<EdgeId> edges;
  };
  std::vector<RawNode> raw;

  for (VertexId k = trusses.tmax; k >= 2; --k) {
    if (by_level[k].empty()) continue;

    // Activate this level's edges, merging components.  A component's
    // previous node (from a deeper level) becomes a pending child the
    // moment the component grows past it.
    touched_roots.clear();
    for (const EdgeId e : by_level[k]) {
      const auto [u, v] = trusses.edges[e];
      // Absorb both endpoints' current nodes as pending children before
      // the union, so deeper trusses hang under the node built at this
      // level.
      for (const VertexId x : {u, v}) {
        const VertexId r = tracker.Find(x);
        if (tracker.NodeOf(r) != kNoNode) {
          pending_children[r].push_back(tracker.NodeOf(r));
          tracker.SetNode(r, kNoNode);
        }
      }
      const VertexId root = tracker.Union(u, v, pending_children);
      if (level_edges_of_root[root].empty()) touched_roots.push_back(root);
      level_edges_of_root[root].push_back(e);
    }

    // Merges can have chained roots: consolidate level edges under the
    // final root of each component.
    for (const VertexId r : touched_roots) {
      const VertexId final_root = tracker.Find(r);
      if (final_root != r && !level_edges_of_root[r].empty()) {
        auto& src = level_edges_of_root[r];
        auto& dst = level_edges_of_root[final_root];
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
      }
    }

    // One node per component that gained edges at this level.
    for (const VertexId r : touched_roots) {
      const VertexId root = tracker.Find(r);
      if (level_edges_of_root[root].empty()) continue;
      const auto id = static_cast<NodeId>(raw.size());
      RawNode node;
      node.level = k;
      node.edges = std::move(level_edges_of_root[root]);
      level_edges_of_root[root].clear();
      node.children = std::move(pending_children[root]);
      pending_children[root].clear();
      std::sort(node.children.begin(), node.children.end());
      node.children.erase(
          std::unique(node.children.begin(), node.children.end()),
          node.children.end());
      raw.push_back(std::move(node));
      tracker.SetNode(root, id);
    }
  }

  // Raw creation order is already descending by level (levels processed
  // high to low; nodes within a level are unordered peers).  Copy out and
  // wire parents.
  nodes_.resize(raw.size());
  for (NodeId i = 0; i < raw.size(); ++i) {
    nodes_[i].level = raw[i].level;
    nodes_[i].edges = std::move(raw[i].edges);
    nodes_[i].children = std::move(raw[i].children);
    for (const NodeId child : nodes_[i].children) {
      COREKIT_DCHECK(child < i);
      nodes_[child].parent = i;
    }
  }

  subtree_edges_.assign(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    subtree_edges_[i] += static_cast<EdgeId>(nodes_[i].edges.size());
    if (nodes_[i].parent != kNoNode) {
      subtree_edges_[nodes_[i].parent] += subtree_edges_[i];
    }
  }
}

std::vector<EdgeId> TrussForest::TrussEdges(NodeId id) const {
  std::vector<EdgeId> result;
  result.reserve(subtree_edges_[id]);
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    result.insert(result.end(), nodes_[cur].edges.begin(),
                  nodes_[cur].edges.end());
    stack.insert(stack.end(), nodes_[cur].children.begin(),
                 nodes_[cur].children.end());
  }
  return result;
}

std::vector<VertexId> TrussForest::TrussVertices(
    const TrussDecomposition& trusses, NodeId id) const {
  std::vector<VertexId> vertices;
  for (const EdgeId e : TrussEdges(id)) {
    vertices.push_back(trusses.edges[e].first);
    vertices.push_back(trusses.edges[e].second);
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

}  // namespace corekit
