// Finding the best single connected k-truss (Section VI-B, second half).
//
// Scores every connected k-truss in the truss forest and returns the best
// one under a metric on the primary values n/m/b.  The paper explicitly
// leaves a time-optimal algorithm open for this problem, so the scorer is
// a direct per-community computation over the forest: each truss is
// materialized once and scored by scanning its vertices' incident edges —
// O(sum over trusses of their size), the truss analogue of the paper's
// Section IV-B baseline.

#pragma once

#include <vector>

#include "corekit/core/metrics.h"
#include "corekit/core/primary_values.h"
#include "corekit/truss/truss_forest.h"

namespace corekit {

struct SingleTrussProfile {
  // scores[i] = Q(truss of forest node i).
  std::vector<double> scores;
  std::vector<PrimaryValues> primaries;
  TrussForest::NodeId best_node = 0;
  VertexId best_k = 2;
  double best_score = 0.0;
};

// Primary values (n, m, b) of every forest node's truss.
std::vector<PrimaryValues> ComputeSingleTrussPrimaries(
    const Graph& graph, const TrussDecomposition& trusses,
    const TrussForest& forest);

// Best single k-truss under a metric on n/m/b (triangle metrics rejected,
// as in best_truss_set.h).
SingleTrussProfile FindBestSingleTruss(const Graph& graph,
                                       const TrussDecomposition& trusses,
                                       const TrussForest& forest,
                                       Metric metric);

}  // namespace corekit
