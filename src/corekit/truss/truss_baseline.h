// Baseline scorer for the truss extension: from-scratch per-k scoring of
// every k-truss set, mirroring the paper's Section III-A baseline so the
// extension's runtime experiment (bench/ext_truss_runtime) can reproduce
// the same optimal-vs-baseline gap for trusses that Figure 7 shows for
// cores.

#pragma once

#include "corekit/truss/best_truss_set.h"

namespace corekit {

// Primary values of the k-truss set T_k by direct recomputation: scan all
// edges for membership, then all member vertices for the boundary.
// O(m + n) per k, O(tmax * m) over a full profile — the cost the
// incremental ComputeTrussSetPrimaries avoids.
PrimaryValues ScratchTrussSetPrimaries(const Graph& graph,
                                       const TrussDecomposition& trusses,
                                       VertexId k);

// Section III-A-style baseline profile for trusses.
TrussSetProfile BaselineFindBestTrussSet(const Graph& graph,
                                         const TrussDecomposition& trusses,
                                         Metric metric);

}  // namespace corekit
