#include "corekit/gen/lfr_like.h"

#include <algorithm>
#include <cmath>

#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

namespace {

// Samples from a discrete power law P(x) ~ x^-tau on [lo, hi] via inverse
// transform on the continuous law, rounded down.
VertexId SamplePowerLaw(Rng& rng, double tau, VertexId lo, VertexId hi) {
  COREKIT_DCHECK(lo >= 1);
  COREKIT_DCHECK(lo <= hi);
  if (lo == hi) return lo;
  const double exponent = 1.0 - tau;  // != 0 for the taus we use
  const double a = std::pow(static_cast<double>(lo), exponent);
  const double b = std::pow(static_cast<double>(hi) + 1.0, exponent);
  const double u = rng.NextDouble();
  const double x = std::pow(a + (b - a) * u, 1.0 / exponent);
  return std::clamp(static_cast<VertexId>(x), lo, hi);
}

}  // namespace

LfrLikeResult GenerateLfrLike(const LfrLikeParams& params) {
  COREKIT_CHECK_GE(params.min_degree, 1u);
  COREKIT_CHECK_LE(params.min_degree, params.max_degree);
  COREKIT_CHECK_GE(params.min_community, 2u);
  COREKIT_CHECK_LE(params.min_community, params.max_community);
  COREKIT_CHECK_GE(params.mu, 0.0);
  COREKIT_CHECK_LE(params.mu, 1.0);
  COREKIT_CHECK_GE(params.num_vertices, params.min_community);

  const VertexId n = params.num_vertices;
  Rng rng(params.seed);

  LfrLikeResult result;
  result.community.resize(n);

  // --- Community sizes: power-law chunks until n is covered (the last
  // community absorbs the remainder, clamped upward to min_community by
  // merging into its predecessor when too small). ------------------------
  std::vector<VertexId> sizes;
  VertexId assigned = 0;
  while (assigned < n) {
    VertexId size =
        SamplePowerLaw(rng, params.tau2, params.min_community,
                       params.max_community);
    size = std::min(size, n - assigned);
    sizes.push_back(size);
    assigned += size;
  }
  if (sizes.size() > 1 && sizes.back() < params.min_community) {
    sizes[sizes.size() - 2] += sizes.back();
    sizes.pop_back();
  }
  result.num_communities = static_cast<VertexId>(sizes.size());

  std::vector<VertexId> community_start(sizes.size() + 1, 0);
  {
    VertexId offset = 0;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      community_start[c] = offset;
      for (VertexId i = 0; i < sizes[c]; ++i) {
        result.community[offset + i] = static_cast<VertexId>(c);
      }
      offset += sizes[c];
    }
    community_start[sizes.size()] = offset;
  }

  // --- Degrees: power law, split into intra / inter stubs by mu. --------
  // Intra-degree is capped at community size - 1 (a vertex cannot have
  // more distinct intra neighbors than members).
  std::vector<VertexId> intra_stubs_of(n);
  std::vector<VertexId> inter_stubs_of(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId degree = SamplePowerLaw(rng, params.tau1,
                                           params.min_degree,
                                           params.max_degree);
    const auto inter = static_cast<VertexId>(
        std::lround(params.mu * static_cast<double>(degree)));
    const VertexId community_cap = sizes[result.community[v]] - 1;
    intra_stubs_of[v] = std::min<VertexId>(degree - inter, community_cap);
    inter_stubs_of[v] = inter;
  }

  GraphBuilder builder(n);

  // --- Intra-community stub matching, per community. --------------------
  std::vector<VertexId> stubs;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    stubs.clear();
    for (VertexId v = community_start[c]; v < community_start[c + 1]; ++v) {
      for (VertexId s = 0; s < intra_stubs_of[v]; ++s) stubs.push_back(v);
    }
    rng.Shuffle(stubs);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      builder.AddEdge(stubs[i], stubs[i + 1]);  // loops/dups drop in Build
    }
  }

  // --- Inter-community stub matching, global; pairs that land inside one
  // community are dropped (they would distort mu upward). ----------------
  stubs.clear();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId s = 0; s < inter_stubs_of[v]; ++s) stubs.push_back(v);
  }
  rng.Shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (result.community[stubs[i]] != result.community[stubs[i + 1]]) {
      builder.AddEdge(stubs[i], stubs[i + 1]);
    }
  }

  result.graph = builder.Build();
  return result;
}

}  // namespace corekit
