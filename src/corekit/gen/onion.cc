#include <unordered_set>
#include <vector>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateOnion(const OnionParams& params) {
  const VertexId n = params.num_vertices;
  const VertexId layers = params.num_layers;
  COREKIT_CHECK_GE(layers, 1u);
  COREKIT_CHECK_GE(n, layers);

  // Layer i occupies a contiguous id range, with layer layers-1 (the
  // innermost, highest-coreness layer) at the top of the id space.  Every
  // vertex of layer i draws k_i distinct neighbors from the union of
  // layers >= i, so the induced subgraph on layers >= i has minimum degree
  // >= k_i and therefore every vertex there has coreness >= k_i:
  // a guaranteed nested core hierarchy of depth ~target_kmax.
  std::vector<VertexId> starts(static_cast<std::size_t>(layers) + 1, 0);
  const VertexId base = n / layers;
  for (VertexId i = 0; i < layers; ++i) {
    starts[i + 1] = starts[i] + base + (i < n % layers ? 1 : 0);
  }
  COREKIT_CHECK_EQ(starts[layers], n);

  auto layer_target = [&](VertexId i) -> VertexId {
    // Linear ramp from ~target_kmax/layers up to target_kmax.
    return static_cast<VertexId>(
        (static_cast<std::uint64_t>(params.target_kmax) * (i + 1)) / layers);
  };

  // The innermost layer's pool is just itself; it must be able to host the
  // top target degree.
  const VertexId innermost_size = starts[layers] - starts[layers - 1];
  COREKIT_CHECK_GT(innermost_size, layer_target(layers - 1))
      << "innermost onion layer too small for target_kmax";

  Rng rng(params.seed);
  GraphBuilder builder(n);
  std::unordered_set<VertexId> picked;
  for (VertexId i = 0; i < layers; ++i) {
    const VertexId k_i = layer_target(i);
    const VertexId pool_begin = starts[i];
    const std::uint64_t pool_size = n - pool_begin;
    for (VertexId v = starts[i]; v < starts[i + 1]; ++v) {
      picked.clear();
      while (picked.size() < k_i) {
        const auto t =
            static_cast<VertexId>(pool_begin + rng.NextBounded(pool_size));
        if (t == v) continue;
        if (picked.insert(t).second) builder.AddEdge(v, t);
      }
    }
  }
  return builder.Build();
}

}  // namespace corekit
