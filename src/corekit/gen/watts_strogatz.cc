#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateWattsStrogatz(VertexId num_vertices, VertexId k_nearest,
                            double rewire_prob, std::uint64_t seed) {
  COREKIT_CHECK_GE(num_vertices, 3u);
  COREKIT_CHECK_GE(k_nearest, 1u);
  COREKIT_CHECK_LT(2 * k_nearest, num_vertices);
  COREKIT_CHECK_GE(rewire_prob, 0.0);
  COREKIT_CHECK_LE(rewire_prob, 1.0);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  const auto n = static_cast<std::uint64_t>(num_vertices);

  // Ring lattice: v connects to its k_nearest clockwise neighbors; each
  // such edge is rewired (keeping endpoint v) with probability
  // rewire_prob.  Rewired targets are uniform; collisions with existing
  // edges are dropped by the builder, matching the usual implementation.
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (VertexId j = 1; j <= k_nearest; ++j) {
      const auto w = static_cast<VertexId>((v + j) % n);
      if (rng.NextBool(rewire_prob)) {
        auto t = static_cast<VertexId>(rng.NextBounded(n));
        if (t == v) t = w;  // avoid self-loop; keep the lattice edge instead
        builder.AddEdge(v, t);
      } else {
        builder.AddEdge(v, w);
      }
    }
  }
  return builder.Build();
}

}  // namespace corekit
