// Hyperbolic random graph generator (Krioukov et al. popularity ×
// similarity model).
//
// Points are placed in a hyperbolic disk — radial coordinate governs
// popularity (power-law degrees with exponent 2*alpha/zeta + 1), angular
// coordinate similarity — and vertices connect when their hyperbolic
// distance is below the disk radius.  The resulting graphs combine a
// heavy tail, high clustering, *and* a deep, smooth core hierarchy: the
// closest synthetic match to the Internet/AS-style networks whose k-core
// structure reference [10] of the paper analyzes (and a stress test for
// Figures 5/6's level sweeps).
//
// Naive pairwise distance testing is O(n^2); this implementation is
// intended for n up to a few tens of thousands, which covers the test
// and bench scales.

#pragma once

#include <cstdint>

#include "corekit/graph/graph.h"

namespace corekit {

struct HyperbolicParams {
  VertexId num_vertices = 2000;
  // Controls the degree exponent gamma = 2*alpha + 1 (alpha in (1/2, 1]
  // gives gamma in (2, 3], the social-network range).
  double alpha = 0.75;
  // Disk radius scale: R = 2 log(n) + radius_offset; more negative =
  // denser.
  double radius_offset = 0.0;
  std::uint64_t seed = 1;
};

Graph GenerateHyperbolic(const HyperbolicParams& params);

}  // namespace corekit
