#include <unordered_set>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         std::uint64_t seed) {
  COREKIT_CHECK_GE(num_vertices, 2u);
  const auto n = static_cast<std::uint64_t>(num_vertices);
  const std::uint64_t max_edges = n * (n - 1) / 2;
  COREKIT_CHECK_LE(num_edges, max_edges)
      << "requested more edges than the complete graph holds";

  Rng rng(seed);
  GraphBuilder builder(num_vertices);

  // Rejection-sample distinct unordered pairs.  For the densities used in
  // the benchmarks (m << n^2 / 2) the expected number of rejections is
  // negligible; a dense request would be better served by reservoir
  // sampling over pair indices, which we also handle below for safety.
  if (num_edges * 3 < max_edges) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(num_edges) * 2);
    while (seen.size() < num_edges) {
      auto u = static_cast<VertexId>(rng.NextBounded(n));
      auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const std::uint64_t key = static_cast<std::uint64_t>(u) * n + v;
      if (seen.insert(key).second) builder.AddEdge(u, v);
    }
  } else {
    // Dense case: Floyd's algorithm over linearized pair indices.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(num_edges) * 2);
    for (std::uint64_t j = max_edges - num_edges; j < max_edges; ++j) {
      std::uint64_t t = rng.NextBounded(j + 1);
      if (!chosen.insert(t).second) {
        t = j;
        chosen.insert(j);
      }
      // Decode pair index t -> (u, v), u < v, row-major over upper triangle.
      VertexId u = 0;
      std::uint64_t remaining = t;
      std::uint64_t row_len = n - 1;
      while (remaining >= row_len) {
        remaining -= row_len;
        --row_len;
        ++u;
      }
      const auto v = static_cast<VertexId>(u + 1 + remaining);
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace corekit
