#include <vector>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateBarabasiAlbert(VertexId num_vertices, VertexId edges_per_vertex,
                             std::uint64_t seed) {
  COREKIT_CHECK_GE(edges_per_vertex, 1u);
  COREKIT_CHECK_GT(num_vertices, edges_per_vertex);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);

  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element is sampling proportional to degree (the classic implementation
  // trick).  The first m0 = edges_per_vertex + 1 vertices start as a clique
  // seed so every attachment target has non-zero degree.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(num_vertices) *
                  edges_per_vertex * 2);
  const VertexId m0 = edges_per_vertex + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<VertexId> picked;
  picked.reserve(edges_per_vertex);
  for (VertexId v = m0; v < num_vertices; ++v) {
    picked.clear();
    // Sample edges_per_vertex distinct targets proportional to degree.
    while (picked.size() < edges_per_vertex) {
      const VertexId t = targets[rng.NextBounded(targets.size())];
      bool duplicate = false;
      for (const VertexId p : picked) duplicate |= (p == t);
      if (!duplicate) picked.push_back(t);
    }
    for (const VertexId t : picked) {
      builder.AddEdge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return builder.Build();
}

}  // namespace corekit
