#include "corekit/gen/hyperbolic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateHyperbolic(const HyperbolicParams& params) {
  const VertexId n = params.num_vertices;
  COREKIT_CHECK_GE(n, 2u);
  COREKIT_CHECK_GT(params.alpha, 0.5);

  const double radius =
      2.0 * std::log(static_cast<double>(n)) + params.radius_offset;
  Rng rng(params.seed);

  // Radial density ~ alpha * sinh(alpha r) / (cosh(alpha R) - 1):
  // inverse-transform sample r = acosh(1 + u (cosh(alpha R) - 1)) / alpha.
  std::vector<double> r(n);
  std::vector<double> theta(n);
  const double cosh_ar = std::cosh(params.alpha * radius);
  for (VertexId v = 0; v < n; ++v) {
    const double u = rng.NextDouble();
    r[v] = std::acosh(1.0 + u * (cosh_ar - 1.0)) / params.alpha;
    theta[v] = 2.0 * std::numbers::pi * rng.NextDouble();
  }

  // Connect pairs with hyperbolic distance < R:
  //   cosh d = cosh r1 cosh r2 - sinh r1 sinh r2 cos(dtheta).
  std::vector<double> cosh_r(n);
  std::vector<double> sinh_r(n);
  for (VertexId v = 0; v < n; ++v) {
    cosh_r[v] = std::cosh(r[v]);
    sinh_r[v] = std::sinh(r[v]);
  }
  const double cosh_radius = std::cosh(radius);

  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double cosh_d =
          cosh_r[u] * cosh_r[v] -
          sinh_r[u] * sinh_r[v] * std::cos(theta[u] - theta[v]);
      if (cosh_d < cosh_radius) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace corekit
