#include <cmath>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

namespace {

// Samples the edges of a G(n, p) block via geometric skipping (Batagelj &
// Brandes), visiting each present edge in O(1) expected time instead of
// testing all O(n^2) pairs.  `emit(i, j)` receives local indices i < j.
template <typename Emit>
void SampleGnpBlockUpper(std::uint64_t n, double p, Rng& rng, Emit emit) {
  if (p <= 0.0 || n < 2) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < n; ++i) {
      for (std::uint64_t j = i + 1; j < n; ++j) emit(i, j);
    }
    return;
  }
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto sn = static_cast<std::int64_t>(n);
  while (v < sn) {
    const double r = 1.0 - rng.NextDouble();  // in (0, 1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < sn) {
      w -= v;
      ++v;
    }
    if (v < sn) {
      emit(static_cast<std::uint64_t>(w), static_cast<std::uint64_t>(v));
    }
  }
}

// Same skipping technique over a full bipartite block A x B.
template <typename Emit>
void SampleGnpBlockBipartite(std::uint64_t na, std::uint64_t nb, double p,
                             Rng& rng, Emit emit) {
  if (p <= 0.0 || na == 0 || nb == 0) return;
  const double log1mp = std::log(1.0 - p);
  const std::uint64_t total = na * nb;
  std::uint64_t idx = 0;
  while (true) {
    const double r = 1.0 - rng.NextDouble();
    const auto skip =
        static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    if (skip >= total - idx) break;
    idx += skip;
    emit(idx / nb, idx % nb);
    ++idx;
    if (idx >= total) break;
  }
}

}  // namespace

PlantedPartitionResult GeneratePlantedPartition(
    const PlantedPartitionParams& params) {
  COREKIT_CHECK_GE(params.num_communities, 1u);
  COREKIT_CHECK_GE(params.num_vertices, params.num_communities);

  const VertexId n = params.num_vertices;
  const VertexId groups = params.num_communities;
  const VertexId base = n / groups;
  Rng rng(params.seed);

  PlantedPartitionResult result;
  result.community.resize(n);

  // Community c owns the contiguous id range [starts[c], starts[c+1]); the
  // first (n % groups) communities get one extra vertex.
  std::vector<VertexId> starts(static_cast<std::size_t>(groups) + 1, 0);
  for (VertexId c = 0; c < groups; ++c) {
    const VertexId size = base + (c < n % groups ? 1 : 0);
    starts[c + 1] = starts[c] + size;
    for (VertexId v = starts[c]; v < starts[c + 1]; ++v) {
      result.community[v] = c;
    }
  }

  GraphBuilder builder(n);
  for (VertexId c = 0; c < groups; ++c) {
    const VertexId offset = starts[c];
    const std::uint64_t size = starts[c + 1] - starts[c];
    SampleGnpBlockUpper(size, params.p_in, rng,
                        [&](std::uint64_t i, std::uint64_t j) {
                          builder.AddEdge(offset + static_cast<VertexId>(i),
                                          offset + static_cast<VertexId>(j));
                        });
    for (VertexId c2 = c + 1; c2 < groups; ++c2) {
      const VertexId offset2 = starts[c2];
      const std::uint64_t size2 = starts[c2 + 1] - starts[c2];
      SampleGnpBlockBipartite(
          size, size2, params.p_out, rng,
          [&](std::uint64_t i, std::uint64_t j) {
            builder.AddEdge(offset + static_cast<VertexId>(i),
                            offset2 + static_cast<VertexId>(j));
          });
    }
  }

  result.graph = builder.Build();
  return result;
}

}  // namespace corekit
