#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/logging.h"
#include "corekit/util/random.h"

namespace corekit {

Graph GenerateRmat(const RmatParams& params) {
  COREKIT_CHECK_GE(params.scale, 1u);
  COREKIT_CHECK_LT(params.scale, 31u);
  const double d = 1.0 - params.a - params.b - params.c;
  COREKIT_CHECK_GT(d, 0.0) << "R-MAT probabilities must sum below 1";

  const VertexId n = static_cast<VertexId>(1u) << params.scale;
  Rng rng(params.seed);
  GraphBuilder builder(n);

  // Each edge descends `scale` levels of the 2x2 recursive partition.
  // Self-loops and duplicates are dropped by the builder, so the final
  // simple-edge count lands slightly under params.num_edges — same
  // convention as the Graph500 reference generator.
  for (EdgeId e = 0; e < params.num_edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t level = 0; level < params.scale; ++level) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace corekit
