// Synthetic graph generators: the workload substrate.
//
// The paper evaluates on 10 public real-world networks (SNAP / Network
// Repository, Table III) that are not redistributable inside this
// repository.  These generators produce stand-ins with the structural
// properties the algorithms are sensitive to — heavy-tailed degree
// distributions (R-MAT, Barabási–Albert), community structure (planted
// partition), clustering (Watts–Strogatz), and controllable core hierarchy
// depth (onion) — so every code path and every complexity trend of the
// evaluation is exercised.  Real SNAP files still drop in unchanged via
// ReadSnapEdgeList (graph/edge_list_io.h).
//
// All generators are deterministic given their seed.

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

// Erdős–Rényi G(n, m): `num_edges` edges sampled uniformly without
// replacement from all vertex pairs.  Expected coreness concentrates around
// the average degree; useful as a "flat hierarchy" contrast case.
Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         std::uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches to
// `edges_per_vertex` existing vertices with probability proportional to
// degree.  Produces a power-law tail like the social networks in Table III.
Graph GenerateBarabasiAlbert(VertexId num_vertices, VertexId edges_per_vertex,
                             std::uint64_t seed);

// R-MAT (recursive matrix) generator with partition probabilities
// (a, b, c, d), a + b + c + d = 1.  `scale` gives n = 2^scale vertices.
// The standard Graph500 skew (0.57, 0.19, 0.19, 0.05) yields heavy-tailed
// degrees and deep core hierarchies.
struct RmatParams {
  std::uint32_t scale = 14;
  EdgeId num_edges = 1 << 18;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
};
Graph GenerateRmat(const RmatParams& params);

// Watts–Strogatz small world: ring lattice with `k_nearest` neighbors per
// side, each edge rewired with probability `rewire_prob`.  High clustering
// coefficient; exercises the triangle/triplet path (Algorithm 3).
Graph GenerateWattsStrogatz(VertexId num_vertices, VertexId k_nearest,
                            double rewire_prob, std::uint64_t seed);

// Planted partition: `num_communities` equal-sized groups; intra-community
// edge probability p_in, inter-community probability p_out.  Ground-truth
// communities for the case-study bench (Tables V–VII analogue).
struct PlantedPartitionParams {
  VertexId num_vertices = 1000;
  VertexId num_communities = 10;
  double p_in = 0.3;
  double p_out = 0.005;
  std::uint64_t seed = 1;
};
struct PlantedPartitionResult {
  Graph graph;
  // community[v] in [0, num_communities).
  std::vector<VertexId> community;
};
PlantedPartitionResult GeneratePlantedPartition(
    const PlantedPartitionParams& params);

// "Onion" generator: a nested hierarchy of ever-denser layers, giving a
// directly controllable kmax and many non-trivial shells — the structure
// Figures 5/6 sweep over.  Layer i (0-based, of `num_layers`) contains
// vertices whose target coreness grows linearly up to about
// `target_kmax`.  Implemented as nested random circulant-like graphs where
// layer i is wired with degree ~ target coreness inside the union of
// layers >= i.
struct OnionParams {
  VertexId num_vertices = 10000;
  VertexId num_layers = 16;
  VertexId target_kmax = 64;
  std::uint64_t seed = 1;
};
Graph GenerateOnion(const OnionParams& params);

}  // namespace corekit
