// LFR-like community benchmark generator (Lancichinetti–Fortunato–
// Radicchi inspired): power-law community sizes, power-law degrees, and a
// mixing parameter mu controlling the fraction of each vertex's edges
// that leave its community.
//
// This is the workload the community-detection literature the paper
// draws its metrics from ([11], [63], [37]) evaluates on; the case-study
// and modularity experiments get more realistic heterogeneity from it
// than from the equal-block planted partition.  The generator is a
// faithful *shape* analogue, not a bit-exact LFR port: degrees are drawn
// from a discrete power law, split mu/(1-mu) between inter- and
// intra-community stubs, and stubs are matched uniformly (self-loops and
// duplicates dropped), which preserves the degree and mixing structure
// while staying O(m).

#pragma once

#include <cstdint>
#include <vector>

#include "corekit/graph/graph.h"
#include "corekit/graph/types.h"

namespace corekit {

struct LfrLikeParams {
  VertexId num_vertices = 1000;
  // Degree power law: P(d) ~ d^-tau1 on [min_degree, max_degree].
  double tau1 = 2.5;
  VertexId min_degree = 4;
  VertexId max_degree = 50;
  // Community-size power law: P(s) ~ s^-tau2 on [min_community,
  // max_community].
  double tau2 = 1.8;
  VertexId min_community = 20;
  VertexId max_community = 150;
  // Mixing parameter: expected fraction of a vertex's edges that leave
  // its community (0 = perfectly separated, 1 = no structure).
  double mu = 0.2;
  std::uint64_t seed = 1;
};

struct LfrLikeResult {
  Graph graph;
  // community[v] in [0, num_communities).
  std::vector<VertexId> community;
  VertexId num_communities = 0;
};

LfrLikeResult GenerateLfrLike(const LfrLikeParams& params);

}  // namespace corekit
