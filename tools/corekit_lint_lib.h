// corekit_lint: repo-specific correctness rules clang-tidy cannot express.
//
// clang-tidy sees one translation unit at a time; these rules are about
// the repo's own conventions and cross-file contracts:
//
//   pragma-once   every header uses #pragma once (no legacy guards);
//   no-endl       no std::endl under src/ — the library has hot logging
//                 paths and '\n' never flushes behind the caller's back;
//   naked-new     no naked new/delete/malloc outside src/corekit/util/ —
//                 ownership lives in containers and smart pointers;
//   bench-suite   every bench suite tag is one of smoke/paper/ext, so a
//                 typo cannot silently drop a case from CI;
//   stage-table   the EngineStage enum and kEngineStageNames table in
//                 stage_stats.h stay in sync (entry i is the lowercased
//                 enumerator minus its 'k' prefix);
//   layering      src/corekit/<layer>/ includes only the layers at or
//                 below it (core/ must never include engine/, ...);
//   lock-discipline  raw std::mutex / std::condition_variable (and the
//                 std lock RAII templates) are banned under src/ — use
//                 the Clang-thread-safety-annotated corekit::Mutex /
//                 corekit::CondVar / corekit::MutexLock wrappers; every
//                 Mutex member in a header needs a COREKIT_GUARDED_BY
//                 sibling naming it (CondVar members need at least one
//                 guarded sibling in the file); and the per-file lock
//                 acquisition graph — derived from COREKIT_REQUIRES
//                 seeds plus MutexLock / .Lock() nesting — must be
//                 acyclic (the compile-time complement of TSan's
//                 deadlock detection);
//   stale-waiver  every `corekit-lint: allow(<rule>)` comment must name
//                 a rule that still exists — dead waivers rot into
//                 false documentation.
//
// A violation can be waived on its line with a trailing
// `corekit-lint: allow(<rule>)` comment — grep-able, per-line, per-rule.
//
// The library is std-only (no corekit dependency): the linter must build
// and run even when the library itself is mid-refactor.

#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace corekit::lint {

struct Violation {
  // Path as reported, '/'-separated, relative to the scanned root.
  std::string file;
  // 1-based line; 0 when the finding is about the whole file.
  int line = 0;
  // Rule slug ("pragma-once", "no-endl", ...).
  std::string rule;
  std::string message;
};

// "file:line: [rule] message" (line omitted when 0).
std::string FormatViolation(const Violation& violation);

// Strips // and /* */ comments and the contents of string/char literals
// (quotes kept, contents blanked), preserving line structure.  The
// code-only view the token-level rules match against.
std::string StripCommentsAndStrings(const std::string& content);

// Individual rules; `path` is the repo-relative path.  Each appends its
// findings to `out`.
void CheckPragmaOnce(const std::string& path, const std::string& content,
                     std::vector<Violation>& out);
void CheckNoEndl(const std::string& path, const std::string& content,
                 std::vector<Violation>& out);
void CheckNakedNew(const std::string& path, const std::string& content,
                   std::vector<Violation>& out);
void CheckBenchSuites(const std::string& path, const std::string& content,
                      std::vector<Violation>& out);
void CheckStageTable(const std::string& path, const std::string& content,
                     std::vector<Violation>& out);
void CheckLayering(const std::string& path, const std::string& content,
                   std::vector<Violation>& out);
void CheckLockDiscipline(const std::string& path, const std::string& content,
                         std::vector<Violation>& out);
void CheckStaleWaivers(const std::string& path, const std::string& content,
                       std::vector<Violation>& out);

// The registry of rule slugs the stale-waiver pass validates against.
// Adding a rule means adding its slug here, or every waiver of it fails.
const std::vector<std::string>& KnownRules();

// One active `corekit-lint: allow(<rule>)` comment.
struct Waiver {
  std::string file;
  int line = 0;
  std::string rule;
};

// Every waiver comment in `content`, known rule or not (the stale-waiver
// pass flags the unknown ones; the --waivers report lists them all).
std::vector<Waiver> CollectWaivers(const std::string& path,
                                   const std::string& content);

// Waivers across the same tree walk LintTree performs.
std::vector<Waiver> CollectWaiversInTree(
    const std::filesystem::path& root, const std::vector<std::string>& subdirs);

// Applies every rule whose scope covers `path` (see the matrix in the
// .cc).  The entry point the tree walk and the unit tests share.
std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content);

// Lints every .h/.cc file under root/<subdir> for each given subdir,
// in sorted path order.  Missing subdirs are skipped silently.
std::vector<Violation> LintTree(const std::filesystem::path& root,
                                const std::vector<std::string>& subdirs);

}  // namespace corekit::lint
