// The comparison engine behind tools/bench_diff: load two BENCH_<suite>.json
// reports (emitted by the bench harness, bench/harness/harness.h), match
// their cases by name, compute per-case deltas on a chosen timing metric,
// and decide pass/fail against a relative regression threshold.
//
// Split from the binary so the logic is unit-testable
// (tests/tools/bench_diff_test.cc) and reusable from other tooling.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "corekit/util/json.h"
#include "corekit/util/status.h"

namespace corekit::bench_diff {

struct DiffOptions {
  // A case fails when (current - baseline) / baseline exceeds this.
  double threshold = 0.25;
  // Cases whose baseline time is below this floor never fail — at
  // micro-scale the delta is timer noise, not a regression (CI runs the
  // smoke suite on tiny graphs).
  double min_seconds = 0.005;
  // Which aggregated sample to compare: "min" (default; robust to
  // one-off scheduling noise) or "median".
  std::string metric = "min";
  // Treat cases present on one side only as a failure (default: report
  // but pass — suites legitimately gain and lose cases across commits).
  bool fail_on_missing = false;
};

struct CaseDiff {
  std::string name;
  // Seconds under the chosen metric; nullopt when absent on that side.
  std::optional<double> baseline_seconds;
  std::optional<double> current_seconds;
  // (current - baseline) / baseline; nullopt unless both sides present
  // and baseline > 0.
  std::optional<double> relative_delta;
  // Below options.min_seconds on the baseline side: informational only.
  bool below_noise_floor = false;
  // This case alone exceeds the threshold (missing sides count only when
  // fail_on_missing).
  bool regressed = false;
};

struct DiffReport {
  std::vector<CaseDiff> cases;  // baseline order, new cases appended
  int regressions = 0;
  int missing_in_current = 0;
  int new_in_current = 0;
  bool failed = false;  // regressions > 0, or missing and fail_on_missing
  // Non-empty when the two sides use different but compatible StageStats
  // layouts (the additive v2 -> v3 bump); printed with the verdict so
  // cross-version comparisons are visible, never silent.
  std::string stage_schema_note;
};

// Validates the two parsed reports (schema_version must match
// kBenchSchemaVersion on both sides, suites must agree) and diffs them.
// InvalidArgument / Corruption on malformed input.
Result<DiffReport> DiffReports(const Json& baseline, const Json& current,
                               const DiffOptions& options);

// Parses both documents and diffs them.
Result<DiffReport> DiffReportTexts(std::string_view baseline_text,
                                   std::string_view current_text,
                                   const DiffOptions& options);

// Renders the per-case delta table plus a one-line verdict.
void PrintDiffReport(const DiffReport& report, const DiffOptions& options,
                     std::ostream& out);

}  // namespace corekit::bench_diff
