// corekit command-line tool: run the paper's algorithms on SNAP-format
// edge lists without writing any code.
//
//   corekit_cli stats <graph>                 Table III-style statistics
//   corekit_cli best-k <graph> [metric]       best k-core set (Alg. 2/3)
//   corekit_cli best-core <graph> [metric]    best single k-core (Alg. 5)
//   corekit_cli best-truss <graph> [metric]   best k-truss set (Sec. VI-B)
//   corekit_cli profile <graph> [metric]      score of every k-core set
//   corekit_cli densest <graph>               Opt-D densest subgraph
//   corekit_cli best-s <graph> [metric]       best s-core set on random
//                                             weights (strength | w-con |
//                                             w-den)
//   corekit_cli distributed <graph>           distributed decomposition
//                                             rounds/messages [43]
//   corekit_cli semi-external <graph.bin>     O(n)-memory decomposition
//                                             from the binary file [61]
//   corekit_cli cluster <graph>               core-guided label propagation
//   corekit_cli resilience <graph>            collapse curves [44]
//   corekit_cli hierarchy-dot <graph> <out>   core forest as Graphviz DOT
//   corekit_cli fingerprint <graph> <out.svg> LaNet-vi style fingerprint
//   corekit_cli color <graph>                 smallest-last coloring [42]
//   corekit_cli anomalies <graph>             mirror-pattern outliers [53]
//   corekit_cli report <graph>                full best-k analysis
//   corekit_cli engine-stats <graph> [metric] pipeline StageStats as JSON
//   corekit_cli convert <graph> <out>         text -> binary snapshot
//                                             (.ckg = versioned format,
//                                             .bin = legacy)
//   corekit_cli generate <kind> <out> [n] [m] synthetic graph (er, ba,
//                                             rmat, ws, onion)
//
// <graph> is a SNAP text edge list, a legacy corekit binary snapshot
// when the path ends in ".bin", or a versioned .ckg binary graph (plain
// payloads load zero-copy via mmap; see graph/ckg_format.h) when the
// path ends in ".ckg" or --load-bin is given.  Metrics: ad, den, cr,
// con, mod, cc.
//
// --save-bin PATH (anywhere on the command line) writes the loaded
// (and, with --churn, patched) graph as a .ckg snapshot before the
// command runs; add --compress for the delta/group-varint compressed
// payload (fewer bytes/edge, loads decode instead of mmap'ing).
//
// --threads N (anywhere on the command line) switches every stage that
// has a parallel implementation — ingestion, CSR build, peeling,
// ordering, triangle counting — onto an N-worker pool (0 = hardware
// concurrency).  Text inputs then load through the mmap'd chunked
// reader; results are identical to the serial path.
//
// --churn FILE (anywhere on the command line) replays an edge update
// trace through CoreEngine::ApplyBatch before the command runs, so the
// command answers on the churned graph via in-place patching rather
// than a cold reload.  Trace format, one update per line:
//   + u v      insert edge {u, v}
//   - u v      delete edge {u, v}
//   ---        batch boundary (updates between boundaries are applied
//              as one ApplyBatch call)
//   # ...      comment; blank lines ignored
// Each batch prints its patch statistics (applied/rejected counts,
// coreness changes, traversal footprint, patch latency).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "corekit/corekit.h"

namespace {

using namespace corekit;

int Usage() {
  std::fprintf(
      stderr,
      "usage: corekit_cli <command> <graph> [--threads N] [...]\n"
      "commands: stats | best-k | best-core | best-truss | profile |\n"
      "          densest | best-s | distributed | semi-external |\n"
      "          cluster | resilience | hierarchy-dot <out.dot> |\n"
      "          fingerprint <out.svg> | color | anomalies | report |\n"
      "          engine-stats | convert <out.bin|out.ckg> |\n"
      "          generate <kind> <out> [n] [m]\n"
      "metrics:  ad den cr con mod cc (default ad)\n"
      "--threads N: run parallel ingest/peel/order/triangles on N workers\n"
      "             (0 = hardware concurrency)\n"
      "--save-bin PATH [--compress]: snapshot the loaded graph as a .ckg\n"
      "             binary (compressed = delta/group-varint payload)\n"
      "--load-bin:  treat <graph> as a .ckg binary regardless of extension\n"
      "--churn FILE: replay an edge update trace (+ u v / - u v, '---'\n"
      "             between batches, '#' comments) through ApplyBatch\n"
      "             before the command runs; prints per-batch patch\n"
      "             stats\n");
  return 2;
}

// Replays `path` through engine.ApplyBatch, one call per '---'-delimited
// batch, printing per-batch patch statistics.  Returns a process exit
// code (0 = replayed cleanly).
int ReplayChurnTrace(CoreEngine& engine, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open churn trace %s\n", path.c_str());
    return 1;
  }
  EdgeList inserts;
  EdgeList deletes;
  std::uint64_t line_number = 0;
  std::uint64_t batch_number = 0;
  double patch_seconds = 0;
  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  const auto flush = [&]() {
    if (inserts.empty() && deletes.empty()) return;
    const CoreEngine::BatchResult result =
        engine.ApplyBatch(inserts, deletes);
    ++batch_number;
    patch_seconds += result.seconds;
    applied += result.inserted + result.deleted;
    rejected += result.rejected;
    std::printf(
        "batch %llu: +%llu -%llu (rejected %llu) coreness_changed=%llu "
        "footprint=%llu epoch=%llu patch=%.3fms\n",
        static_cast<unsigned long long>(batch_number),
        static_cast<unsigned long long>(result.inserted),
        static_cast<unsigned long long>(result.deleted),
        static_cast<unsigned long long>(result.rejected),
        static_cast<unsigned long long>(result.coreness_changed),
        static_cast<unsigned long long>(result.footprint),
        static_cast<unsigned long long>(engine.Epoch()),
        1e3 * result.seconds);
    inserts.clear();
    deletes.clear();
  };
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op[0] == '#') continue;
    if (op == "---") {
      flush();
      continue;
    }
    unsigned long long u = 0;
    unsigned long long v = 0;
    if ((op != "+" && op != "-") || !(tokens >> u >> v)) {
      std::fprintf(stderr, "%s:%llu: bad trace line: %s\n", path.c_str(),
                   static_cast<unsigned long long>(line_number),
                   line.c_str());
      return 1;
    }
    auto& batch = op == "+" ? inserts : deletes;
    batch.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  flush();
  std::printf(
      "churn replay: %llu batch(es), %llu update(s) applied, %llu "
      "rejected, %.3fms total patch time, final epoch %llu\n",
      static_cast<unsigned long long>(batch_number),
      static_cast<unsigned long long>(applied),
      static_cast<unsigned long long>(rejected), 1e3 * patch_seconds,
      static_cast<unsigned long long>(engine.Epoch()));
  return 0;
}

bool IsBinaryPath(const std::string& path) {
  return path.size() > 4 && path.substr(path.size() - 4) == ".bin";
}

Metric MetricArg(int argc, char** argv, int index) {
  if (argc <= index) return Metric::kAverageDegree;
  const auto parsed = ParseMetric(argv[index]);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "unknown metric '%s'\n", argv[index]);
    std::exit(2);
  }
  return *parsed;
}

int CmdStats(const Graph& graph) {
  const GraphStats stats = ComputeGraphStats(graph);
  std::printf("n=%u m=%llu davg=%.2f dmin=%u dmax=%u kmax=%u components=%u "
              "largest=%u\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              stats.average_degree, stats.min_degree, stats.max_degree,
              stats.degeneracy, stats.num_components,
              stats.largest_component_size);
  return 0;
}

int CmdBestK(CoreEngine& engine, Metric metric, bool full_profile) {
  const CoreSetProfile& profile = engine.BestCoreSet(metric);
  if (full_profile) {
    TablePrinter table({"k", "|C_k|", "m(C_k)", "b(C_k)", "score"});
    for (VertexId k = 0; k <= engine.Cores().kmax; ++k) {
      table.AddRow({std::to_string(k),
                    std::to_string(profile.primaries[k].num_vertices),
                    std::to_string(profile.primaries[k].InternalEdges()),
                    std::to_string(profile.primaries[k].boundary_edges),
                    TablePrinter::FormatDouble(profile.scores[k], 6)});
    }
    table.Print(std::cout);
  }
  std::printf("best k (%s): %u with score %.6f\n", MetricName(metric),
              profile.best_k, profile.best_score);
  return 0;
}

int CmdBestCore(CoreEngine& engine, Metric metric) {
  if (engine.Forest().NumNodes() == 0) {
    std::fprintf(stderr, "graph is empty: no k-core to select\n");
    return 1;
  }
  const SingleCoreProfile& profile = engine.BestSingleCore(metric);
  std::printf("best single core (%s): k=%u, %u vertices, score %.6f\n",
              MetricName(metric), profile.best_k,
              engine.Forest().CoreSize(profile.best_node), profile.best_score);
  return 0;
}

int CmdBestTruss(const Graph& graph, Metric metric) {
  if (MetricNeedsTriangles(metric)) {
    std::fprintf(stderr,
                 "metric '%s' is not supported for the truss extension\n",
                 MetricShortName(metric));
    return 2;
  }
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussSetProfile profile = FindBestTrussSet(graph, trusses, metric);
  std::printf("best k-truss set (%s): k=%u with score %.6f (tmax=%u)\n",
              MetricName(metric), profile.best_k, profile.best_score,
              trusses.tmax);
  return 0;
}

int CmdBestS(const Graph& base, const std::string& metric_name) {
  WeightedMetric metric = WeightedMetric::kAverageStrength;
  if (metric_name == "w-con") metric = WeightedMetric::kWeightedConductance;
  if (metric_name == "w-den") metric = WeightedMetric::kWeightedDensity;
  const WeightedGraph graph = RandomlyWeighted(base, 10.0, 1);
  const SCoreDecomposition cores = ComputeSCoreDecomposition(graph);
  const SCoreProfile profile = FindBestSCore(graph, cores, metric);
  std::printf(
      "best s-core set (%s, random weights): s*=%.4f with score %.6f "
      "(smax=%.4f, %zu levels)\n",
      WeightedMetricName(metric), profile.best_s, profile.best_score,
      cores.smax, profile.thresholds.size());
  return 0;
}

int CmdDistributed(const Graph& graph) {
  const DistributedCoreResult result =
      ComputeCoreDecompositionDistributed(graph);
  std::printf(
      "distributed decomposition: %u rounds, %llu messages, converged=%s\n",
      result.rounds, static_cast<unsigned long long>(result.messages),
      result.converged ? "yes" : "no");
  return 0;
}

int CmdSemiExternal(const std::string& path) {
  const auto result = SemiExternalCoreDecomposition(path);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "semi-external decomposition: kmax=%u, %u passes, %.1f MB read\n",
      result->kmax, result->passes,
      static_cast<double>(result->bytes_read) / 1e6);
  return 0;
}

int CmdCluster(CoreEngine& engine) {
  const CoreClustering clustering = ClusterByCores(engine);
  std::printf(
      "core-guided clustering: %u clusters, modularity %.4f, %u rounds\n",
      clustering.num_clusters, clustering.modularity, clustering.rounds);
  return 0;
}

int CmdResilience(CoreEngine& engine) {
  for (const RemovalStrategy strategy :
       {RemovalStrategy::kRandom, RemovalStrategy::kHighestCorenessFirst}) {
    const ResilienceCurve curve =
        ComputeResilienceCurve(engine, strategy, 10);
    std::printf("%s (reference k >= %u):\n", RemovalStrategyName(strategy),
                curve.reference_k);
    for (const ResiliencePoint& point : curve.points) {
      std::printf("  removed %5.1f%%: kmax=%-4u ref core=%-8u giant=%u\n",
                  100 * point.removed_fraction, point.kmax,
                  point.reference_core_size, point.largest_component);
    }
  }
  return 0;
}

int CmdHierarchyDot(CoreEngine& engine, const std::string& out) {
  const SingleCoreProfile& profile =
      engine.BestSingleCore(Metric::kAverageDegree);
  HierarchyDotOptions options;
  options.scores = profile.scores;
  const Status status = WriteCoreForestDot(engine.Forest(), out, options);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%u nodes)\n", out.c_str(),
              engine.Forest().NumNodes());
  return 0;
}

int CmdFingerprint(const Graph& graph, const std::string& out) {
  const OnionDecomposition onion = ComputeOnionDecomposition(graph);
  const Status status = WriteCoreFingerprintSvg(graph, onion, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (kmax=%u, %u onion layers)\n", out.c_str(),
              onion.kmax, onion.num_layers);
  return 0;
}

int CmdColor(CoreEngine& engine) {
  const Graph& graph = engine.graph();
  const GraphColoring coloring = ColorBySmallestLast(graph, engine.Cores());
  VertexId max_degree = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    max_degree = std::max(max_degree, graph.Degree(v));
  }
  std::printf(
      "smallest-last coloring: %u colors (degeneracy bound %u, greedy "
      "bound %u)\n",
      coloring.num_colors, engine.Cores().kmax + 1, max_degree + 1);
  return 0;
}

int CmdAnomalies(CoreEngine& engine) {
  const Graph& graph = engine.graph();
  const CoreDecomposition& cores = engine.Cores();
  const MirrorPatternResult result = DetectMirrorAnomalies(engine);
  std::printf("mirror pattern: correlation %.3f, fit log(d) ~ %.3f + %.3f "
              "log(c+1)\n",
              result.correlation, result.alpha, result.beta);
  std::printf("top anomalies (vertex, degree, coreness, score):\n");
  for (std::size_t i = 0; i < 10 && i < result.ranking.size(); ++i) {
    const VertexId v = result.ranking[i];
    std::printf("  %-8u d=%-6u c=%-4u score=%.3f\n", v, graph.Degree(v),
                cores.coreness[v], result.score[v]);
  }
  return 0;
}

int CmdReport(CoreEngine& engine) {
  CmdStats(engine.graph());

  // All twelve searches share the engine's one decomposition, ordering,
  // and forest; the per-metric profiles stay cached for CmdEngineStats.
  const CoreForest& forest = engine.Forest();
  if (forest.NumNodes() == 0) {
    std::printf("graph is empty: no k-cores to score\n");
    return 0;
  }
  TablePrinter table({"metric", "best k (set)", "score (set)",
                      "best k (core)", "|core|", "score (core)"});
  for (const Metric metric : kAllMetrics) {
    const CoreSetProfile& set_profile = engine.BestCoreSet(metric);
    const SingleCoreProfile& single_profile = engine.BestSingleCore(metric);
    table.AddRow(
        {MetricShortName(metric), std::to_string(set_profile.best_k),
         TablePrinter::FormatDouble(set_profile.best_score, 4),
         std::to_string(single_profile.best_k),
         std::to_string(forest.CoreSize(single_profile.best_node)),
         TablePrinter::FormatDouble(single_profile.best_score, 4)});
  }
  table.Print(std::cout);

  const DensestSubgraphResult densest = OptDDensestSubgraph(engine);
  std::printf("densest core (Opt-D): %zu vertices, davg %.3f\n",
              densest.vertices.size(), densest.average_degree);
  return 0;
}

int CmdDensest(CoreEngine& engine) {
  const DensestSubgraphResult result = OptDDensestSubgraph(engine);
  std::printf("Opt-D densest subgraph: %zu vertices, average degree %.4f\n",
              result.vertices.size(), result.average_degree);
  return 0;
}

int CmdEngineStats(CoreEngine& engine, Metric metric) {
  // Drive the full pipeline once, then dump the per-stage instrumentation.
  // The second BestCoreSet call below is a deliberate cache hit so the
  // JSON demonstrates non-zero hit counters.
  (void)engine.Components();
  (void)engine.Triangles();
  (void)engine.Triplets();
  (void)engine.BestCoreSet(metric);
  (void)engine.BestSingleCore(metric);
  (void)engine.BestCoreSet(metric);
  std::printf("%s\n", engine.StatsJson().c_str());
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string kind = argv[2];
  const std::string out = argv[3];
  const auto n = static_cast<VertexId>(argc > 4 ? std::atoll(argv[4]) : 10000);
  const auto m = static_cast<EdgeId>(argc > 5 ? std::atoll(argv[5]) : 5 * n);
  Graph graph;
  if (kind == "er") {
    graph = GenerateErdosRenyi(n, m, SeedFromString(out));
  } else if (kind == "ba") {
    graph = GenerateBarabasiAlbert(
        n, std::max<VertexId>(1, static_cast<VertexId>(m / n)),
        SeedFromString(out));
  } else if (kind == "rmat") {
    RmatParams params;
    params.scale = 1;
    while ((static_cast<VertexId>(1u) << params.scale) < n) ++params.scale;
    params.num_edges = m;
    params.seed = SeedFromString(out);
    graph = GenerateRmat(params);
  } else if (kind == "ws") {
    graph = GenerateWattsStrogatz(
        n, std::max<VertexId>(1, static_cast<VertexId>(m / n / 2)), 0.1,
        SeedFromString(out));
  } else if (kind == "onion") {
    OnionParams params;
    params.num_vertices = n;
    params.target_kmax = std::max<VertexId>(
        4, static_cast<VertexId>(2 * m / std::max<EdgeId>(1, n)));
    params.seed = SeedFromString(out);
    graph = GenerateOnion(params);
  } else {
    std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
    return 2;
  }
  const Status status = WriteSnapEdgeList(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%llu\n", out.c_str(), graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --threads N / --threads=N (position-independent) before command
  // dispatch so every command accepts it.
  bool threads_given = false;
  std::uint32_t threads = 0;
  std::string churn_path;
  std::string save_bin_path;
  bool compress = false;
  bool load_bin = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --threads\n");
        return 2;
      }
      value = argv[++i];
    } else if (arg.substr(0, 10) == "--threads=") {
      value = argv[i] + 10;
    }
    if (value != nullptr) {
      threads_given = true;
      threads = static_cast<std::uint32_t>(std::max(0, std::atoi(value)));
      continue;
    }
    if (arg == "--churn") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --churn\n");
        return 2;
      }
      churn_path = argv[++i];
      continue;
    }
    if (arg.substr(0, 8) == "--churn=") {
      churn_path = argv[i] + 8;
      continue;
    }
    if (arg == "--save-bin") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --save-bin\n");
        return 2;
      }
      save_bin_path = argv[++i];
      continue;
    }
    if (arg.substr(0, 11) == "--save-bin=") {
      save_bin_path = argv[i] + 11;
      continue;
    }
    if (arg == "--compress") {
      compress = true;
      continue;
    }
    if (arg == "--load-bin") {
      load_bin = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (argc < 3) return Usage();
  if (command == "semi-external") return CmdSemiExternal(argv[2]);

  CoreEngineOptions options;
  if (threads_given) {
    options.num_threads = threads;
    options.parallel_peel = true;
    options.parallel_ordering = true;
    options.parallel_triangles = true;
  }

  // One engine per invocation: every command that derives artifacts from
  // the graph (decomposition, ordering, forest, profiles) goes through it,
  // so multi-stage commands never rebuild a shared artifact.  Text inputs
  // load through the engine's cold path (chunked parallel parse + parallel
  // CSR build, recorded as the ingest/build stages); binary snapshots
  // deserialize straight into a CSR.
  const std::string path = argv[2];
  std::unique_ptr<CoreEngine> engine;
  if (load_bin || HasCkgExtension(path)) {
    Result<std::unique_ptr<CoreEngine>> loaded =
        CoreEngine::FromBinaryFile(path, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    engine = std::move(*loaded);
  } else if (IsBinaryPath(path)) {
    Result<Graph> graph = ReadBinaryGraph(path);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    engine = std::make_unique<CoreEngine>(std::move(*graph), options);
  } else {
    Result<std::unique_ptr<CoreEngine>> loaded =
        CoreEngine::FromEdgeListFile(path, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    engine = std::move(*loaded);
  }

  // Replay the churn trace (if any) before dispatch: the command then
  // answers on the patched, current-epoch graph.
  if (!churn_path.empty()) {
    const int code = ReplayChurnTrace(*engine, churn_path);
    if (code != 0) return code;
  }

  // Snapshot after any churn so the file captures the graph the command
  // is about to answer on.
  if (!save_bin_path.empty()) {
    CkgWriteOptions write_options;
    write_options.compressed = compress;
    const Status status =
        WriteCkgGraph(engine->graph(), save_bin_path, write_options);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    const Result<CkgInfo> info = ReadCkgInfo(save_bin_path);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    const double per_edge =
        info->num_edges == 0 ? 0.0
                             : static_cast<double>(info->payload_bytes) /
                                   static_cast<double>(info->num_edges);
    std::printf("wrote %s (%s payload, %llu bytes, %.2f bytes/edge)\n",
                save_bin_path.c_str(),
                info->compressed ? "compressed" : "plain",
                static_cast<unsigned long long>(info->payload_bytes),
                per_edge);
  }

  if (command == "stats") return CmdStats(engine->graph());
  if (command == "best-k") {
    return CmdBestK(*engine, MetricArg(argc, argv, 3), /*full_profile=*/false);
  }
  if (command == "profile") {
    return CmdBestK(*engine, MetricArg(argc, argv, 3), /*full_profile=*/true);
  }
  if (command == "best-core") {
    return CmdBestCore(*engine, MetricArg(argc, argv, 3));
  }
  if (command == "best-truss") {
    return CmdBestTruss(engine->graph(), MetricArg(argc, argv, 3));
  }
  if (command == "densest") return CmdDensest(*engine);
  if (command == "best-s") {
    return CmdBestS(engine->graph(), argc > 3 ? argv[3] : "strength");
  }
  if (command == "distributed") return CmdDistributed(engine->graph());
  if (command == "cluster") return CmdCluster(*engine);
  if (command == "resilience") return CmdResilience(*engine);
  if (command == "hierarchy-dot") {
    if (argc < 4) return Usage();
    return CmdHierarchyDot(*engine, argv[3]);
  }
  if (command == "fingerprint") {
    if (argc < 4) return Usage();
    return CmdFingerprint(engine->graph(), argv[3]);
  }
  if (command == "color") return CmdColor(*engine);
  if (command == "anomalies") return CmdAnomalies(*engine);
  if (command == "report") return CmdReport(*engine);
  if (command == "engine-stats") {
    return CmdEngineStats(*engine, MetricArg(argc, argv, 3));
  }
  if (command == "convert") {
    if (argc < 4) return Usage();
    // .ckg targets use the versioned checksummed format (respecting
    // --compress); .bin targets keep the legacy headerless snapshot.
    const std::string out = argv[3];
    Status status;
    if (HasCkgExtension(out)) {
      CkgWriteOptions write_options;
      write_options.compressed = compress;
      status = WriteCkgGraph(engine->graph(), out, write_options);
    } else {
      status = WriteBinaryGraph(engine->graph(), out);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }
  return Usage();
}
