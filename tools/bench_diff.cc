// bench_diff: compare two BENCH_<suite>.json reports (emitted by the
// bench harness / bench_runner) and fail on performance regressions.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold 0.25]
//              [--min-seconds 0.005] [--metric min|median]
//              [--fail-on-missing]
//
// Prints a per-case delta table; exits 0 when no case regresses beyond
// the threshold, 1 on regression, 2 on usage or input errors.  CI runs
// this against bench/baselines/BENCH_smoke.json (see EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff_lib.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold X]\n"
               "          [--min-seconds X] [--metric min|median]\n"
               "          [--fail-on-missing]\n",
               argv0);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  corekit::bench_diff::DiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& flag,
                        std::string* out) -> bool {
      if (arg == flag) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                       flag.c_str());
          std::exit(2);
        }
        *out = argv[++i];
        return true;
      }
      if (arg.size() > flag.size() + 1 &&
          arg.compare(0, flag.size(), flag) == 0 &&
          arg[flag.size()] == '=') {
        *out = arg.substr(flag.size() + 1);
        return true;
      }
      return false;
    };
    std::string value;
    if (value_of("--threshold", &value)) {
      options.threshold = std::atof(value.c_str());
    } else if (value_of("--min-seconds", &value)) {
      options.min_seconds = std::atof(value.c_str());
    } else if (value_of("--metric", &value)) {
      options.metric = value;
    } else if (arg == "--fail-on-missing") {
      options.fail_on_missing = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    PrintUsage(argv[0]);
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  if (!ReadFile(paths[0], &baseline_text)) {
    std::fprintf(stderr, "%s: cannot read baseline %s\n", argv[0],
                 paths[0].c_str());
    return 2;
  }
  if (!ReadFile(paths[1], &current_text)) {
    std::fprintf(stderr, "%s: cannot read current %s\n", argv[0],
                 paths[1].c_str());
    return 2;
  }

  const corekit::Result<corekit::bench_diff::DiffReport> report =
      corekit::bench_diff::DiffReportTexts(baseline_text, current_text,
                                           options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 report.status().ToString().c_str());
    return 2;
  }
  std::cout << "bench_diff: " << paths[0] << " -> " << paths[1] << "\n";
  PrintDiffReport(*report, options, std::cout);
  return report->failed ? 1 : 0;
}
