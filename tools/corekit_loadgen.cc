// corekit_loadgen: deterministic load generator for corekit_serve.
//
//   corekit_loadgen --port 7421 --graph web --graph social
//                   --clients 8 --queries 256 --seed 7
//
// Connects N concurrent clients to a running corekit_serve, replays the
// deterministic query mix of src/corekit/server/load_generator.h, and
// prints one JSON object with p50/p99/p999 latency, QPS, error counts
// and the order-independent answer checksum.  Two runs with the same
// seed against the same tenants print the same checksum — and so does a
// direct (no-socket) replay, which is how the serving tests pin the
// transport.
//
// Flags:
//   --host A       server address     (default 127.0.0.1)
//   --port N       server port        (required)
//   --graph NAME   tenant to query    (repeat; at least one)
//   --clients N    concurrent clients (default 8)
//   --queries N    queries per client (default 256)
//   --pipeline N   requests in flight per client (default 1)
//   --seed S       mix seed           (default 7)
//
// Tenant sizes (needed to draw valid Coreness vertices) are fetched
// up-front with one GraphInfo per tenant.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corekit/server/load_generator.h"
#include "corekit/server/wire_client.h"
#include "corekit/util/json.h"

namespace {

using namespace corekit;
using namespace corekit::server;

int Usage() {
  std::fprintf(stderr,
               "usage: corekit_loadgen --port N --graph NAME [--graph ...]\n"
               "  [--host A] [--clients N] [--queries N] [--pipeline N] "
               "[--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadGenOptions options;
  options.num_clients = 8;
  options.queries_per_client = 256;
  options.seed = 7;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (value == nullptr) return Usage();
    ++i;
    if (flag == "--host") {
      options.host = value;
    } else if (flag == "--port") {
      options.port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
      have_port = true;
    } else if (flag == "--graph") {
      options.graphs.emplace_back(value);
    } else if (flag == "--clients") {
      options.num_clients =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--queries") {
      options.queries_per_client =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--pipeline") {
      options.pipeline_depth =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (!have_port || options.graphs.empty()) return Usage();

  // Learn each tenant's vertex count so the mix draws valid vertices.
  {
    WireClient probe;
    const Status connected = probe.Connect(options.host, options.port);
    if (!connected.ok()) {
      std::fprintf(stderr, "corekit_loadgen: %s\n",
                   connected.message().c_str());
      return 1;
    }
    for (const std::string& graph : options.graphs) {
      Request request;
      request.opcode = Opcode::kGraphInfo;
      request.graph = graph;
      auto response = probe.Call(request);
      if (!response.ok() || response.value().status != WireError::kOk) {
        std::fprintf(stderr, "corekit_loadgen: GraphInfo(%s) failed: %s\n",
                     graph.c_str(),
                     response.ok()
                         ? WireErrorName(response.value().status)
                         : response.status().message().c_str());
        return 1;
      }
      options.graph_sizes.push_back(response.value().num_vertices);
    }
  }

  const LoadGenReport report = RunWireLoad(options);

  Json json = Json::Object();
  json.Set("clients", static_cast<std::uint64_t>(options.num_clients));
  json.Set("queries_per_client",
           static_cast<std::uint64_t>(options.queries_per_client));
  json.Set("seed", options.seed);
  json.Set("queries", report.queries);
  json.Set("errors", report.errors);
  json.Set("busy", report.busy);
  json.Set("transport_failures", report.transport_failures);
  json.Set("wall_seconds", report.wall_seconds);
  json.Set("qps", report.qps);
  json.Set("p50_ms", report.p50_seconds * 1e3);
  json.Set("p99_ms", report.p99_seconds * 1e3);
  json.Set("p999_ms", report.p999_seconds * 1e3);
  json.Set("max_ms", report.max_seconds * 1e3);
  char checksum_hex[32];
  std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                static_cast<unsigned long long>(report.checksum));
  json.Set("checksum", std::string(checksum_hex));
  std::printf("%s\n", json.Dump().c_str());
  return report.transport_failures == 0 ? 0 : 1;
}
