#!/usr/bin/env bash
# Runs clang-tidy (repo .clang-tidy profile, warnings as errors) over the
# library, tools, and bench sources.
#
#   tools/tidy.sh [BUILD_DIR]
#
# BUILD_DIR defaults to build/ and must contain compile_commands.json
# (exported unconditionally by the top-level CMakeLists); the script
# configures it if missing.  Uses run-clang-tidy for parallelism when
# available, otherwise loops sequentially.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found in PATH" >&2
  exit 2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "tidy.sh: configuring $build_dir to export compile_commands.json"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi

# The scanned surface: library + tools + bench sources (tests stay under
# gtest macro idioms that tidy has little signal on).
mapfile -t sources < <(
  cd "$repo_root" && find src tools bench -name '*.cc' | sort
)
echo "tidy.sh: checking ${#sources[@]} files against $build_dir"

cd "$repo_root"
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$build_dir" "${sources[@]/#/^}" > /tmp/tidy.log \
    || { grep -E "warning:|error:" /tmp/tidy.log; exit 1; }
  grep -E "warning:|error:" /tmp/tidy.log || true
else
  status=0
  for source in "${sources[@]}"; do
    clang-tidy -quiet -p "$build_dir" "$source" || status=1
  done
  exit "$status"
fi
echo "tidy.sh: clean"
