// corekit_serve: the TCP serving front-end.
//
//   corekit_serve --graph web=ba:20000:6 --graph social=er:10000:40000
//                 --port 7421 --workers 8 --budget-mb 64
//
// Hosts one EngineRegistry of named tenant graphs behind the
// wire_protocol.h binary protocol (see that header for the frame
// layout).  Each --graph adds a tenant:
//
//   name=ba:<n>:<deg>[:seed]   Barabási–Albert, n vertices, deg edges/vertex
//   name=er:<n>:<m>[:seed]     Erdős–Rényi G(n, m)
//   name=file:<path>           SNAP text edge list (.bin = binary snapshot)
//
// Flags:
//   --host A        bind address            (default 127.0.0.1)
//   --port N        TCP port, 0 = ephemeral (default 7421)
//   --workers N     worker threads          (default 4)
//   --queue N       bounded queue capacity  (default 128)
//   --max-sessions N connection cap         (default 64)
//   --budget-mb N   registry memory budget, 0 = unbounded (default 0)
//   --no-coalesce   disable single-flight coalescing of identical queries
//
// Runs until SIGINT/SIGTERM, then drains gracefully and prints the
// server + service + registry counters.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "corekit/corekit.h"
#include "corekit/engine/engine_registry.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/server/engine_service.h"
#include "corekit/server/tcp_server.h"

namespace {

using namespace corekit;
using namespace corekit::server;

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: corekit_serve --graph name=ba:<n>:<deg>[:seed] "
               "[--graph ...]\n"
               "  [--host A] [--port N] [--workers N] [--queue N]\n"
               "  [--max-sessions N] [--budget-mb N] [--no-coalesce]\n"
               "graph kinds: ba:<n>:<deg>[:seed] | er:<n>:<m>[:seed] | "
               "file:<path>\n");
  return 2;
}

// Splits "kind:a:b:c" on ':'.
std::vector<std::string> SplitColons(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

bool AddTenant(EngineRegistry& registry, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::fprintf(stderr, "corekit_serve: bad --graph '%s' (want name=kind:...)\n",
                 spec.c_str());
    return false;
  }
  const std::string name = spec.substr(0, eq);
  const std::vector<std::string> parts = SplitColons(spec.substr(eq + 1));
  const std::string& kind = parts[0];
  const auto arg = [&parts](std::size_t i, std::uint64_t fallback) {
    return parts.size() > i ? std::strtoull(parts[i].c_str(), nullptr, 10)
                            : fallback;
  };
  Graph graph;
  if (kind == "ba" && parts.size() >= 3) {
    graph = GenerateBarabasiAlbert(static_cast<VertexId>(arg(1, 0)),
                                   static_cast<VertexId>(arg(2, 0)),
                                   arg(3, 42));
  } else if (kind == "er" && parts.size() >= 3) {
    graph = GenerateErdosRenyi(static_cast<VertexId>(arg(1, 0)),
                               static_cast<EdgeId>(arg(2, 0)), arg(3, 42));
  } else if (kind == "file" && parts.size() >= 2) {
    // Paths may contain ':'; rejoin everything after "file:".
    std::string path = parts[1];
    for (std::size_t i = 2; i < parts.size(); ++i) path += ":" + parts[i];
    auto loaded = path.size() > 4 && path.substr(path.size() - 4) == ".bin"
                      ? ReadBinaryGraph(path)
                      : ReadSnapEdgeList(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "corekit_serve: %s: %s\n", path.c_str(),
                   loaded.status().message().c_str());
      return false;
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr, "corekit_serve: bad --graph kind in '%s'\n",
                 spec.c_str());
    return false;
  }
  const Status status = registry.AddGraph(name, std::move(graph));
  if (!status.ok()) {
    std::fprintf(stderr, "corekit_serve: %s\n", status.message().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> graph_specs;
  TcpServerOptions server_options;
  server_options.port = 7421;
  EngineServiceOptions service_options;
  EngineRegistryOptions registry_options;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--graph") {
      const char* value = next();
      if (value == nullptr) return Usage();
      graph_specs.push_back(value);
    } else if (flag == "--host") {
      const char* value = next();
      if (value == nullptr) return Usage();
      server_options.host = value;
    } else if (flag == "--port") {
      const char* value = next();
      if (value == nullptr) return Usage();
      server_options.port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--workers") {
      const char* value = next();
      if (value == nullptr) return Usage();
      server_options.num_workers =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--queue") {
      const char* value = next();
      if (value == nullptr) return Usage();
      server_options.queue_capacity =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--max-sessions") {
      const char* value = next();
      if (value == nullptr) return Usage();
      server_options.max_sessions =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--budget-mb") {
      const char* value = next();
      if (value == nullptr) return Usage();
      registry_options.memory_budget_bytes =
          std::strtoull(value, nullptr, 10) * (1ull << 20);
    } else if (flag == "--no-coalesce") {
      service_options.coalesce_cold_queries = false;
    } else {
      return Usage();
    }
  }
  if (graph_specs.empty()) return Usage();

  EngineRegistry registry(registry_options);
  for (const std::string& spec : graph_specs) {
    if (!AddTenant(registry, spec)) return 1;
  }

  EngineService service(registry, service_options);
  TcpServer tcp(service, server_options);
  const Status started = tcp.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "corekit_serve: %s\n", started.message().c_str());
    return 1;
  }

  std::printf("corekit_serve listening on %s:%u (%zu tenant%s, %u workers)\n",
              server_options.host.c_str(), tcp.port(),
              registry.GraphNames().size(),
              registry.GraphNames().size() == 1 ? "" : "s",
              server_options.num_workers);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("corekit_serve: draining...\n");
  tcp.Shutdown();
  const TcpServer::Stats tcp_stats = tcp.stats();
  const EngineService::Stats service_stats = service.stats();
  const EngineRegistry::Stats registry_stats = registry.stats();
  std::printf(
      "sessions %llu (refused %llu)  frames %llu (rejected %llu)\n"
      "requests %llu completed, %llu busy-rejected, %llu errors, "
      "%llu coalesced, %llu batches\n"
      "registry: %llu admissions, %llu evictions, %llu hits, "
      "%llu resident engines\n",
      static_cast<unsigned long long>(tcp_stats.sessions_opened),
      static_cast<unsigned long long>(tcp_stats.sessions_refused),
      static_cast<unsigned long long>(tcp_stats.frames_decoded),
      static_cast<unsigned long long>(tcp_stats.frames_rejected),
      static_cast<unsigned long long>(tcp_stats.requests_completed),
      static_cast<unsigned long long>(tcp_stats.busy_rejections),
      static_cast<unsigned long long>(service_stats.errors),
      static_cast<unsigned long long>(service_stats.coalesced),
      static_cast<unsigned long long>(service_stats.batches),
      static_cast<unsigned long long>(registry_stats.admissions),
      static_cast<unsigned long long>(registry_stats.evictions),
      static_cast<unsigned long long>(registry_stats.hits),
      static_cast<unsigned long long>(registry_stats.resident_engines));
  return 0;
}
