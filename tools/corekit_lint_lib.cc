#include "corekit_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace corekit::lint {

namespace {

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(content);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.starts_with(prefix);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.ends_with(suffix);
}

// Whether the raw line carries a `corekit-lint: allow(<rule>)` waiver.
bool IsWaived(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("corekit-lint: allow(" + rule + ")") !=
         std::string::npos;
}

// Lines of both views, index-aligned: [i] = (code-only, raw).
struct FileView {
  std::vector<std::string> code;
  std::vector<std::string> raw;
};

FileView MakeView(const std::string& content) {
  FileView view;
  view.code = SplitLines(StripCommentsAndStrings(content));
  view.raw = SplitLines(content);
  // getline drops a trailing unterminated line only if content is empty;
  // sizes always match because stripping preserves newlines.
  return view;
}

void Report(std::vector<Violation>& out, const std::string& path, int line,
            const char* rule, std::string message) {
  out.push_back({path, line, rule, std::move(message)});
}

}  // namespace

std::string FormatViolation(const Violation& violation) {
  // Built by append: GCC 12's -Wrestrict misfires on `"lit" + rvalue`.
  std::string result = violation.file;
  if (violation.line > 0) {
    result += ':';
    result += std::to_string(violation.line);
  }
  result += ": [";
  result += violation.rule;
  result += "] ";
  result += violation.message;
  return result;
}

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" of an open raw string literal
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: skip to its )delim" terminator wholesale.
          std::size_t open = i + 2;
          std::string delim;
          while (open < content.size() && content[open] != '(') {
            delim += content[open++];
          }
          raw_terminator = ")" + delim + "\"";
          const std::size_t end = content.find(raw_terminator, open);
          out += "\"\"";
          // Preserve the line count of the skipped literal.
          const std::size_t stop =
              end == std::string::npos ? content.size()
                                       : end + raw_terminator.size();
          for (std::size_t j = i; j < stop; ++j) {
            if (content[j] == '\n') out += '\n';
          }
          i = stop - 1;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;  // unterminated; keep line structure
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

void CheckPragmaOnce(const std::string& path, const std::string& content,
                     std::vector<Violation>& out) {
  if (!EndsWith(path, ".h")) return;
  const FileView view = MakeView(content);
  bool has_pragma = false;
  static const std::regex kLegacyGuard(R"(^\s*#ifndef\s+\w*_H_?\b)");
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    if (view.code[i].find("#pragma once") != std::string::npos) {
      has_pragma = true;
    }
    if (std::regex_search(view.code[i], kLegacyGuard) &&
        !IsWaived(view.raw[i], "pragma-once")) {
      Report(out, path, static_cast<int>(i) + 1, "pragma-once",
             "legacy include guard; use #pragma once");
    }
  }
  if (!has_pragma) {
    Report(out, path, 0, "pragma-once", "header is missing #pragma once");
  }
}

void CheckNoEndl(const std::string& path, const std::string& content,
                 std::vector<Violation>& out) {
  const FileView view = MakeView(content);
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    if (view.code[i].find("std::endl") != std::string::npos &&
        !IsWaived(view.raw[i], "no-endl")) {
      Report(out, path, static_cast<int>(i) + 1, "no-endl",
             "std::endl flushes on every use; write '\\n' and flush "
             "explicitly where needed");
    }
  }
}

void CheckNakedNew(const std::string& path, const std::string& content,
                   std::vector<Violation>& out) {
  const FileView view = MakeView(content);
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  static const std::regex kDefaultedDelete(R"(=\s*delete\b)");
  static const std::regex kAlloc(R"(\b(malloc|calloc|realloc|free)\s*\()");
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    const int lineno = static_cast<int>(i) + 1;
    if (std::regex_search(line, kNew) && !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "naked new; use containers or std::make_unique (waive leaky "
             "singletons with corekit-lint: allow(naked-new))");
    }
    if (std::regex_search(line, kDelete) &&
        !std::regex_search(line, kDefaultedDelete) &&
        !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "naked delete; ownership belongs in RAII types");
    }
    if (std::regex_search(line, kAlloc) &&
        !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "C allocation call outside src/corekit/util/");
    }
  }
}

void CheckBenchSuites(const std::string& path, const std::string& content,
                      std::vector<Violation>& out) {
  static const std::set<std::string> kKnownSuites = {"smoke", "paper", "ext"};
  static const std::set<std::string> kKnownBases = {"paper", "ext"};
  const std::vector<std::string> raw = SplitLines(content);
  // Suite tags live inside the literals, so this rule scans raw lines.
  static const std::regex kBase(R"(SuitesPlusSmoke\(\s*"([a-z_]*)\")");
  // A brace list of lowercase string literals that itself closes a brace
  // init — the CaseOptions{name, {suites...}} shape.  TablePrinter-style
  // lists are followed by ')' instead and do not match.
  static const std::regex kSuiteList(
      R"(\{\s*("[a-z_]+"(\s*,\s*"[a-z_]+")*)\s*\}\s*\})");
  static const std::regex kLiteral(R"lit("([a-z_]+)")lit");
  bool registers_unit = false;
  bool saw_suite_decl = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& line = raw[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("COREKIT_BENCH_UNIT(") != std::string::npos) {
      registers_unit = true;
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kBase), end;
         it != end; ++it) {
      saw_suite_decl = true;
      const std::string base = (*it)[1];
      if (kKnownBases.count(base) == 0 && !IsWaived(line, "bench-suite")) {
        Report(out, path, lineno, "bench-suite",
               "SuitesPlusSmoke base \"" + base +
                   "\" is not a known suite (paper, ext)");
      }
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kSuiteList), end;
         it != end; ++it) {
      saw_suite_decl = true;
      const std::string list = (*it)[1];
      for (std::sregex_iterator lit(list.begin(), list.end(), kLiteral), lend;
           lit != lend; ++lit) {
        const std::string suite = (*lit)[1];
        if (kKnownSuites.count(suite) == 0 && !IsWaived(line, "bench-suite")) {
          Report(out, path, lineno, "bench-suite",
                 "suite tag \"" + suite +
                     "\" is not a known suite (smoke, paper, ext)");
        }
      }
    }
  }
  if (registers_unit && !saw_suite_decl && !content.empty()) {
    Report(out, path, 0, "bench-suite",
           "registers a bench unit but declares no suite tags; every case "
           "must be reachable from a suite filter");
  }
}

void CheckStageTable(const std::string& path, const std::string& content,
                     std::vector<Violation>& out) {
  const std::string code = StripCommentsAndStrings(content);
  // Enumerators of EngineStage, in declaration order, excluding kCount.
  std::vector<std::string> enumerators;
  const std::size_t enum_pos = code.find("enum class EngineStage");
  const std::size_t enum_end =
      enum_pos == std::string::npos ? std::string::npos
                                    : code.find("};", enum_pos);
  if (enum_pos == std::string::npos || enum_end == std::string::npos) {
    Report(out, path, 0, "stage-table",
           "could not find 'enum class EngineStage'");
    return;
  }
  {
    static const std::regex kEnumerator(R"((k[A-Za-z0-9]+)\s*(=[^,}]*)?[,}])");
    const std::string body = code.substr(enum_pos, enum_end - enum_pos);
    for (std::sregex_iterator it(body.begin(), body.end(), kEnumerator), end;
         it != end; ++it) {
      const std::string name = (*it)[1];
      if (name != "kCount") enumerators.push_back(name);
    }
  }
  // Entries of kEngineStageNames — from the raw content (they are string
  // literals).
  std::vector<std::string> names;
  const std::size_t table_pos = content.find("kEngineStageNames[]");
  const std::size_t table_end =
      table_pos == std::string::npos ? std::string::npos
                                     : content.find("};", table_pos);
  if (table_pos == std::string::npos || table_end == std::string::npos) {
    Report(out, path, 0, "stage-table", "could not find 'kEngineStageNames[]'");
    return;
  }
  {
    static const std::regex kEntry(R"lit("([^"]*)")lit");
    const std::string body = content.substr(table_pos, table_end - table_pos);
    for (std::sregex_iterator it(body.begin(), body.end(), kEntry), end;
         it != end; ++it) {
      names.push_back((*it)[1]);
    }
  }
  if (enumerators.size() != names.size()) {
    std::string message = "EngineStage has ";
    message += std::to_string(enumerators.size());
    message += " stages but kEngineStageNames has ";
    message += std::to_string(names.size());
    message += " entries";
    Report(out, path, 0, "stage-table", std::move(message));
    return;
  }
  for (std::size_t i = 0; i < enumerators.size(); ++i) {
    std::string expected = enumerators[i].substr(1);  // drop the 'k'
    std::transform(expected.begin(), expected.end(), expected.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (names[i] != expected) {
      std::string message = "kEngineStageNames[";
      message += std::to_string(i);
      message += "] is \"" + names[i] + "\" but " + enumerators[i] +
                 " lowercases to \"" + expected + "\"";
      Report(out, path, 0, "stage-table", std::move(message));
    }
  }
  // A duplicated name would silently alias two stages' records in every
  // consumer keyed by stage name (StageStats::Get, bench_diff, the
  // harness columns).
  {
    std::set<std::string> seen;
    for (const std::string& name : names) {
      if (!seen.insert(name).second) {
        Report(out, path, 0, "stage-table",
               "duplicate stage name \"" + name + "\" in kEngineStageNames");
      }
    }
  }
  // Stage additions and renames are schema changes; the version constant
  // consumers key on (the bench env capture, bench_diff) must exist as a
  // plain integer literal in this header.
  static const std::regex kVersion(
      R"(kStageStatsSchemaVersion\s*=\s*[0-9]+\s*;)");
  if (!std::regex_search(code, kVersion)) {
    Report(out, path, 0, "stage-table",
           "could not find 'kStageStatsSchemaVersion = <integer>'; stage "
           "table changes must bump the StageStats schema version");
  }
}

void CheckLayering(const std::string& path, const std::string& content,
                   std::vector<Violation>& out) {
  // The architecture DAG: each layer may include itself and the layers
  // listed.  Adding a subsystem means adding a row here — deliberately a
  // lint failure until its place in the stack is decided.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {}},
      {"graph", {"util"}},
      {"gen", {"graph", "util"}},
      {"core", {"graph", "util"}},
      {"truss", {"core", "graph", "util"}},
      // parallel -> truss is the frontier truss peel (support peeling
      // shares the slot/edge mapping); truss must NOT include parallel
      // (the serial peel stays the dependency-free oracle).
      {"parallel", {"truss", "core", "graph", "util"}},
      {"analysis", {"truss", "core", "graph", "util"}},
      {"dynamic", {"core", "graph", "util"}},
      {"external", {"graph", "util"}},
      {"weighted", {"graph", "util"}},
      {"distributed", {"graph", "util"}},
      // engine -> dynamic is the mutable-engine wiring (ApplyBatch);
      // dynamic must NOT include engine (the index stays embeddable).
      {"engine",
       {"analysis", "dynamic", "parallel", "truss", "core", "graph", "util"}},
      // server -> engine is the serving tier (registry leases, wire
      // dispatch); engine must NOT include server (engines stay
      // embeddable without a transport).
      {"server",
       {"engine", "analysis", "dynamic", "parallel", "truss", "core", "graph",
        "util"}},
      {"apps", {"engine", "core", "graph", "util"}},
      {"viz", {"core", "graph", "util"}},
  };
  static const std::string kPrefix = "src/corekit/";
  if (!StartsWith(path, kPrefix)) return;
  const std::size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos) return;  // umbrella headers are exempt
  const std::string layer = path.substr(kPrefix.size(),
                                        slash - kPrefix.size());
  const auto allowed = kAllowed.find(layer);
  if (allowed == kAllowed.end()) {
    Report(out, path, 0, "layering",
           "subsystem '" + layer +
               "' has no layering entry; add it to kAllowed in "
               "tools/corekit_lint_lib.cc");
    return;
  }
  const std::vector<std::string> raw = SplitLines(content);
  static const std::regex kInclude(R"(^\s*#include\s+"corekit/([a-z_]+)/)");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(raw[i], match, kInclude)) continue;
    const std::string dep = match[1];
    if (dep == layer || allowed->second.count(dep) != 0) continue;
    if (IsWaived(raw[i], "layering")) continue;
    Report(out, path, static_cast<int>(i) + 1, "layering",
           "'" + layer + "' must not include 'corekit/" + dep +
               "/' (allowed: own layer and lower layers only)");
  }
}

std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content) {
  std::vector<Violation> out;
  CheckPragmaOnce(path, content, out);
  if (StartsWith(path, "src/")) {
    CheckNoEndl(path, content, out);
    CheckLayering(path, content, out);
  }
  const bool allocation_scope =
      (StartsWith(path, "src/") || StartsWith(path, "tools/") ||
       StartsWith(path, "bench/")) &&
      !StartsWith(path, "src/corekit/util/");
  if (allocation_scope) {
    CheckNakedNew(path, content, out);
  }
  if (StartsWith(path, "bench/") && !StartsWith(path, "bench/harness/") &&
      EndsWith(path, ".cc")) {
    CheckBenchSuites(path, content, out);
  }
  if (EndsWith(path, "engine/stage_stats.h")) {
    CheckStageTable(path, content, out);
  }
  return out;
}

std::vector<Violation> LintTree(const std::filesystem::path& root,
                                const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> out;
  for (const std::string& file : files) {
    std::ifstream in(root / file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<Violation> found = LintContent(file, buffer.str());
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

}  // namespace corekit::lint
