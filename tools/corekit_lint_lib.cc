#include "corekit_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace corekit::lint {

namespace {

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(content);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.starts_with(prefix);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.ends_with(suffix);
}

// Whether the raw line carries a `corekit-lint: allow(<rule>)` waiver.
bool IsWaived(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("corekit-lint: allow(" + rule + ")") !=
         std::string::npos;
}

// Lines of both views, index-aligned: [i] = (code-only, raw).
struct FileView {
  std::vector<std::string> code;
  std::vector<std::string> raw;
};

FileView MakeView(const std::string& content) {
  FileView view;
  view.code = SplitLines(StripCommentsAndStrings(content));
  view.raw = SplitLines(content);
  // getline drops a trailing unterminated line only if content is empty;
  // sizes always match because stripping preserves newlines.
  return view;
}

void Report(std::vector<Violation>& out, const std::string& path, int line,
            const char* rule, std::string message) {
  out.push_back({path, line, rule, std::move(message)});
}

}  // namespace

std::string FormatViolation(const Violation& violation) {
  // Built by append: GCC 12's -Wrestrict misfires on `"lit" + rvalue`.
  std::string result = violation.file;
  if (violation.line > 0) {
    result += ':';
    result += std::to_string(violation.line);
  }
  result += ": [";
  result += violation.rule;
  result += "] ";
  result += violation.message;
  return result;
}

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" of an open raw string literal
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: skip to its )delim" terminator wholesale.
          std::size_t open = i + 2;
          std::string delim;
          while (open < content.size() && content[open] != '(') {
            delim += content[open++];
          }
          raw_terminator = ")" + delim + "\"";
          const std::size_t end = content.find(raw_terminator, open);
          out += "\"\"";
          // Preserve the line count of the skipped literal.
          const std::size_t stop =
              end == std::string::npos ? content.size()
                                       : end + raw_terminator.size();
          for (std::size_t j = i; j < stop; ++j) {
            if (content[j] == '\n') out += '\n';
          }
          i = stop - 1;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;  // unterminated; keep line structure
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

void CheckPragmaOnce(const std::string& path, const std::string& content,
                     std::vector<Violation>& out) {
  if (!EndsWith(path, ".h")) return;
  const FileView view = MakeView(content);
  bool has_pragma = false;
  static const std::regex kLegacyGuard(R"(^\s*#ifndef\s+\w*_H_?\b)");
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    if (view.code[i].find("#pragma once") != std::string::npos) {
      has_pragma = true;
    }
    if (std::regex_search(view.code[i], kLegacyGuard) &&
        !IsWaived(view.raw[i], "pragma-once")) {
      Report(out, path, static_cast<int>(i) + 1, "pragma-once",
             "legacy include guard; use #pragma once");
    }
  }
  if (!has_pragma) {
    Report(out, path, 0, "pragma-once", "header is missing #pragma once");
  }
}

void CheckNoEndl(const std::string& path, const std::string& content,
                 std::vector<Violation>& out) {
  const FileView view = MakeView(content);
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    if (view.code[i].find("std::endl") != std::string::npos &&
        !IsWaived(view.raw[i], "no-endl")) {
      Report(out, path, static_cast<int>(i) + 1, "no-endl",
             "std::endl flushes on every use; write '\\n' and flush "
             "explicitly where needed");
    }
  }
}

void CheckNakedNew(const std::string& path, const std::string& content,
                   std::vector<Violation>& out) {
  const FileView view = MakeView(content);
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  static const std::regex kDefaultedDelete(R"(=\s*delete\b)");
  static const std::regex kAlloc(R"(\b(malloc|calloc|realloc|free)\s*\()");
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    const int lineno = static_cast<int>(i) + 1;
    if (std::regex_search(line, kNew) && !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "naked new; use containers or std::make_unique (waive leaky "
             "singletons with corekit-lint: allow(naked-new))");
    }
    if (std::regex_search(line, kDelete) &&
        !std::regex_search(line, kDefaultedDelete) &&
        !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "naked delete; ownership belongs in RAII types");
    }
    if (std::regex_search(line, kAlloc) &&
        !IsWaived(view.raw[i], "naked-new")) {
      Report(out, path, lineno, "naked-new",
             "C allocation call outside src/corekit/util/");
    }
  }
}

void CheckBenchSuites(const std::string& path, const std::string& content,
                      std::vector<Violation>& out) {
  static const std::set<std::string> kKnownSuites = {"smoke", "paper", "ext"};
  static const std::set<std::string> kKnownBases = {"paper", "ext"};
  const std::vector<std::string> raw = SplitLines(content);
  // Suite tags live inside the literals, so this rule scans raw lines.
  static const std::regex kBase(R"(SuitesPlusSmoke\(\s*"([a-z_]*)\")");
  // A brace list of lowercase string literals that itself closes a brace
  // init — the CaseOptions{name, {suites...}} shape.  TablePrinter-style
  // lists are followed by ')' instead and do not match.
  static const std::regex kSuiteList(
      R"(\{\s*("[a-z_]+"(\s*,\s*"[a-z_]+")*)\s*\}\s*\})");
  static const std::regex kLiteral(R"lit("([a-z_]+)")lit");
  bool registers_unit = false;
  bool saw_suite_decl = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& line = raw[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("COREKIT_BENCH_UNIT(") != std::string::npos) {
      registers_unit = true;
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kBase), end;
         it != end; ++it) {
      saw_suite_decl = true;
      const std::string base = (*it)[1];
      if (kKnownBases.count(base) == 0 && !IsWaived(line, "bench-suite")) {
        Report(out, path, lineno, "bench-suite",
               "SuitesPlusSmoke base \"" + base +
                   "\" is not a known suite (paper, ext)");
      }
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kSuiteList), end;
         it != end; ++it) {
      saw_suite_decl = true;
      const std::string list = (*it)[1];
      for (std::sregex_iterator lit(list.begin(), list.end(), kLiteral), lend;
           lit != lend; ++lit) {
        const std::string suite = (*lit)[1];
        if (kKnownSuites.count(suite) == 0 && !IsWaived(line, "bench-suite")) {
          Report(out, path, lineno, "bench-suite",
                 "suite tag \"" + suite +
                     "\" is not a known suite (smoke, paper, ext)");
        }
      }
    }
  }
  if (registers_unit && !saw_suite_decl && !content.empty()) {
    Report(out, path, 0, "bench-suite",
           "registers a bench unit but declares no suite tags; every case "
           "must be reachable from a suite filter");
  }
}

void CheckStageTable(const std::string& path, const std::string& content,
                     std::vector<Violation>& out) {
  const std::string code = StripCommentsAndStrings(content);
  // Enumerators of EngineStage, in declaration order, excluding kCount.
  std::vector<std::string> enumerators;
  const std::size_t enum_pos = code.find("enum class EngineStage");
  const std::size_t enum_end =
      enum_pos == std::string::npos ? std::string::npos
                                    : code.find("};", enum_pos);
  if (enum_pos == std::string::npos || enum_end == std::string::npos) {
    Report(out, path, 0, "stage-table",
           "could not find 'enum class EngineStage'");
    return;
  }
  {
    static const std::regex kEnumerator(R"((k[A-Za-z0-9]+)\s*(=[^,}]*)?[,}])");
    const std::string body = code.substr(enum_pos, enum_end - enum_pos);
    for (std::sregex_iterator it(body.begin(), body.end(), kEnumerator), end;
         it != end; ++it) {
      const std::string name = (*it)[1];
      if (name != "kCount") enumerators.push_back(name);
    }
  }
  // Entries of kEngineStageNames — from the raw content (they are string
  // literals).
  std::vector<std::string> names;
  const std::size_t table_pos = content.find("kEngineStageNames[]");
  const std::size_t table_end =
      table_pos == std::string::npos ? std::string::npos
                                     : content.find("};", table_pos);
  if (table_pos == std::string::npos || table_end == std::string::npos) {
    Report(out, path, 0, "stage-table", "could not find 'kEngineStageNames[]'");
    return;
  }
  {
    static const std::regex kEntry(R"lit("([^"]*)")lit");
    const std::string body = content.substr(table_pos, table_end - table_pos);
    for (std::sregex_iterator it(body.begin(), body.end(), kEntry), end;
         it != end; ++it) {
      names.push_back((*it)[1]);
    }
  }
  if (enumerators.size() != names.size()) {
    std::string message = "EngineStage has ";
    message += std::to_string(enumerators.size());
    message += " stages but kEngineStageNames has ";
    message += std::to_string(names.size());
    message += " entries";
    Report(out, path, 0, "stage-table", std::move(message));
    return;
  }
  for (std::size_t i = 0; i < enumerators.size(); ++i) {
    std::string expected = enumerators[i].substr(1);  // drop the 'k'
    std::transform(expected.begin(), expected.end(), expected.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (names[i] != expected) {
      std::string message = "kEngineStageNames[";
      message += std::to_string(i);
      message += "] is \"" + names[i] + "\" but " + enumerators[i] +
                 " lowercases to \"" + expected + "\"";
      Report(out, path, 0, "stage-table", std::move(message));
    }
  }
  // A duplicated name would silently alias two stages' records in every
  // consumer keyed by stage name (StageStats::Get, bench_diff, the
  // harness columns).
  {
    std::set<std::string> seen;
    for (const std::string& name : names) {
      if (!seen.insert(name).second) {
        Report(out, path, 0, "stage-table",
               "duplicate stage name \"" + name + "\" in kEngineStageNames");
      }
    }
  }
  // Stage additions and renames are schema changes; the version constant
  // consumers key on (the bench env capture, bench_diff) must exist as a
  // plain integer literal in this header.
  static const std::regex kVersion(
      R"(kStageStatsSchemaVersion\s*=\s*[0-9]+\s*;)");
  if (!std::regex_search(code, kVersion)) {
    Report(out, path, 0, "stage-table",
           "could not find 'kStageStatsSchemaVersion = <integer>'; stage "
           "table changes must bump the StageStats schema version");
  }
}

void CheckLayering(const std::string& path, const std::string& content,
                   std::vector<Violation>& out) {
  // The architecture DAG: each layer may include itself and the layers
  // listed.  Adding a subsystem means adding a row here — deliberately a
  // lint failure until its place in the stack is decided.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {}},
      // simd is the ISA-dispatched kernel layer: it speaks raw uint32
      // spans (no graph types), so it sits just above util and below
      // graph; nothing in simd may reach upward.
      {"simd", {"util"}},
      {"graph", {"simd", "util"}},
      {"gen", {"graph", "util"}},
      {"core", {"simd", "graph", "util"}},
      {"truss", {"core", "graph", "util"}},
      // parallel -> truss is the frontier truss peel (support peeling
      // shares the slot/edge mapping); truss must NOT include parallel
      // (the serial peel stays the dependency-free oracle).
      {"parallel", {"simd", "truss", "core", "graph", "util"}},
      {"analysis", {"truss", "core", "graph", "util"}},
      {"dynamic", {"core", "graph", "util"}},
      {"external", {"graph", "util"}},
      {"weighted", {"graph", "util"}},
      {"distributed", {"graph", "util"}},
      // engine -> dynamic is the mutable-engine wiring (ApplyBatch);
      // dynamic must NOT include engine (the index stays embeddable).
      {"engine",
       {"analysis", "dynamic", "parallel", "truss", "core", "graph", "util"}},
      // server -> engine is the serving tier (registry leases, wire
      // dispatch); engine must NOT include server (engines stay
      // embeddable without a transport).
      {"server",
       {"engine", "analysis", "dynamic", "parallel", "truss", "core", "graph",
        "util"}},
      {"apps", {"engine", "core", "graph", "util"}},
      {"viz", {"core", "graph", "util"}},
  };
  static const std::string kPrefix = "src/corekit/";
  if (!StartsWith(path, kPrefix)) return;
  const std::size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos) return;  // umbrella headers are exempt
  const std::string layer = path.substr(kPrefix.size(),
                                        slash - kPrefix.size());
  const auto allowed = kAllowed.find(layer);
  if (allowed == kAllowed.end()) {
    Report(out, path, 0, "layering",
           "subsystem '" + layer +
               "' has no layering entry; add it to kAllowed in "
               "tools/corekit_lint_lib.cc");
    return;
  }
  const std::vector<std::string> raw = SplitLines(content);
  static const std::regex kInclude(R"(^\s*#include\s+"corekit/([a-z_]+)/)");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(raw[i], match, kInclude)) continue;
    const std::string dep = match[1];
    if (dep == layer || allowed->second.count(dep) != 0) continue;
    if (IsWaived(raw[i], "layering")) continue;
    Report(out, path, static_cast<int>(i) + 1, "layering",
           "'" + layer + "' must not include 'corekit/" + dep +
               "/' (allowed: own layer and lower layers only)");
  }
}

namespace {

// --- lock-discipline --------------------------------------------------------

// Graph-node identity for a mutex expression: whitespace dropped, `->`
// folded to `.` so `cell->mutex` and `(*cell).mutex`-style spellings of
// one lock land on one node.
std::string NormalizeLockExpr(const std::string& expr) {
  std::string out;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(expr[i]))) continue;
    if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      out += '.';
      ++i;
      continue;
    }
    out += expr[i];
  }
  return out;
}

// One token the lock-order scan cares about, positioned within its line.
struct LockEvent {
  enum class Kind {
    kOpenBrace,
    kCloseBrace,
    kSemicolon,
    kScopedAcquire,  // MutexLock guard(expr)
    kAcquire,        // expr.Lock()
    kRelease,        // expr.Unlock()
    kRequires,       // COREKIT_REQUIRES(expr[, expr...])
  };
  Kind kind;
  std::size_t pos = 0;
  std::string payload;
};

std::vector<LockEvent> ScanLockEvents(const std::string& code_line) {
  std::vector<LockEvent> events;
  for (std::size_t i = 0; i < code_line.size(); ++i) {
    if (code_line[i] == '{') {
      events.push_back({LockEvent::Kind::kOpenBrace, i, ""});
    } else if (code_line[i] == '}') {
      events.push_back({LockEvent::Kind::kCloseBrace, i, ""});
    } else if (code_line[i] == ';') {
      events.push_back({LockEvent::Kind::kSemicolon, i, ""});
    }
  }
  static const std::regex kScoped(R"(\bMutexLock\s+\w+\s*\(\s*([^()]+?)\s*\))");
  static const std::regex kLock(R"(([A-Za-z_][\w.]*(?:->[\w.]+)*)\.Lock\s*\()");
  static const std::regex kUnlock(
      R"(([A-Za-z_][\w.]*(?:->[\w.]+)*)\.Unlock\s*\()");
  static const std::regex kRequires(R"(COREKIT_REQUIRES\s*\(([^()]+)\))");
  const auto add = [&](const std::regex& re, LockEvent::Kind kind) {
    for (std::sregex_iterator it(code_line.begin(), code_line.end(), re), end;
         it != end; ++it) {
      events.push_back({kind, static_cast<std::size_t>(it->position(0)),
                        (*it)[1].str()});
    }
  };
  add(kScoped, LockEvent::Kind::kScopedAcquire);
  add(kLock, LockEvent::Kind::kAcquire);
  add(kUnlock, LockEvent::Kind::kRelease);
  add(kRequires, LockEvent::Kind::kRequires);
  std::sort(events.begin(), events.end(),
            [](const LockEvent& a, const LockEvent& b) {
              return a.pos < b.pos;
            });
  return events;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(list);
  while (std::getline(in, part, ',')) {
    const std::string normalized = NormalizeLockExpr(part);
    if (!normalized.empty()) parts.push_back(normalized);
  }
  return parts;
}

}  // namespace

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string> kRules = {
      "pragma-once", "no-endl",  "naked-new",       "bench-suite",
      "stage-table", "layering", "lock-discipline", "stale-waiver",
  };
  return kRules;
}

void CheckLockDiscipline(const std::string& path, const std::string& content,
                         std::vector<Violation>& out) {
  // The annotated wrappers themselves are the one legitimate home of the
  // raw std primitives.
  if (EndsWith(path, "util/thread_annotations.h")) return;
  const FileView view = MakeView(content);

  // (a) Raw std primitives and the std lock RAII templates are invisible
  // to Clang's thread-safety analysis (libstdc++ carries no capability
  // attributes): ban them so every critical section is annotated.
  static const std::regex kRawPrimitive(
      R"(\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex)"
      R"(|shared_mutex|shared_timed_mutex|condition_variable)"
      R"(|condition_variable_any|lock_guard|unique_lock|scoped_lock)"
      R"(|shared_lock)\b)");
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    std::smatch match;
    if (std::regex_search(view.code[i], match, kRawPrimitive) &&
        !IsWaived(view.raw[i], "lock-discipline")) {
      Report(out, path, static_cast<int>(i) + 1, "lock-discipline",
             "raw std::" + match[1].str() +
                 " is invisible to -Wthread-safety; use the annotated "
                 "corekit::Mutex / corekit::CondVar / corekit::MutexLock "
                 "(corekit/util/thread_annotations.h)");
    }
  }

  // (b) Every Mutex member needs a COREKIT_GUARDED_BY(<name>) sibling in
  // the same header (or a per-line waiver for mutexes guarding virtual
  // resources — writer serialization, a socket's write stream); CondVar
  // members need at least one guarded sibling.  Headers only: locals in
  // .cc files guard function-local state the analysis cannot annotate.
  if (EndsWith(path, ".h")) {
    const std::string code = StripCommentsAndStrings(content);
    static const std::regex kMutexMember(
        R"(^\s*(?:mutable\s+)?(?:corekit::)?Mutex\s+([A-Za-z_]\w*)\s*[;={])");
    static const std::regex kCondVarMember(
        R"(^\s*(?:mutable\s+)?(?:corekit::)?CondVar\s+([A-Za-z_]\w*)\s*[;={])");
    const bool any_guarded = code.find("COREKIT_GUARDED_BY(") !=
                             std::string::npos;
    for (std::size_t i = 0; i < view.code.size(); ++i) {
      std::smatch match;
      if (std::regex_search(view.code[i], match, kMutexMember)) {
        const std::string name = match[1];
        if (code.find("COREKIT_GUARDED_BY(" + name + ")") ==
                std::string::npos &&
            !IsWaived(view.raw[i], "lock-discipline")) {
          Report(out, path, static_cast<int>(i) + 1, "lock-discipline",
                 "Mutex member '" + name +
                     "' has no COREKIT_GUARDED_BY(" + name +
                     ") sibling; annotate what it guards or waive mutexes "
                     "over virtual resources line-by-line");
        }
      } else if (std::regex_search(view.code[i], match, kCondVarMember)) {
        if (!any_guarded && !IsWaived(view.raw[i], "lock-discipline")) {
          Report(out, path, static_cast<int>(i) + 1, "lock-discipline",
                 "CondVar member '" + match[1].str() +
                     "' in a header with no COREKIT_GUARDED_BY sibling; "
                     "annotate the state the wait predicate reads");
        }
      }
    }
  }

  // (c) Lock-order acyclicity.  Derive the acquisition graph of this
  // translation unit: COREKIT_REQUIRES on a defined function seeds its
  // body's held set; MutexLock declarations and explicit .Lock() calls
  // push; scope exit, .Unlock(), and function exit pop.  Acquiring b
  // while a is held adds edge a->b; a cycle means two call paths can
  // take the same locks in opposite orders — the compile-time complement
  // of TSan's runtime deadlock detection.
  struct Held {
    std::string expr;
    int depth = 0;
  };
  std::map<std::pair<std::string, std::string>, int> edges;
  std::vector<Held> held;
  std::vector<std::string> pending_requires;
  int depth = 0;
  for (std::size_t i = 0; i < view.code.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    const bool waived = IsWaived(view.raw[i], "lock-discipline");
    for (const LockEvent& event : ScanLockEvents(view.code[i])) {
      switch (event.kind) {
        case LockEvent::Kind::kOpenBrace:
          ++depth;
          for (const std::string& seed : pending_requires) {
            held.push_back({seed, depth});
          }
          pending_requires.clear();
          break;
        case LockEvent::Kind::kCloseBrace:
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
          break;
        case LockEvent::Kind::kSemicolon:
          // A ';' before '{' means the REQUIRES sat on a declaration.
          pending_requires.clear();
          break;
        case LockEvent::Kind::kRequires:
          for (std::string& expr : SplitCommaList(event.payload)) {
            pending_requires.push_back(std::move(expr));
          }
          break;
        case LockEvent::Kind::kScopedAcquire:
        case LockEvent::Kind::kAcquire: {
          const std::string expr = NormalizeLockExpr(event.payload);
          if (!waived) {
            for (const Held& h : held) {
              if (h.expr == expr) continue;
              edges.emplace(std::make_pair(h.expr, expr), lineno);
            }
          }
          held.push_back({expr, depth});
          break;
        }
        case LockEvent::Kind::kRelease: {
          const std::string expr = NormalizeLockExpr(event.payload);
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->expr == expr) {
              held.erase(std::next(it).base());
              break;
            }
          }
          break;
        }
      }
    }
  }
  // DFS cycle detection over the derived graph.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [edge, line] : edges) {
    adjacency[edge.first].push_back(edge.second);
  }
  std::map<std::string, int> state;  // 0 unseen, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  const std::function<bool(const std::string&)> dfs =
      [&](const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    for (const std::string& next : adjacency[node]) {
      if (state[next] == 1) {
        const auto start = std::find(stack.begin(), stack.end(), next);
        cycle.assign(start, stack.end());
        cycle.push_back(next);
        return true;
      }
      if (state[next] == 0 && dfs(next)) return true;
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, targets] : adjacency) {
    if (state[node] == 0 && dfs(node)) break;
  }
  if (!cycle.empty()) {
    std::string chain;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) chain += " -> ";
      chain += cycle[i];
    }
    int line = 0;
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
      const auto it = edges.find({cycle[i], cycle[i + 1]});
      if (it != edges.end()) line = std::max(line, it->second);
    }
    Report(out, path, line, "lock-discipline",
           "lock-order cycle: " + chain +
               "; two paths acquire these locks in opposite orders");
  }
}

void CheckStaleWaivers(const std::string& path, const std::string& content,
                       std::vector<Violation>& out) {
  const std::vector<std::string> raw = SplitLines(content);
  static const std::regex kWaiver(
      R"(corekit-lint:\s*allow\(([A-Za-z0-9_-]+)\))");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), kWaiver), end;
         it != end; ++it) {
      const std::string rule = (*it)[1];
      const auto& known = KnownRules();
      if (std::find(known.begin(), known.end(), rule) == known.end() &&
          !IsWaived(raw[i], "stale-waiver")) {
        Report(out, path, static_cast<int>(i) + 1, "stale-waiver",
               "waiver names unknown rule '" + rule +
                   "'; the rule was removed or renamed — delete the dead "
                   "waiver");
      }
    }
  }
}

std::vector<Waiver> CollectWaivers(const std::string& path,
                                   const std::string& content) {
  std::vector<Waiver> waivers;
  const std::vector<std::string> raw = SplitLines(content);
  static const std::regex kWaiver(
      R"(corekit-lint:\s*allow\(([A-Za-z0-9_-]+)\))");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (std::sregex_iterator it(raw[i].begin(), raw[i].end(), kWaiver), end;
         it != end; ++it) {
      waivers.push_back({path, static_cast<int>(i) + 1, (*it)[1].str()});
    }
  }
  return waivers;
}

std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content) {
  std::vector<Violation> out;
  CheckPragmaOnce(path, content, out);
  CheckStaleWaivers(path, content, out);
  if (StartsWith(path, "src/")) {
    CheckNoEndl(path, content, out);
    CheckLayering(path, content, out);
    CheckLockDiscipline(path, content, out);
  }
  const bool allocation_scope =
      (StartsWith(path, "src/") || StartsWith(path, "tools/") ||
       StartsWith(path, "bench/")) &&
      !StartsWith(path, "src/corekit/util/");
  if (allocation_scope) {
    CheckNakedNew(path, content, out);
  }
  if (StartsWith(path, "bench/") && !StartsWith(path, "bench/harness/") &&
      EndsWith(path, ".cc")) {
    CheckBenchSuites(path, content, out);
  }
  if (EndsWith(path, "engine/stage_stats.h")) {
    CheckStageTable(path, content, out);
  }
  return out;
}

namespace {

// The shared tree walk: every .h/.cc under root/<subdir>, sorted.
std::vector<std::string> ListSourceFiles(
    const std::filesystem::path& root,
    const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root / subdir;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<Violation> LintTree(const std::filesystem::path& root,
                                const std::vector<std::string>& subdirs) {
  std::vector<Violation> out;
  for (const std::string& file : ListSourceFiles(root, subdirs)) {
    const std::vector<Violation> found =
        LintContent(file, ReadFile(root / file));
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::vector<Waiver> CollectWaiversInTree(
    const std::filesystem::path& root,
    const std::vector<std::string>& subdirs) {
  std::vector<Waiver> out;
  for (const std::string& file : ListSourceFiles(root, subdirs)) {
    const std::vector<Waiver> found =
        CollectWaivers(file, ReadFile(root / file));
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

}  // namespace corekit::lint
