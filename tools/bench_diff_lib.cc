#include "bench_diff_lib.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>

#include "corekit/util/table_printer.h"

namespace corekit::bench_diff {

namespace {

// Must track bench::kBenchSchemaVersion (bench/harness/harness.h); kept
// as a local constant so this library links without the bench harness.
constexpr int kSupportedSchemaVersion = 1;

Status ValidateReport(const Json& report, const char* label) {
  if (!report.is_object()) {
    return Status::InvalidArgument(std::string(label) +
                                   ": not a JSON object");
  }
  const double version = report.NumberOr("schema_version", -1);
  if (version != kSupportedSchemaVersion) {
    return Status::InvalidArgument(
        std::string(label) + ": unsupported schema_version " +
        std::to_string(version) + " (expected " +
        std::to_string(kSupportedSchemaVersion) + ")");
  }
  const Json* cases = report.Find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return Status::InvalidArgument(std::string(label) +
                                   ": missing 'cases' array");
  }
  return Status::OK();
}

// The chosen timing field of one case, or nullopt if absent/invalid.
std::optional<double> CaseSeconds(const Json& c, const std::string& metric) {
  const std::string key = "seconds_" + metric;
  const Json* value = c.Find(key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  return value->number_value();
}

const Json* FindCase(const Json& report, const std::string& name) {
  const Json* cases = report.Find("cases");
  for (const Json& c : cases->items()) {
    if (c.is_object() && c.StringOr("name", "") == name) return &c;
  }
  return nullptr;
}

std::string FormatOptSeconds(const std::optional<double>& seconds) {
  return seconds.has_value() ? TablePrinter::FormatSeconds(*seconds) : "-";
}

}  // namespace

Result<DiffReport> DiffReports(const Json& baseline, const Json& current,
                               const DiffOptions& options) {
  COREKIT_RETURN_IF_ERROR(ValidateReport(baseline, "baseline"));
  COREKIT_RETURN_IF_ERROR(ValidateReport(current, "current"));
  if (options.metric != "min" && options.metric != "median") {
    return Status::InvalidArgument("unknown metric '" + options.metric +
                                   "' (expected min or median)");
  }
  const std::string baseline_suite = baseline.StringOr("suite", "");
  const std::string current_suite = current.StringOr("suite", "");
  if (baseline_suite != current_suite) {
    return Status::InvalidArgument("suite mismatch: baseline '" +
                                   baseline_suite + "' vs current '" +
                                   current_suite + "'");
  }
  // Runs captured under different StageStats layouts are not comparable:
  // a renamed or added stage shifts what the per-stage timing columns
  // mean.  The env key is optional (reports predating it diff freely).
  // Exception: v2 -> v3 only *added* the "patches" counter and the
  // "applybatch" stage — every v2 key survives with the same meaning —
  // so that one upgrade pair diffs cleanly with a note instead of an
  // error (baselines need not be regenerated on the bump).
  DiffReport report;
  const Json* base_env = baseline.Find("environment");
  const Json* cur_env = current.Find("environment");
  if (base_env != nullptr && cur_env != nullptr && base_env->is_object() &&
      cur_env->is_object()) {
    const int base_stage_v =
        static_cast<int>(base_env->NumberOr("stage_stats_schema_version", -1));
    const int cur_stage_v =
        static_cast<int>(cur_env->NumberOr("stage_stats_schema_version", -1));
    if (base_stage_v >= 0 && cur_stage_v >= 0 && base_stage_v != cur_stage_v) {
      const bool additive_upgrade = base_stage_v == 2 && cur_stage_v == 3;
      if (!additive_upgrade) {
        return Status::InvalidArgument(
            "stage_stats_schema_version mismatch: baseline " +
            std::to_string(base_stage_v) + " vs current " +
            std::to_string(cur_stage_v) +
            "; regenerate the baseline with the current stage layout");
      }
      report.stage_schema_note =
          "note: baseline uses stage_stats_schema_version 2, current uses 3 "
          "(additive upgrade: v3 only adds the patches counter and the "
          "applybatch stage); timings compared as-is";
    }
  }

  for (const Json& base_case : baseline.Find("cases")->items()) {
    if (!base_case.is_object()) continue;
    const std::string name = base_case.StringOr("name", "");
    if (name.empty()) continue;
    CaseDiff diff;
    diff.name = name;
    diff.baseline_seconds = CaseSeconds(base_case, options.metric);
    if (const Json* cur_case = FindCase(current, name);
        cur_case != nullptr) {
      diff.current_seconds = CaseSeconds(*cur_case, options.metric);
    } else {
      ++report.missing_in_current;
      if (options.fail_on_missing) diff.regressed = true;
    }
    if (diff.baseline_seconds.has_value() &&
        diff.current_seconds.has_value() && *diff.baseline_seconds > 0) {
      diff.relative_delta = (*diff.current_seconds - *diff.baseline_seconds) /
                            *diff.baseline_seconds;
      diff.below_noise_floor = *diff.baseline_seconds < options.min_seconds;
      if (!diff.below_noise_floor &&
          *diff.relative_delta > options.threshold) {
        diff.regressed = true;
      }
    }
    if (diff.regressed) ++report.regressions;
    report.cases.push_back(std::move(diff));
  }
  for (const Json& cur_case : current.Find("cases")->items()) {
    if (!cur_case.is_object()) continue;
    const std::string name = cur_case.StringOr("name", "");
    if (name.empty() || FindCase(baseline, name) != nullptr) continue;
    CaseDiff diff;
    diff.name = name;
    diff.current_seconds = CaseSeconds(cur_case, options.metric);
    ++report.new_in_current;
    report.cases.push_back(std::move(diff));
  }
  report.failed = report.regressions > 0;
  return report;
}

Result<DiffReport> DiffReportTexts(std::string_view baseline_text,
                                   std::string_view current_text,
                                   const DiffOptions& options) {
  Result<Json> baseline = Json::Parse(baseline_text);
  if (!baseline.ok()) {
    return Status::Corruption("baseline: " + baseline.status().message());
  }
  Result<Json> current = Json::Parse(current_text);
  if (!current.ok()) {
    return Status::Corruption("current: " + current.status().message());
  }
  return DiffReports(*baseline, *current, options);
}

void PrintDiffReport(const DiffReport& report, const DiffOptions& options,
                     std::ostream& out) {
  TablePrinter table({"case", "baseline", "current", "delta", "verdict"});
  for (const CaseDiff& diff : report.cases) {
    std::string delta = "-";
    if (diff.relative_delta.has_value()) {
      delta = *diff.relative_delta >= 0 ? "+" : "";
      delta += TablePrinter::FormatDouble(100.0 * *diff.relative_delta, 1);
      delta += "%";
    }
    std::string verdict;
    if (diff.regressed) {
      verdict = "REGRESSED";
    } else if (!diff.baseline_seconds.has_value()) {
      verdict = "new";
    } else if (!diff.current_seconds.has_value()) {
      verdict = "missing";
    } else if (diff.below_noise_floor) {
      verdict = "ok (noise floor)";
    } else {
      verdict = "ok";
    }
    table.AddRow({diff.name, FormatOptSeconds(diff.baseline_seconds),
                  FormatOptSeconds(diff.current_seconds), delta, verdict});
  }
  table.Print(out);
  if (!report.stage_schema_note.empty()) {
    out << "\n" << report.stage_schema_note << "\n";
  }
  out << "\nthreshold +" << 100.0 * options.threshold << "% on seconds_"
      << options.metric << ", noise floor "
      << TablePrinter::FormatSeconds(options.min_seconds) << "; "
      << report.regressions << " regression(s), " << report.missing_in_current
      << " missing, " << report.new_in_current << " new — "
      << (report.failed ? "FAIL" : "PASS") << "\n";
}

}  // namespace corekit::bench_diff
