// corekit_lint CLI: applies the repo's convention rules (see
// corekit_lint_lib.h) and exits nonzero on any violation.
//
//   corekit_lint [--root DIR] [SUBDIR...]
//
// DIR defaults to the current directory; SUBDIRs default to the scanned
// set {src, tools, bench, tests, examples}.  CI runs it from the repo
// root with no arguments.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "corekit_lint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: corekit_lint [--root DIR] [SUBDIR...]\n";
      return 0;
    } else {
      subdirs.emplace_back(argv[i]);
    }
  }
  if (subdirs.empty()) {
    subdirs = {"src", "tools", "bench", "tests", "examples"};
  }

  const std::vector<corekit::lint::Violation> violations =
      corekit::lint::LintTree(root, subdirs);
  for (const corekit::lint::Violation& violation : violations) {
    std::cout << corekit::lint::FormatViolation(violation) << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " corekit_lint violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "corekit_lint: clean\n";
  return 0;
}
