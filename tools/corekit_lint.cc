// corekit_lint CLI: applies the repo's convention rules (see
// corekit_lint_lib.h) and exits nonzero on any violation.
//
//   corekit_lint [--root DIR] [--waivers] [SUBDIR...]
//
// DIR defaults to the current directory; SUBDIRs default to the scanned
// set {src, tools, bench, tests, examples}.  CI runs it from the repo
// root with no arguments, plus a `--waivers` pass so the waiver debt is
// visible in every CI log: that mode lists each active
// `corekit-lint: allow(...)` as file:line [rule] and exits 0.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "corekit_lint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> subdirs;
  bool waivers_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--waivers") == 0) {
      waivers_mode = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: corekit_lint [--root DIR] [--waivers] [SUBDIR...]\n";
      return 0;
    } else {
      subdirs.emplace_back(argv[i]);
    }
  }
  if (subdirs.empty()) {
    subdirs = {"src", "tools", "bench", "tests", "examples"};
  }

  if (waivers_mode) {
    const std::vector<corekit::lint::Waiver> waivers =
        corekit::lint::CollectWaiversInTree(root, subdirs);
    for (const corekit::lint::Waiver& waiver : waivers) {
      std::cout << waiver.file << ":" << waiver.line << " [" << waiver.rule
                << "]\n";
    }
    std::cout << waivers.size() << " active waiver"
              << (waivers.size() == 1 ? "" : "s") << "\n";
    return 0;
  }

  const std::vector<corekit::lint::Violation> violations =
      corekit::lint::LintTree(root, subdirs);
  for (const corekit::lint::Violation& violation : violations) {
    std::cout << corekit::lint::FormatViolation(violation) << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " corekit_lint violation"
              << (violations.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "corekit_lint: clean\n";
  return 0;
}
