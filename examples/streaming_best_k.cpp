// Streaming best-k: keep the best k fresh while the graph evolves.
//
// The paper's algorithms are static; this example combines them with the
// incremental maintenance substrate (corekit/dynamic) to answer "what is
// the best k *right now*" over a stream of edge insertions and
// deletions: the DynamicCoreIndex maintains exact coreness per update
// (touching only the affected subcore), and the O(n) Algorithm 2 scoring
// re-runs on demand from the maintained coreness — no O(m) decomposition
// in the loop.

#include <cstdio>
#include <iostream>

#include "corekit/corekit.h"

int main() {
  using namespace corekit;

  // Start from half of a social-like graph; stream in the other half,
  // with occasional deletions (churn).
  RmatParams rmat;
  rmat.scale = 13;
  rmat.num_edges = 90000;
  rmat.seed = SeedFromString("streaming");
  const Graph full = GenerateRmat(rmat);
  EdgeList edges = full.ToEdgeList();
  Rng rng(SeedFromString("streaming-order"));
  rng.Shuffle(edges);
  const std::size_t half = edges.size() / 2;

  DynamicCoreIndex index(full.NumVertices());
  for (std::size_t i = 0; i < half; ++i) {
    index.InsertEdge(edges[i].first, edges[i].second);
  }

  auto report = [&index](const char* when) {
    // Score from the maintained coreness: snapshot CSR + Algorithm 2.
    Timer timer;
    const Graph snapshot = index.Snapshot();
    CoreDecomposition cores;
    cores.coreness = index.CorenessArray();
    cores.kmax = index.Kmax();
    const OrderedGraph ordered(snapshot, cores);
    const CoreSetProfile ad = FindBestCoreSet(ordered, Metric::kAverageDegree);
    const CoreSetProfile mod = FindBestCoreSet(ordered, Metric::kModularity);
    std::printf(
        "%-22s m=%-7llu kmax=%-4u best k (ad)=%-4u best k (mod)=%-4u "
        "[scored in %s]\n",
        when, static_cast<unsigned long long>(index.NumEdges()),
        cores.kmax, ad.best_k, mod.best_k,
        TablePrinter::FormatSeconds(timer.ElapsedSeconds()).c_str());
  };

  report("after bulk load:");

  // Stream the remaining edges in batches with 10% churn.
  const std::size_t batch = (edges.size() - half) / 4;
  std::size_t next = half;
  for (int phase = 1; phase <= 4; ++phase) {
    Timer timer;
    std::size_t inserted = 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < batch && next < edges.size(); ++i, ++next) {
      index.InsertEdge(edges[next].first, edges[next].second);
      ++inserted;
      if (rng.NextBool(0.1)) {
        const auto& victim = edges[rng.NextBounded(next)];
        removed += index.RemoveEdge(victim.first, victim.second) ? 1u : 0u;
      }
    }
    const double update_time = timer.ElapsedSeconds();
    std::printf("phase %d: +%zu/-%zu edges maintained in %s (%.0f updates/s)\n",
                phase, inserted, removed,
                TablePrinter::FormatSeconds(update_time).c_str(),
                static_cast<double>(inserted + removed) / update_time);
    report("  state:");
  }

  // Sanity: the maintained coreness is exact.  The engine takes ownership
  // of the snapshot (Graph&& constructor) and peels it from scratch.
  CoreEngine verify(index.Snapshot());
  std::printf("\nmaintained coreness exact: %s\n",
              index.CorenessArray() == verify.Cores().coreness ? "yes" : "NO");
  return 0;
}
