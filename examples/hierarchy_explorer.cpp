// Hierarchy explorer: the per-vertex view of the core hierarchy.
//
// The paper's algorithms score every k-core as a byproduct; this example
// turns that into an interactive-style product: for sample vertices,
// print the chain of cores containing them (sizes and scores at every
// level, answered in O(log depth) by the CoreHierarchyIndex), their
// personalized best k, and export the whole hierarchy as Graphviz DOT
// for rendering.

#include <cstdio>
#include <iostream>

#include "corekit/corekit.h"

int main() {
  using namespace corekit;

  OnionParams params;
  params.num_vertices = 5000;
  params.num_layers = 8;
  params.target_kmax = 24;
  params.seed = SeedFromString("hierarchy-explorer");
  const Graph graph = GenerateOnion(params);

  CoreEngine engine(graph);
  const CoreDecomposition& cores = engine.Cores();
  const CoreForest& forest = engine.Forest();
  const SingleCoreProfile& profile =
      engine.BestSingleCore(Metric::kAverageDegree);
  const CoreHierarchyIndex index(forest, profile);

  std::printf("graph: n=%u m=%llu kmax=%u, %u cores in the forest\n\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()), cores.kmax,
              forest.NumNodes());

  // Walk three vertices from different depths of the hierarchy.
  Rng rng(SeedFromString("explorer-picks"));
  for (int pick = 0; pick < 3; ++pick) {
    const auto v = static_cast<VertexId>(rng.NextBounded(graph.NumVertices()));
    std::printf("vertex %u (coreness %u, degree %u): best k = %u\n", v,
                cores.coreness[v], graph.Degree(v), index.BestKFor(v));
    TablePrinter chain({"k", "|core|", "avg degree"});
    for (VertexId k = 1; k <= cores.coreness[v]; k += 4) {
      chain.AddRow({std::to_string(k), std::to_string(index.CoreSize(v, k)),
                    TablePrinter::FormatDouble(index.Score(v, k), 3)});
    }
    chain.Print(std::cout);
    std::printf("\n");
  }

  // Export the forest (pruned to cores with >= 50 vertices) as DOT.
  HierarchyDotOptions options;
  options.title = "onion_hierarchy";
  options.scores = profile.scores;
  options.min_core_size = 50;
  const std::string path = "/tmp/corekit_hierarchy.dot";
  const Status status = WriteCoreForestDot(forest, path, options);
  if (status.ok()) {
    std::printf("hierarchy written to %s (render: dot -Tsvg %s -o h.svg)\n",
                path.c_str(), path.c_str());
  } else {
    std::printf("DOT export failed: %s\n", status.ToString().c_str());
  }
  return 0;
}
