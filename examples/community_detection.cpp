// Community detection with best-k core selection (the Section V-B case
// study, on a synthetic collaboration network).
//
// The paper finds two qualitatively different communities in DBLP by
// running the best-single-core search under different metrics: cohesion
// metrics (average degree, density, clustering coefficient) pick a densely
// collaborating group, while separation metrics (cut ratio, conductance)
// pick an isolated group.  This example reproduces that workflow on a
// planted-partition graph whose ground truth is known, and reports how
// well the selected cores align with the planted communities.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "corekit/corekit.h"

namespace {

// Fraction of `vertices` that lies in its best-covered planted community.
double Purity(const std::vector<corekit::VertexId>& vertices,
              const std::vector<corekit::VertexId>& community) {
  if (vertices.empty()) return 0.0;
  std::map<corekit::VertexId, int> counts;
  for (const corekit::VertexId v : vertices) ++counts[community[v]];
  int best = 0;
  for (const auto& [label, count] : counts) best = std::max(best, count);
  return static_cast<double>(best) / static_cast<double>(vertices.size());
}

}  // namespace

int main() {
  using namespace corekit;

  // A collaboration-network stand-in with *heterogeneous* communities —
  // the situation of the paper's case study, where one group (community A,
  // an MIT lab) is far denser than the rest and another (community B) is
  // unusually isolated.  Communities are ER blocks of increasing density;
  // the last block gets almost no outside wiring.
  const VertexId kBlock = 250;
  const VertexId kBlocks = 8;
  const VertexId n = kBlock * kBlocks;
  Rng rng(SeedFromString("community-example"));
  GraphBuilder builder(n);
  std::vector<VertexId> community(n);
  for (VertexId b = 0; b < kBlocks; ++b) {
    const VertexId offset = b * kBlock;
    for (VertexId v = offset; v < offset + kBlock; ++v) community[v] = b;
    // Density ramps from ~6 to ~55 expected neighbors.
    const double p_in = 0.025 + 0.028 * b;
    const Graph block =
        GenerateErdosRenyi(kBlock,
                           static_cast<EdgeId>(p_in * kBlock * (kBlock - 1) / 2),
                           rng.NextUint64());
    for (const auto& [u, v] : block.ToEdgeList()) {
      builder.AddEdge(offset + u, offset + v);
    }
  }
  // Sparse cross wiring that skips community 5, leaving it nearly
  // isolated (the analogue of the paper's community B).
  const VertexId kIsolated = 5;
  for (int i = 0; i < 2500;) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (community[u] == kIsolated || community[v] == kIsolated) continue;
    builder.AddEdge(u, v);
    ++i;
  }
  builder.AddEdge(kIsolated * kBlock, 0);  // one bridge keeps it connected
  const Graph graph = builder.Build();

  std::printf("collaboration network: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // One engine: the six per-metric searches share one decomposition,
  // ordering, and forest build.
  CoreEngine engine(graph);
  const CoreDecomposition& cores = engine.Cores();
  const CoreForest& forest = engine.Forest();
  std::printf("kmax=%u, %u cores in the hierarchy\n\n", cores.kmax,
              forest.NumNodes());

  TablePrinter table({"metric", "best k", "|S*|", "score", "purity"});
  for (const Metric metric : kAllMetrics) {
    const SingleCoreProfile& profile = engine.BestSingleCore(metric);
    const std::vector<VertexId> members =
        forest.CoreVertices(profile.best_node);
    table.AddRow({MetricShortName(metric), std::to_string(profile.best_k),
                  std::to_string(members.size()),
                  TablePrinter::FormatDouble(profile.best_score, 4),
                  TablePrinter::FormatDouble(Purity(members, community), 3)});
  }
  table.Print(std::cout);

  std::printf(
      "\nCohesion metrics (ad/den/cc) should select a dense core inside one\n"
      "planted community (purity near 1); separation metrics (cr/con) favor\n"
      "weakly attached cores.\n");
  return 0;
}
