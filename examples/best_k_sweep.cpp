// Score-profile sweep: the Figure 5 / Figure 6 workflow as a library
// consumer would run it.
//
// Prints the per-k score of every k-core set for all six metrics (one
// column per metric) so the curves of Figure 5 can be plotted from the
// output, then the per-core scores in ascending-k order (Figure 6), and a
// size-constrained query demo (Table IX workflow).

#include <cstdio>
#include <iostream>
#include <vector>

#include "corekit/corekit.h"

int main() {
  using namespace corekit;

  OnionParams params;
  params.num_vertices = 20000;
  params.num_layers = 24;
  params.target_kmax = 48;
  params.seed = SeedFromString("sweep-example");
  const Graph graph = GenerateOnion(params);

  // One engine for the whole sweep: the decomposition and ordering are
  // built once and shared by all six metrics, the forest once for the
  // per-core pass, and the solver below reuses the same cache.
  CoreEngine engine(graph);
  const CoreDecomposition& cores = engine.Cores();
  const CoreForest& forest = engine.Forest();
  std::printf("onion graph: n=%u m=%llu kmax=%u\n\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()), cores.kmax);

  // Figure 5 analogue: score of every k-core set, all metrics.
  std::vector<const CoreSetProfile*> profiles;
  profiles.reserve(std::size(kAllMetrics));
  for (const Metric metric : kAllMetrics) {
    profiles.push_back(&engine.BestCoreSet(metric));
  }
  TablePrinter sets({"k", "|C_k|", "ad", "den", "cr", "con", "mod", "cc"});
  for (VertexId k = 0; k <= cores.kmax; k += 4) {
    std::vector<std::string> row{
        std::to_string(k),
        std::to_string(profiles[0]->primaries[k].num_vertices)};
    for (const CoreSetProfile* profile : profiles) {
      row.push_back(TablePrinter::FormatDouble(profile->scores[k], 4));
    }
    sets.AddRow(std::move(row));
  }
  sets.Print(std::cout);

  std::printf("\nbest k per metric:");
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::printf(" %s=%u", MetricShortName(kAllMetrics[i]),
                profiles[i]->best_k);
  }
  std::printf("\n");

  // Figure 6 analogue: per-core scores under average degree.
  const SingleCoreProfile& single =
      engine.BestSingleCore(Metric::kAverageDegree);
  std::printf("\n%u individual cores; top-scoring cores by average degree:\n",
              forest.NumNodes());
  std::vector<CoreForest::NodeId> by_score(forest.NumNodes());
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) by_score[i] = i;
  std::sort(by_score.begin(), by_score.end(),
            [&](CoreForest::NodeId a, CoreForest::NodeId b) {
              return single.scores[a] > single.scores[b];
            });
  for (std::size_t rank = 0; rank < 5 && rank < by_score.size(); ++rank) {
    const CoreForest::NodeId node = by_score[rank];
    std::printf("  #%zu: k=%u |S|=%u score=%.4f\n", rank + 1,
                forest.node(node).coreness, forest.CoreSize(node),
                single.scores[node]);
  }

  // Table IX workflow: size-constrained queries.
  const SizeConstrainedCoreSolver solver(engine);
  std::printf("\nsize-constrained queries (k=8):\n");
  for (const VertexId h : {100u, 500u, 2000u}) {
    const VertexId query = graph.NumVertices() - 1;  // an inner-layer vertex
    const SckResult result = solver.Solve(query, 8, h);
    std::printf("  h=%-5u -> %s (|answer|=%zu)\n", h,
                result.found ? "hit" : "miss", result.vertices.size());
  }
  return 0;
}
