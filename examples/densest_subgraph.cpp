// Densest-subgraph discovery via best-k core selection (Section V-D,
// Table VIII workflow).
//
// Compares three solvers on a heavy-tailed R-MAT graph:
//   * Opt-D      — best single k-core under average degree (this paper),
//   * CoreApp    — kmax-core approximation (Fang et al., the comparator),
//   * Exact      — Goldberg's max-flow reduction (on a small graph).
// and checks whether the maximum clique lives inside Opt-D's output, the
// containment property Table VIII reports.

#include <cstdio>
#include <iostream>

#include "corekit/corekit.h"

int main() {
  using namespace corekit;

  // Large-ish skewed graph for the approximation comparison.
  RmatParams rmat;
  rmat.scale = 15;
  rmat.num_edges = 1 << 19;
  rmat.seed = SeedFromString("densest-example");
  const Graph graph = GenerateRmat(rmat);
  std::printf("R-MAT graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Both solvers share one engine, so CoreApp reuses the decomposition
  // Opt-D already built; each solver's time is its own marginal work.
  CoreEngine engine(graph);
  Timer timer;
  const DensestSubgraphResult opt_d = OptDDensestSubgraph(engine);
  const double opt_d_time = timer.ElapsedSeconds();
  timer.Reset();
  const DensestSubgraphResult core_app = CoreAppDensestSubgraph(engine);
  const double core_app_time = timer.ElapsedSeconds();

  TablePrinter table({"algorithm", "davg", "|S|", "time"});
  table.AddRow({"Opt-D", TablePrinter::FormatDouble(opt_d.average_degree, 3),
                std::to_string(opt_d.vertices.size()),
                TablePrinter::FormatSeconds(opt_d_time)});
  table.AddRow({"CoreApp",
                TablePrinter::FormatDouble(core_app.average_degree, 3),
                std::to_string(core_app.vertices.size()),
                TablePrinter::FormatSeconds(core_app_time)});
  table.Print(std::cout);

  // Maximum clique containment (exact solver).
  const std::vector<VertexId> clique = FindMaximumClique(graph);
  std::vector<bool> in_opt_d(graph.NumVertices(), false);
  for (const VertexId v : opt_d.vertices) in_opt_d[v] = true;
  bool contained = true;
  for (const VertexId v : clique) contained = contained && in_opt_d[v];
  std::printf("\nmaximum clique: %zu vertices; contained in S*: %s\n",
              clique.size(), contained ? "yes" : "no");

  // Exact optimum on a downsized instance (max-flow is the oracle, not a
  // production path).
  rmat.scale = 9;
  rmat.num_edges = 1 << 12;
  const Graph small = GenerateRmat(rmat);
  const DensestSubgraphResult small_opt_d = OptDDensestSubgraph(small);
  const DensestSubgraphResult exact = ExactDensestSubgraph(small);
  std::printf(
      "\nsmall instance (n=%u): exact davg=%.4f, Opt-D davg=%.4f "
      "(ratio %.3f, guaranteed >= 0.5)\n",
      small.NumVertices(), exact.average_degree, small_opt_d.average_degree,
      small_opt_d.average_degree / exact.average_degree);
  return 0;
}
