// Influential-spreader identification: the application that motivates
// much of the k-core literature the paper builds on (Kitsak et al. [34];
// also [24], [40], [41]).
//
// Claim reproduced: for single-seed epidemics near the epidemic
// threshold, a vertex's coreness predicts its spreading power better than
// its degree — the best spreaders sit in the inner core, not on
// high-degree periphery.  We build a network with deliberate
// hub-on-the-periphery structure (a dense core plus high-degree stars
// hanging off it), then compare average outbreak sizes of top-degree vs
// top-coreness seed pools.

#include <cstdio>
#include <iostream>

#include "corekit/corekit.h"

int main() {
  using namespace corekit;

  // Network: an onion-style dense core with star-hubs attached to the
  // periphery by a single link each — the hubs have the highest degrees
  // but coreness 1.
  Rng rng(SeedFromString("spreaders"));
  OnionParams onion;
  onion.num_vertices = 3000;
  onion.num_layers = 10;
  onion.target_kmax = 24;
  onion.seed = rng.NextUint64();
  const Graph core_part = GenerateOnion(onion);

  const VertexId hubs = 12;
  const VertexId leaves_per_hub = 120;
  const VertexId n =
      core_part.NumVertices() + hubs * (1 + leaves_per_hub);
  GraphBuilder builder(n);
  builder.AddEdges(core_part.ToEdgeList());
  VertexId next = core_part.NumVertices();
  for (VertexId h = 0; h < hubs; ++h) {
    const VertexId hub = next++;
    // One link into the sparse outskirts of the core.
    builder.AddEdge(hub, static_cast<VertexId>(rng.NextBounded(
                             core_part.NumVertices() / 8)));
    for (VertexId leaf = 0; leaf < leaves_per_hub; ++leaf) {
      builder.AddEdge(hub, next++);
    }
  }
  const Graph graph = builder.Build();
  CoreEngine engine(graph);
  const CoreDecomposition& cores = engine.Cores();
  std::printf("network: n=%u m=%llu kmax=%u\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              cores.kmax);

  // Seed pools.
  const VertexId pool = 20;
  const auto by_degree = TopDegreeVertices(graph, pool);
  const auto by_coreness = TopCorenessVertices(graph, cores, pool);
  std::printf("top-degree pool: degree %u..%u, coreness of first: %u\n",
              graph.Degree(by_degree.front()),
              graph.Degree(by_degree.back()),
              cores.coreness[by_degree.front()]);
  std::printf("top-coreness pool: coreness %u, degree of first: %u\n\n",
              cores.coreness[by_coreness.front()],
              graph.Degree(by_coreness.front()));

  // Sweep the transmission probability around the epidemic threshold.
  TablePrinter table({"beta", "avg outbreak (top degree)",
                      "avg outbreak (top coreness)", "coreness wins"});
  SirParams params;
  params.trials = 60;
  params.seed = SeedFromString("sir");
  for (const double beta : {0.02, 0.05, 0.10, 0.20}) {
    params.infect_prob = beta;
    const double degree_spread =
        AverageSingleSeedOutbreak(graph, by_degree, params);
    const double coreness_spread =
        AverageSingleSeedOutbreak(graph, by_coreness, params);
    table.AddRow({TablePrinter::FormatDouble(beta, 2),
                  TablePrinter::FormatDouble(degree_spread, 1),
                  TablePrinter::FormatDouble(coreness_spread, 1),
                  coreness_spread > degree_spread ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected ([34]): inner-core seeds out-spread peripheral hubs "
      "despite far smaller degree, most clearly at small beta.\n");
  return 0;
}
