// Quickstart: find the best k for a graph in a dozen lines.
//
// Usage:
//   quickstart [edge_list.txt [metric]]
//
// Without arguments a small synthetic social-like network is generated.
// With a SNAP-format edge list (e.g. any dataset from
// http://snap.stanford.edu) the same pipeline runs on real data.

#include <cstdio>
#include <string>

#include "corekit/corekit.h"

int main(int argc, char** argv) {
  using namespace corekit;

  // 1. Load or generate a graph.
  Graph graph;
  if (argc > 1) {
    Result<Graph> loaded = ReadSnapEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    RmatParams rmat;
    rmat.scale = 14;
    rmat.num_edges = 1 << 17;
    rmat.seed = 7;
    graph = GenerateRmat(rmat);  // skewed degrees -> a deep core hierarchy
  }
  const Metric metric =
      ParseMetric(argc > 2 ? argv[2] : "ad").value_or(Metric::kAverageDegree);

  std::printf("graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // 2. The engine builds and caches the O(m) substrate (decomposition,
  // Algorithm 1 ordering index) on first use.
  CoreEngine engine(graph);
  const CoreDecomposition& cores = engine.Cores();
  std::printf("kmax (degeneracy): %u\n", cores.kmax);

  // 3. Score every k-core set and pick the best k (Algorithm 2/3).
  const CoreSetProfile& profile = engine.BestCoreSet(metric);
  std::printf("best k under %s: k*=%u with score %.4f\n", MetricName(metric),
              profile.best_k, profile.best_score);

  // The whole profile is available, not just the argmax:
  for (VertexId k = 0; k <= cores.kmax; k += (cores.kmax / 8) + 1) {
    std::printf("  k=%-4u |C_k|=%-8llu score=%.4f\n", k,
                static_cast<unsigned long long>(
                    profile.primaries[k].num_vertices),
                profile.scores[k]);
  }

  // 4. And the best single connected k-core (Algorithm 5).  The engine
  // reuses the cached decomposition and ordering; only the core forest is
  // built on top.
  const SingleCoreProfile& single = engine.BestSingleCore(metric);
  std::printf("best single core: k*=%u, %u vertices, score %.4f\n",
              single.best_k, engine.Forest().CoreSize(single.best_node),
              single.best_score);

  // 5. Per-stage instrumentation: what was built, how long it took, what
  // was served from the cache.
  std::printf("\nengine stats: %s\n", engine.StatsJson().c_str());
  return 0;
}
