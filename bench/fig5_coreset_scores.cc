// Figure 5: score of every k-core set as a function of k, on the three
// largest datasets (LiveJournal / Orkut / FriendSter stand-ins), for
// average degree, cut ratio, conductance and modularity.
//
// Paper reference: (a) average degree rises with k (with a spiky tail),
// (b) cut ratio stays near 1 and falls slightly with k, (c) conductance
// falls from 1 as k grows, (d) modularity is unimodal with an interior
// maximum.  The printed series reproduce those shapes; each row is one
// sample point k.

#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunFig5(BenchRunner& run) {
  constexpr Metric kFigureMetrics[] = {Metric::kAverageDegree,
                                       Metric::kCutRatio,
                                       Metric::kConductance,
                                       Metric::kModularity};

  std::cout << "== Figure 5: scores of every k-core set ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "LJ" && dataset.short_name != "O" &&
        dataset.short_name != "FS") {
      continue;
    }
    VertexId kmax = 0;
    std::vector<CoreSetProfile> profiles;
    const CaseResult* result = run.Case(
        {"fig5/" + dataset.short_name, {"paper"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          const CoreDecomposition cores = ComputeCoreDecomposition(graph);
          const OrderedGraph ordered(graph, cores);
          kmax = cores.kmax;
          profiles.clear();
          Timer timer;
          for (const Metric metric : kFigureMetrics) {
            profiles.push_back(FindBestCoreSet(ordered, metric));
          }
          rec.SetSeconds(timer.ElapsedSeconds());
          rec.Counter("kmax", static_cast<double>(kmax));
          for (std::size_t i = 0; i < std::size(kFigureMetrics); ++i) {
            rec.Counter(std::string("best_k_") +
                            MetricShortName(kFigureMetrics[i]),
                        static_cast<double>(profiles[i].best_k));
          }
        });
    if (result == nullptr) continue;

    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << "), kmax=" << kmax << " --\n";
    TablePrinter table({"k", "ad", "cr", "con", "mod"});
    const VertexId step = kmax / 24 + 1;
    for (VertexId k = 0; k <= kmax; k += step) {
      table.AddRow({std::to_string(k),
                    TablePrinter::FormatDouble(profiles[0].scores[k], 2),
                    TablePrinter::FormatDouble(profiles[1].scores[k], 6),
                    TablePrinter::FormatDouble(profiles[2].scores[k], 4),
                    TablePrinter::FormatDouble(profiles[3].scores[k], 4)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): ad grows with k; cr ~1 and gently "
               "decreasing; con decreasing; mod unimodal with an interior "
               "peak.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(fig5_coreset_scores, corekit::bench::RunFig5);
COREKIT_BENCH_MAIN()
