// Figure 5: score of every k-core set as a function of k, on the three
// largest datasets (LiveJournal / Orkut / FriendSter stand-ins), for
// average degree, cut ratio, conductance and modularity.
//
// Paper reference: (a) average degree rises with k (with a spiky tail),
// (b) cut ratio stays near 1 and falls slightly with k, (c) conductance
// falls from 1 as k grows, (d) modularity is unimodal with an interior
// maximum.  The printed series reproduce those shapes; each row is one
// sample point k.

#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  constexpr Metric kFigureMetrics[] = {Metric::kAverageDegree,
                                       Metric::kCutRatio,
                                       Metric::kConductance,
                                       Metric::kModularity};

  std::cout << "== Figure 5: scores of every k-core set ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "LJ" && dataset.short_name != "O" &&
        dataset.short_name != "FS") {
      continue;
    }
    const Graph graph = dataset.make();
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);

    std::vector<CoreSetProfile> profiles;
    for (const Metric metric : kFigureMetrics) {
      profiles.push_back(FindBestCoreSet(ordered, metric));
    }

    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << "), kmax=" << cores.kmax << " --\n";
    TablePrinter table({"k", "ad", "cr", "con", "mod"});
    const VertexId step = cores.kmax / 24 + 1;
    for (VertexId k = 0; k <= cores.kmax; k += step) {
      table.AddRow({std::to_string(k),
                    TablePrinter::FormatDouble(profiles[0].scores[k], 2),
                    TablePrinter::FormatDouble(profiles[1].scores[k], 6),
                    TablePrinter::FormatDouble(profiles[2].scores[k], 4),
                    TablePrinter::FormatDouble(profiles[3].scores[k], 4)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): ad grows with k; cr ~1 and gently "
               "decreasing; con decreasing; mod unimodal with an interior "
               "peak.\n";
  return 0;
}
