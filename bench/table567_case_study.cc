// Tables V-VII: the case study.  The paper runs the best-single-core
// search on DBLP under different metrics and finds two qualitatively
// different author communities:
//   * community A (a 17-core, an MIT supercomputing lab) — best under the
//     cohesion metrics ad / den / cc, with ad 17.0, den 1.0, cc 1.0;
//   * community B (a 9-core, a CAS space-science group) — best under the
//     separation metrics cr / con, with cr 1.0 and con 1.0.
//
// The stand-in is a collaboration network with heterogeneous planted
// groups: one exceptionally dense group (A) and one nearly isolated group
// (B).  The harness reports, per metric, which planted group the best
// core aligns with, and then the Table VII score matrix for the two
// selected communities.

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "corekit/corekit.h"
#include "harness/harness.h"

namespace {

using namespace corekit;

// Majority planted group of a vertex set (and its share).
std::pair<VertexId, double> MajorityGroup(
    const std::vector<VertexId>& vertices,
    const std::vector<VertexId>& group) {
  std::map<VertexId, int> counts;
  for (const VertexId v : vertices) ++counts[group[v]];
  VertexId best_label = 0;
  int best_count = -1;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_label = label;
      best_count = count;
    }
  }
  return {best_label,
          static_cast<double>(best_count) /
              static_cast<double>(vertices.size())};
}

// Scores a vertex set under all primary-value metrics (Table VII row).
std::vector<std::string> ScoreRow(const Graph& graph, const std::string& id,
                                  const std::vector<VertexId>& members) {
  std::vector<bool> mask(graph.NumVertices(), false);
  for (const VertexId v : members) mask[v] = true;
  const PrimaryValues pv = NaivePrimaryValues(graph, mask);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  return {id,
          std::to_string(members.size()),
          TablePrinter::FormatDouble(
              EvaluateMetric(Metric::kAverageDegree, pv, globals), 2),
          TablePrinter::FormatDouble(
              EvaluateMetric(Metric::kInternalDensity, pv, globals), 4),
          TablePrinter::FormatDouble(
              EvaluateMetric(Metric::kClusteringCoefficient, pv, globals), 4),
          TablePrinter::FormatDouble(
              EvaluateMetric(Metric::kCutRatio, pv, globals), 6),
          TablePrinter::FormatDouble(
              EvaluateMetric(Metric::kConductance, pv, globals), 4)};
}

// The collaboration-network stand-in (matches the paper's DBLP setting in
// spirit): 10 author groups; group 9 is exceptionally dense (community
// A's analogue: near-clique collaboration), group 5 is nearly isolated
// (community B's analogue).
constexpr VertexId kBlock = 200;
constexpr VertexId kBlocks = 10;
constexpr VertexId kIsolated = 5;

Graph BuildCaseStudyGraph(std::vector<VertexId>& group) {
  const VertexId n = kBlock * kBlocks;
  Rng rng(SeedFromString("table567"));
  GraphBuilder builder(n);
  group.assign(n, 0);
  for (VertexId b = 0; b < kBlocks; ++b) {
    const VertexId offset = b * kBlock;
    for (VertexId v = offset; v < offset + kBlock; ++v) group[v] = b;
    const double p_in = (b == kBlocks - 1) ? 0.6 : 0.02 + 0.01 * b;
    const Graph block = GenerateErdosRenyi(
        kBlock, static_cast<EdgeId>(p_in * kBlock * (kBlock - 1) / 2),
        rng.NextUint64());
    for (const auto& [u, v] : block.ToEdgeList()) {
      builder.AddEdge(offset + u, offset + v);
    }
  }
  for (int i = 0; i < 3000;) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (group[u] == kIsolated || group[v] == kIsolated) continue;
    builder.AddEdge(u, v);
    ++i;
  }
  builder.AddEdge(kIsolated * kBlock, 0);  // single bridge
  return builder.Build();
}

void RunTable567(corekit::bench::BenchRunner& run) {
  using corekit::bench::CaseRecorder;
  using corekit::bench::CaseResult;

  const VertexId n = kBlock * kBlocks;
  EdgeId m = 0;
  VertexId kmax = 0;
  std::vector<std::vector<std::string>> pick_rows;
  std::vector<VertexId> community_a;  // cohesion pick
  std::vector<VertexId> community_b;  // separation pick
  std::vector<std::vector<std::string>> score_rows;

  const CaseResult* result = run.Case(
      {"table567/case_study", {"paper"}},
      [&](CaseRecorder& rec) {
        std::vector<VertexId> group;
        const Graph graph = BuildCaseStudyGraph(group);
        m = graph.NumEdges();

        Timer timer;
        const CoreDecomposition cores = ComputeCoreDecomposition(graph);
        const OrderedGraph ordered(graph, cores);
        const CoreForest forest(graph, cores);
        kmax = cores.kmax;

        // Per-metric best single core and its planted-group alignment
        // (Tables V and VI report the two communities' member lists; here
        // the ground truth makes alignment checkable).
        pick_rows.clear();
        community_a.clear();
        community_b.clear();
        for (const Metric metric : kAllMetrics) {
          const SingleCoreProfile profile =
              FindBestSingleCore(ordered, forest, metric);
          const std::vector<VertexId> members =
              forest.CoreVertices(profile.best_node);
          const auto [label, share] = MajorityGroup(members, group);
          pick_rows.push_back(
              {MetricShortName(metric), std::to_string(profile.best_k),
               std::to_string(members.size()), std::to_string(label),
               TablePrinter::FormatDouble(share, 3)});
          if (metric == Metric::kAverageDegree) community_a = members;
          if (metric == Metric::kConductance) community_b = members;
        }
        rec.SetSeconds(timer.ElapsedSeconds());
        rec.Counter("kmax", static_cast<double>(kmax));
        rec.Counter("community_a_size",
                    static_cast<double>(community_a.size()));

        // Community B analogue: the separation metrics on this stand-in
        // (as in the paper) can collapse to tiny k; take the isolated
        // planted group's own core as community B, the way the paper
        // reports the 9-core it found.
        if (community_b.size() > n / 2) {
          community_b.clear();
          for (VertexId v = kIsolated * kBlock; v < (kIsolated + 1) * kBlock;
               ++v) {
            community_b.push_back(v);
          }
        }
        rec.Counter("community_b_size",
                    static_cast<double>(community_b.size()));

        score_rows.clear();
        score_rows.push_back(ScoreRow(graph, "A (dense pick)", community_a));
        score_rows.push_back(
            ScoreRow(graph, "B (isolated group)", community_b));
      });
  if (result == nullptr) return;

  std::cout << "== Tables V-VII: case study on a synthetic collaboration "
               "network (n="
            << n << ", m=" << m << ", kmax=" << kmax << ") ==\n\n";
  TablePrinter picks({"metric", "best k", "|S*|", "majority group",
                      "purity"});
  for (auto& row : pick_rows) picks.AddRow(std::move(row));
  picks.Print(std::cout);

  std::cout << "\n== Table VII analogue: scores of the two detected "
               "communities ==\n";
  TablePrinter scores({"ID", "size", "ad", "den", "cc", "cr", "con"});
  for (auto& row : score_rows) scores.AddRow(std::move(row));
  scores.Print(std::cout);

  std::cout << "\nExpected shape (paper, Table VII): community A tops ad / "
               "den / cc; community B tops cr / con.\n";
}

}  // namespace

COREKIT_BENCH_UNIT(table567_case_study, RunTable567);
COREKIT_BENCH_MAIN()
