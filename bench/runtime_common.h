// Shared machinery for the runtime benchmarks (Figures 7 and 8): timed
// phases and a wall-clock budget for the baselines.
//
// The paper caps baseline runs at 1e5 seconds ("cannot finish within 1e5
// seconds" for clustering coefficient on the big graphs); these harnesses
// scale that idea down with a per-run budget, reporting ">budget" when the
// baseline blows through it — same semantics, laptop-friendly.

#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "corekit/corekit.h"

namespace corekit::bench {

// Wall-clock budget per baseline run, seconds.  COREKIT_BENCH_BUDGET
// overrides (default 10s).
double BaselineBudgetSeconds();

// Renders a possibly-exhausted runtime.
std::string FormatRuntime(std::optional<double> seconds);

// Four figure metrics of Figures 7/8: ad, con, mod, cc.
inline constexpr Metric kRuntimeMetrics[] = {
    Metric::kAverageDegree,
    Metric::kConductance,
    Metric::kModularity,
    Metric::kClusteringCoefficient,
};

// Wall seconds the engine recorded for `stage` ("decompose", "order",
// "forest", CoreEngine::CoreSetStageName(m), ...).  The harnesses report
// per-stage timings from the engine's StageStats instead of wrapping each
// stage in an ad-hoc timer.  CHECK-fails when the stage was never
// recorded (a misspelled stage name must not silently report 0.0);
// callers must force the stage to run before asking for its time.
double EngineStageSeconds(const CoreEngine& engine, std::string_view stage);

// Baseline score computation for every k-core set with a budget; returns
// nullopt (and stops early) when the budget is exhausted.
std::optional<double> TimedBaselineCoreSet(const Graph& graph,
                                           const CoreDecomposition& cores,
                                           Metric metric, double budget);

// Baseline score computation for every single k-core with a budget.
std::optional<double> TimedBaselineSingleCore(const Graph& graph,
                                              const CoreDecomposition& cores,
                                              const CoreForest& forest,
                                              Metric metric, double budget);

}  // namespace corekit::bench
