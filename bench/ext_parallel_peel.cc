// Extension bench: serial vs parallel k-core peeling substrates.
//
// Three peels over the same graphs: the serial Batagelj-Zaversnik
// bucket peel (the oracle), the legacy level-synchronous parallel peel
// (O(n) rescan per coreness level), and the frontier-based bucket peel
// (PR 7: O(n+m) total work, deterministic round settlement).  Each row
// reports wall-clock for all three, the frontier's speedup against both
// baselines, and a bitwise-equality flag against the serial coreness.
//
// Two caveats the numbers encode honestly:
//   - On a single-core host (this container: see EXPERIMENTS.md) no
//     parallel substrate can beat the serial O(m) peel on wall clock;
//     the frontier's win there shows up only against the legacy
//     parallel substrate, and only where kmax is deep.
//   - The Table III stand-ins are m-dominated (n*kmax < a few * m), the
//     regime where the legacy rescan is cheap.  The synthetic "needle"
//     row (long path + one deep clique) is the regime the frontier
//     bucket structure exists for: n*kmax >> m, where the legacy peel's
//     per-level rescans blow up and the frontier wins by an order of
//     magnitude even at one hardware core.

#include <algorithm>
#include <iostream>
#include <string>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

// Deep-hierarchy adversary for the legacy level-synchronous peel: a
// sparse path periphery (keeps n large) plus a single clique (drives
// kmax to clique_size - 1) bridged to the path.  m stays O(n) + O(c^2)
// while the legacy substrate pays O(n * kmax) rescans.
Graph MakeNeedleGraph(VertexId path_vertices, VertexId clique_size) {
  const VertexId n = path_vertices + clique_size;
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < path_vertices; ++v) builder.AddEdge(v, v + 1);
  for (VertexId i = 0; i < clique_size; ++i) {
    for (VertexId j = i + 1; j < clique_size; ++j) {
      builder.AddEdge(path_vertices + i, path_vertices + j);
    }
  }
  builder.AddEdge(0, path_vertices);
  return builder.Build();
}

void RunOnePeelCase(CaseRecorder& rec, TablePrinter& table, const Graph& graph,
                    const std::string& name) {
  const std::uint32_t threads = std::max<std::uint32_t>(4, BenchThreads());

  const CoreDecomposition serial_cores = ComputeCoreDecomposition(graph);

  Timer timer;
  const CoreDecomposition serial_again = ComputeCoreDecomposition(graph);
  const double serial_seconds = timer.ElapsedSeconds();
  (void)serial_again;

  timer.Reset();
  const CoreDecomposition legacy =
      ComputeCoreDecompositionParallel(graph, threads);
  const double legacy_seconds = timer.ElapsedSeconds();

  timer.Reset();
  const CoreDecomposition frontier1 = ComputeCoreDecompositionFrontier(graph, 1);
  const double frontier1_seconds = timer.ElapsedSeconds();

  ThreadPool pool(threads);
  timer.Reset();
  const CoreDecomposition frontier =
      ComputeCoreDecompositionFrontier(graph, pool);
  const double frontier_seconds = timer.ElapsedSeconds();

  const bool exact = frontier.coreness == serial_cores.coreness &&
                     frontier1.coreness == serial_cores.coreness &&
                     legacy.coreness == serial_cores.coreness &&
                     frontier.kmax == serial_cores.kmax;
  const double vs_serial =
      frontier_seconds > 0 ? serial_seconds / frontier_seconds : 0;
  const double vs_legacy =
      frontier_seconds > 0 ? legacy_seconds / frontier_seconds : 0;

  rec.SetSeconds(frontier_seconds);
  rec.Counter("threads", threads);
  rec.Counter("kmax", serial_cores.kmax);
  rec.Counter("serial_seconds", serial_seconds);
  rec.Counter("legacy_parallel_seconds", legacy_seconds);
  rec.Counter("frontier_seconds_1t", frontier1_seconds);
  rec.Counter("frontier_seconds", frontier_seconds);
  rec.Counter("frontier_speedup_vs_serial", vs_serial);
  rec.Counter("frontier_speedup_vs_legacy", vs_legacy);
  rec.Counter("exact", exact ? 1.0 : 0.0);

  table.AddRow({name, std::to_string(serial_cores.kmax),
                TablePrinter::FormatSeconds(serial_seconds),
                TablePrinter::FormatSeconds(legacy_seconds),
                TablePrinter::FormatSeconds(frontier1_seconds),
                TablePrinter::FormatSeconds(frontier_seconds),
                TablePrinter::FormatDouble(vs_serial, 2) + "x",
                TablePrinter::FormatDouble(vs_legacy, 2) + "x",
                exact ? "yes" : "NO"});
}

void RunExtParallelPeel(BenchRunner& run) {
  std::cout << "== Extension: serial vs parallel peel substrates ==\n";
  TablePrinter table({"Dataset", "kmax", "serial", "legacy@T", "frontier@1",
                      "frontier@T", "vs serial", "vs legacy", "exact"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    run.Case({"ext_parallel_peel/" + dataset.short_name,
              SuitesPlusSmoke("ext", dataset.short_name)},
             [&](CaseRecorder& rec) {
               const Graph graph = dataset.make();
               RunOnePeelCase(rec, table, graph, dataset.short_name);
             });
  }
  // The deep-hierarchy regime (n*kmax >> m) that motivates the frontier
  // bucket structure; no Table III stand-in reaches it.
  run.Case({"ext_parallel_peel/needle", {"ext"}}, [&](CaseRecorder& rec) {
    const double scale = BenchScale();
    const VertexId path_vertices =
        std::max<VertexId>(1000, static_cast<VertexId>(300000 * scale));
    const VertexId clique_size =
        std::max<VertexId>(64, static_cast<VertexId>(800 * scale));
    const Graph graph = MakeNeedleGraph(path_vertices, clique_size);
    RunOnePeelCase(rec, table, graph, "needle");
  });
  table.Print(std::cout);
  std::cout << "\nExpected shape: all rows exact (the frontier peel is "
               "bitwise-deterministic); frontier-vs-serial > 1x requires "
               "multiple hardware cores, while frontier-vs-legacy > 1x "
               "already shows on the needle row at any core count because "
               "the legacy substrate pays O(n * kmax) level rescans.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_parallel_peel, corekit::bench::RunExtParallelPeel);
COREKIT_BENCH_MAIN()
