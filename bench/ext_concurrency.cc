// Extension bench: concurrent serving from one shared CoreEngine.
//
// The paper's amortization argument (build the O(m) substrate once, answer
// every best-k query from it) is exercised here in its serving form: K
// client threads issue a mixed query workload (best core set / best single
// core across metrics, triangle and triplet counts, components, community
// search) against one cold shared engine, via the EngineServer harness.
// The table reports wall time, aggregate client-observed latency, and the
// worst single-query latency (which includes time spent blocked on a cold
// build).  The engine's stage records double as a correctness probe: every
// substrate stage must show exactly one build no matter how many clients
// raced it.

#include <iostream>
#include <string>

#include "corekit/corekit.h"
#include "corekit/engine/engine_server.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtConcurrency(BenchRunner& run) {
  std::cout << "== Extension: multi-client serving from a shared CoreEngine "
               "==\n";
  TablePrinter table({"Dataset", "clients", "queries", "wall", "max latency",
                      "substrate builds", "exactly-once"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"concurrency/" + dataset.short_name,
         SuitesPlusSmoke("ext", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          CoreEngine engine(graph);

          EngineServerOptions options;
          options.num_clients = 8;
          options.queries_per_client = 24;
          options.extension_query = CommunitySearchQueryFold;

          const EngineServeReport report = ServeQueryMix(engine, options);

          // Exactly-once check: no stage may have been built more than
          // once, however many clients raced it cold.
          bool exactly_once = true;
          std::uint64_t substrate_builds = 0;
          for (const StageRecord& record : engine.stats().records()) {
            const std::uint64_t builds = record.builds.load();
            substrate_builds += builds;
            if (builds > 1) exactly_once = false;
          }

          double client_seconds = 0.0;
          for (const EngineClientReport& client : report.clients) {
            client_seconds += client.total_seconds;
          }

          rec.SetSeconds(report.wall_seconds);
          rec.Counter("clients", static_cast<double>(options.num_clients));
          rec.Counter("queries", static_cast<double>(report.TotalQueries()));
          rec.Counter("client_seconds", client_seconds);
          rec.Counter("max_latency_seconds", report.MaxLatencySeconds());
          rec.Counter("substrate_builds",
                      static_cast<double>(substrate_builds));
          rec.Counter("exactly_once", exactly_once ? 1.0 : 0.0);
          rec.EngineStages(engine);

          printed = {dataset.short_name,
                     std::to_string(options.num_clients),
                     std::to_string(report.TotalQueries()),
                     TablePrinter::FormatSeconds(report.wall_seconds),
                     TablePrinter::FormatSeconds(report.MaxLatencySeconds()),
                     std::to_string(substrate_builds),
                     exactly_once ? "yes" : "NO"};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: every stage builds exactly once (the cache "
               "absorbs the other clients); wall time stays near the serial "
               "substrate cost because queries after warm-up are cache "
               "hits.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_concurrency, corekit::bench::RunExtConcurrency);
COREKIT_BENCH_MAIN()
