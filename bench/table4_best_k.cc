// Table IV: the best k for every (dataset, metric) pair, for both the
// best k-core set (CS-* rows) and the best single k-core (C-* rows).
//
// Paper reference: CS-ad/CS-den/CS-cc choose large k (cohesion), CS-cr /
// CS-con collapse to k ~ 1 (they only measure cross-connection), CS-mod
// picks moderate k.  The same qualitative split must appear below.

#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  const std::vector<BenchDataset> datasets = ActiveDatasets();

  std::vector<std::string> header{"Algo"};
  for (const BenchDataset& dataset : datasets) {
    header.push_back(dataset.short_name);
  }

  // Two row groups: CS- (core set) and C- (single core), six metrics each.
  std::vector<std::vector<std::string>> cs_rows;
  std::vector<std::vector<std::string>> c_rows;
  for (const Metric metric : kAllMetrics) {
    cs_rows.push_back({std::string("CS-") + MetricShortName(metric)});
    c_rows.push_back({std::string("C-") + MetricShortName(metric)});
  }

  for (const BenchDataset& dataset : datasets) {
    // One engine per dataset: all twelve queries share one decomposition,
    // ordering and forest build.
    CoreEngine engine(dataset.make());
    for (std::size_t i = 0; i < std::size(kAllMetrics); ++i) {
      const Metric metric = kAllMetrics[i];
      cs_rows[i].push_back(std::to_string(engine.BestCoreSet(metric).best_k));
      c_rows[i].push_back(
          std::to_string(engine.BestSingleCore(metric).best_k));
    }
  }

  std::cout << "== Table IV: best k for the k-core set (CS-) and the single "
               "k-core (C-) ==\n";
  TablePrinter table(header);
  for (auto& row : cs_rows) table.AddRow(std::move(row));
  for (auto& row : c_rows) table.AddRow(std::move(row));
  table.Print(std::cout);

  std::cout << "\nExpected shape (paper): ad/den/cc rows pick large k; "
               "cr/con rows pick k near the minimum; mod picks moderate "
               "k.\n";
  return 0;
}
