// Table IV: the best k for every (dataset, metric) pair, for both the
// best k-core set (CS-* rows) and the best single k-core (C-* rows).
//
// Paper reference: CS-ad/CS-den/CS-cc choose large k (cohesion), CS-cr /
// CS-con collapse to k ~ 1 (they only measure cross-connection), CS-mod
// picks moderate k.  The same qualitative split must appear below.

#include <array>
#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunTable4(BenchRunner& run) {
  const std::vector<BenchDataset> datasets = ActiveDatasets();

  std::vector<std::string> header{"Algo"};
  // Two row groups: CS- (core set) and C- (single core), six metrics each.
  std::vector<std::vector<std::string>> cs_rows;
  std::vector<std::vector<std::string>> c_rows;
  for (const Metric metric : kAllMetrics) {
    cs_rows.push_back({std::string("CS-") + MetricShortName(metric)});
    c_rows.push_back({std::string("C-") + MetricShortName(metric)});
  }

  for (const BenchDataset& dataset : datasets) {
    std::array<VertexId, std::size(kAllMetrics)> cs_best{};
    std::array<VertexId, std::size(kAllMetrics)> c_best{};
    const CaseResult* result = run.Case(
        {"table4/" + dataset.short_name,
         SuitesPlusSmoke("paper", dataset.short_name)},
        [&](CaseRecorder& rec) {
          // One engine per dataset: all twelve queries share one
          // decomposition, ordering and forest build.
          CoreEngine engine(dataset.make());
          Timer timer;
          for (std::size_t i = 0; i < std::size(kAllMetrics); ++i) {
            const Metric metric = kAllMetrics[i];
            cs_best[i] = engine.BestCoreSet(metric).best_k;
            c_best[i] = engine.BestSingleCore(metric).best_k;
            rec.Counter(std::string("cs_best_k_") + MetricShortName(metric),
                        static_cast<double>(cs_best[i]));
            rec.Counter(std::string("c_best_k_") + MetricShortName(metric),
                        static_cast<double>(c_best[i]));
          }
          rec.SetSeconds(timer.ElapsedSeconds());
          rec.EngineStages(engine);
        });
    if (result == nullptr) continue;
    header.push_back(dataset.short_name);
    for (std::size_t i = 0; i < std::size(kAllMetrics); ++i) {
      cs_rows[i].push_back(std::to_string(cs_best[i]));
      c_rows[i].push_back(std::to_string(c_best[i]));
    }
  }

  std::cout << "== Table IV: best k for the k-core set (CS-) and the single "
               "k-core (C-) ==\n";
  TablePrinter table(header);
  for (auto& row : cs_rows) table.AddRow(std::move(row));
  for (auto& row : c_rows) table.AddRow(std::move(row));
  table.Print(std::cout);

  std::cout << "\nExpected shape (paper): ad/den/cc rows pick large k; "
               "cr/con rows pick k near the minimum; mod picks moderate "
               "k.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(table4_best_k, corekit::bench::RunTable4);
COREKIT_BENCH_MAIN()
