// Extension bench: the lightweight decomposition applications —
// smallest-last coloring [42], mirror-pattern anomalies [53], onion
// depth [30], and community search ([15]/[16]) — one row per dataset.
//
// Headlines: coloring lands at ~kmax+1 colors, far below the greedy
// Δ+1 bound on skewed graphs; the degree/coreness mirror correlation is
// high on clean networks; community-search queries answer in
// microseconds after the one-off index build.

#include <algorithm>
#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtApplications(BenchRunner& run) {
  std::cout << "== Extension: coloring [42], anomalies [53], onion [30], "
               "community search [15,16] ==\n";
  TablePrinter table({"Dataset", "colors", "kmax+1", "delta+1", "mirror r",
                      "onion layers", "search build", "search query"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_applications/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          Timer total_timer;
          const CoreDecomposition cores = ComputeCoreDecomposition(graph);

          const GraphColoring coloring = ColorBySmallestLast(graph, cores);
          VertexId max_degree = 0;
          for (VertexId v = 0; v < graph.NumVertices(); ++v) {
            max_degree = std::max(max_degree, graph.Degree(v));
          }

          const MirrorPatternResult mirror =
              DetectMirrorAnomalies(graph, cores);
          const OnionDecomposition onion = ComputeOnionDecomposition(graph);

          Timer timer;
          const CommunitySearcher searcher(graph, Metric::kAverageDegree);
          const double build_time = timer.ElapsedSeconds();
          // Average query latency over a spread of query vertices.
          timer.Reset();
          int queries = 0;
          for (VertexId q = 0; q < graph.NumVertices();
               q += graph.NumVertices() / 64 + 1) {
            const CommunitySearchResult search = searcher.Search(q);
            (void)search;
            ++queries;
          }
          const double query_time = timer.ElapsedSeconds() / queries;

          rec.SetSeconds(total_timer.ElapsedSeconds());
          rec.Counter("colors", static_cast<double>(coloring.num_colors));
          rec.Counter("kmax", static_cast<double>(cores.kmax));
          rec.Counter("max_degree", static_cast<double>(max_degree));
          rec.Counter("mirror_correlation", mirror.correlation);
          rec.Counter("onion_layers",
                      static_cast<double>(onion.num_layers));
          rec.Counter("search_build_seconds", build_time);
          rec.Counter("search_query_seconds", query_time);

          printed = {dataset.short_name,
                     std::to_string(coloring.num_colors),
                     std::to_string(cores.kmax + 1),
                     std::to_string(max_degree + 1),
                     TablePrinter::FormatDouble(mirror.correlation, 3),
                     std::to_string(onion.num_layers),
                     TablePrinter::FormatSeconds(build_time),
                     TablePrinter::FormatSeconds(query_time)};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: colors <= kmax+1 << delta+1 on skewed "
               "graphs; mirror correlation high except on uniform-density "
               "stand-ins; queries answer in micro-to-milliseconds "
               "(dominated by materializing the answer).\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_applications, corekit::bench::RunExtApplications);
COREKIT_BENCH_MAIN()
