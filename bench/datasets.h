// The benchmark dataset registry: synthetic stand-ins for the 10 public
// networks of Table III.
//
// The paper's datasets (SNAP / Network Repository, up to FriendSter with
// 1.8e9 edges) cannot ship inside this repository, so each gets a
// generated stand-in chosen to mimic its *character* — collaboration
// networks get high clustering and community structure, social networks
// get heavy-tailed degrees, Hollywood/Human-Jung get the extreme density
// and deep core hierarchies that dominate their rows in the evaluation —
// at a scale that runs on one machine in seconds.  Relative ordering by
// size follows Table III (AP smallest ... FS largest).
//
// COREKIT_BENCH_SCALE (float, default 1.0) multiplies all dataset sizes;
// raise it to stress larger inputs with the same harnesses.  Real SNAP
// files can be swapped in by pointing COREKIT_BENCH_DATA_DIR at a
// directory containing "<short_name>.txt" edge lists.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "corekit/corekit.h"

namespace corekit::bench {

struct BenchDataset {
  std::string short_name;  // the paper's column key: AP, G, D, ...
  std::string full_name;   // the original network it stands in for
  std::function<Graph()> make;
};

// The 10 stand-ins, in Table III order.
const std::vector<BenchDataset>& AllDatasets();

// A small prefix of AllDatasets() for the quick default run; the full set
// is used when COREKIT_BENCH_FULL=1.
std::vector<BenchDataset> ActiveDatasets();

// COREKIT_BENCH_SCALE env var (default 1.0, clamped to [0.05, 100]).
double BenchScale();

}  // namespace corekit::bench
