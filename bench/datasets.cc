#include "datasets.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace corekit::bench {

double BenchScale() {
  const char* env = std::getenv("COREKIT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double parsed = std::atof(env);
  return std::clamp(parsed > 0 ? parsed : 1.0, 0.05, 100.0);
}

namespace {

// Scales a vertex/edge count, keeping a sane floor.
VertexId ScaleN(double base) {
  return static_cast<VertexId>(std::max(64.0, base * BenchScale()));
}
EdgeId ScaleM(double base) {
  return static_cast<EdgeId>(std::max(128.0, base * BenchScale()));
}

// Social-network hybrid: planted communities (for positive modularity
// with an interior best-k, as the originals exhibit) overlaid with an
// R-MAT core (for the heavy degree tail and deep core hierarchy).
Graph SocialHybrid(const char* name, std::uint32_t scale, EdgeId rmat_edges,
                   VertexId community_size, double p_in) {
  const VertexId n = static_cast<VertexId>(1u) << scale;
  PlantedPartitionParams planted;
  planted.num_vertices = n;
  planted.num_communities = std::max<VertexId>(2, n / community_size);
  planted.p_in = p_in;
  planted.p_out = 0.0;  // the R-MAT overlay supplies the cross edges
  planted.seed = SeedFromString(std::string(name) + "-communities");
  RmatParams rmat;
  rmat.scale = scale;
  rmat.num_edges = rmat_edges;
  rmat.seed = SeedFromString(std::string(name) + "-overlay");

  GraphBuilder builder(n);
  builder.AddEdges(GeneratePlantedPartition(planted).graph.ToEdgeList());
  builder.AddEdges(GenerateRmat(rmat).ToEdgeList());
  return builder.Build();
}

std::vector<BenchDataset> BuildRegistry() {
  std::vector<BenchDataset> datasets;

  // AP — Astro-Ph: physics collaboration; strong clustering, small.
  datasets.push_back({"AP", "ca-AstroPh (collaboration)", [] {
                        return GenerateWattsStrogatz(ScaleN(6000), 8, 0.15,
                                                     SeedFromString("AP"));
                      }});

  // G — Gowalla: location-based social network; heavy tail with a real
  // core hierarchy (kmax 51 in the original).
  datasets.push_back({"G", "loc-Gowalla (social)", [] {
                        RmatParams params;
                        params.scale = 14;
                        params.num_edges = ScaleM(75000);
                        params.a = 0.55;
                        params.b = params.c = 0.2;
                        params.seed = SeedFromString("G");
                        return GenerateRmat(params);
                      }});

  // D — DBLP: co-authorship; planted communities (research groups) plus
  // a handful of large co-author cliques, which give DBLP its deep
  // degeneracy (kmax 113 in the original comes from one giant
  // multi-author paper).
  datasets.push_back({"D", "com-DBLP (collaboration)", [] {
                        PlantedPartitionParams params;
                        params.num_vertices = ScaleN(12000);
                        params.num_communities =
                            std::max<VertexId>(2, params.num_vertices / 150);
                        params.p_in = 0.12;
                        params.p_out = 6.0 / params.num_vertices;
                        params.seed = SeedFromString("D");
                        const Graph base =
                            GeneratePlantedPartition(params).graph;
                        GraphBuilder builder(base.NumVertices());
                        builder.AddEdges(base.ToEdgeList());
                        Rng rng(SeedFromString("D-cliques"));
                        for (const VertexId size : {20u, 28u, 36u, 45u}) {
                          if (size >= base.NumVertices()) continue;
                          const auto start = static_cast<VertexId>(
                              rng.NextBounded(base.NumVertices() - size));
                          for (VertexId u = start; u < start + size; ++u) {
                            for (VertexId v = u + 1; v < start + size; ++v) {
                              builder.AddEdge(u, v);
                            }
                          }
                        }
                        return builder.Build();
                      }});

  // Y — Youtube: sparse social network with extreme skew.
  datasets.push_back({"Y", "com-Youtube (social)", [] {
                        RmatParams params;
                        params.scale = 15;
                        params.num_edges = ScaleM(120000);
                        params.a = 0.6;
                        params.b = params.c = 0.18;
                        params.seed = SeedFromString("Y");
                        return GenerateRmat(params);
                      }});

  // AS — As-Skitter: internet topology; skewed, moderately dense.
  datasets.push_back({"AS", "as-Skitter (topology)", [] {
                        RmatParams params;
                        params.scale = 15;
                        params.num_edges = ScaleM(250000);
                        params.a = 0.57;
                        params.b = params.c = 0.19;
                        params.seed = SeedFromString("AS");
                        return GenerateRmat(params);
                      }});

  // LJ — LiveJournal: large social network with community structure and
  // a deep hierarchy.
  datasets.push_back({"LJ", "soc-LiveJournal (social)", [] {
                        return SocialHybrid("LJ", 16, ScaleM(250000), 100,
                                            0.08);
                      }});

  // H — Hollywood: actor collaboration, kmax 2208 in the original; the
  // onion generator gives the same deep-and-dense core hierarchy.
  datasets.push_back({"H", "hollywood-2009 (collaboration)", [] {
                        OnionParams params;
                        params.num_vertices = ScaleN(10000);
                        params.num_layers = 24;
                        // The innermost layer (~n / layers vertices) must
                        // host the top target degree, so cap the hierarchy
                        // depth at small COREKIT_BENCH_SCALE.
                        params.target_kmax = std::min<VertexId>(
                            120,
                            params.num_vertices / params.num_layers - 1);
                        params.seed = SeedFromString("H");
                        return GenerateOnion(params);
                      }});

  // O — Orkut: very dense social network (davg 76, kmax 253 in the
  // original) with strong communities.
  datasets.push_back({"O", "com-Orkut (social)", [] {
                        return SocialHybrid("O", 14, ScaleM(250000), 128,
                                            0.25);
                      }});

  // HJ — Human-Jung: brain network; extremely dense (davg 683 in the
  // original), nearly uniform.
  datasets.push_back({"HJ", "bn-Human-Jung (brain)", [] {
                        const VertexId n = ScaleN(3000);
                        return GenerateErdosRenyi(
                            n, std::min<EdgeId>(ScaleM(220000),
                                                static_cast<EdgeId>(n) *
                                                    (n - 1) / 2),
                            SeedFromString("HJ"));
                      }});

  // FS — FriendSter: the billion-edge giant; largest stand-in.
  datasets.push_back({"FS", "com-Friendster (social)", [] {
                        return SocialHybrid("FS", 17, ScaleM(500000), 80,
                                            0.08);
                      }});

  return datasets;
}

}  // namespace

const std::vector<BenchDataset>& AllDatasets() {
  static const std::vector<BenchDataset>& registry =
      // Leaked singleton, immune to destruction order.
      *new std::vector<BenchDataset>(  // corekit-lint: allow(naked-new)
          BuildRegistry());
  return registry;
}

std::vector<BenchDataset> ActiveDatasets() {
  // COREKIT_BENCH_DATASETS="AP,LJ" restricts the set (default: all 10).
  const char* env = std::getenv("COREKIT_BENCH_DATASETS");
  if (env == nullptr) return AllDatasets();
  const std::string filter(env);
  std::vector<BenchDataset> selected;
  for (const BenchDataset& dataset : AllDatasets()) {
    std::size_t pos = 0;
    bool found = false;
    while (pos < filter.size()) {
      std::size_t end = filter.find(',', pos);
      if (end == std::string::npos) end = filter.size();
      if (filter.substr(pos, end - pos) == dataset.short_name) found = true;
      pos = end + 1;
    }
    if (found) selected.push_back(dataset);
  }
  return selected.empty() ? AllDatasets() : selected;
}

}  // namespace corekit::bench
