// Table VIII: Opt-D vs CoreApp on densest subgraph, plus maximum-clique
// containment.
//
// Paper reference: Opt-D matches or beats CoreApp's output density
// (davg) on every dataset with comparable runtime, the maximum clique is
// contained in S* on 6/10 datasets, and |S*|/n is small (often < 1%).

#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  std::cout << "== Table VIII: Opt-D on densest subgraph & maximum clique "
               "==\n";
  TablePrinter table({"Dataset", "CoreApp davg", "CoreApp time",
                      "Opt-D davg", "Opt-D time", "MC in S*", "|S*|/n"});

  int contained_count = 0;
  int dataset_count = 0;
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const Graph graph = dataset.make();

    Timer timer;
    const DensestSubgraphResult core_app = CoreAppDensestSubgraph(graph);
    const double core_app_time = timer.ElapsedSeconds();

    timer.Reset();
    const DensestSubgraphResult opt_d = OptDDensestSubgraph(graph);
    const double opt_d_time = timer.ElapsedSeconds();

    const std::vector<VertexId> clique = FindMaximumClique(graph);
    std::vector<bool> in_s(graph.NumVertices(), false);
    for (const VertexId v : opt_d.vertices) in_s[v] = true;
    bool contained = !clique.empty();
    for (const VertexId v : clique) contained = contained && in_s[v];
    contained_count += contained ? 1 : 0;
    ++dataset_count;

    const double fraction = 100.0 *
                            static_cast<double>(opt_d.vertices.size()) /
                            static_cast<double>(graph.NumVertices());
    table.AddRow({dataset.short_name,
                  TablePrinter::FormatDouble(core_app.average_degree, 3),
                  TablePrinter::FormatSeconds(core_app_time),
                  TablePrinter::FormatDouble(opt_d.average_degree, 3),
                  TablePrinter::FormatSeconds(opt_d_time),
                  contained ? "yes" : "no",
                  TablePrinter::FormatDouble(fraction, 2) + "%"});
  }
  table.Print(std::cout);

  std::cout << "\nMC contained in S* on " << contained_count << "/"
            << dataset_count
            << " datasets (paper: 6/10).\nExpected shape (paper): Opt-D "
               "davg >= CoreApp davg on every dataset; |S*|/n mostly "
               "within a few percent.\n";
  return 0;
}
