// Table VIII: Opt-D vs CoreApp on densest subgraph, plus maximum-clique
// containment.
//
// Paper reference: Opt-D matches or beats CoreApp's output density
// (davg) on every dataset with comparable runtime, the maximum clique is
// contained in S* on 6/10 datasets, and |S*|/n is small (often < 1%).

#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunTable8(BenchRunner& run) {
  std::cout << "== Table VIII: Opt-D on densest subgraph & maximum clique "
               "==\n";
  TablePrinter table({"Dataset", "CoreApp davg", "CoreApp time",
                      "Opt-D davg", "Opt-D time", "MC in S*", "|S*|/n"});

  int contained_count = 0;
  int dataset_count = 0;
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    bool contained = false;
    const CaseResult* result = run.Case(
        {"table8/" + dataset.short_name, {"paper"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();

          Timer timer;
          const DensestSubgraphResult core_app =
              CoreAppDensestSubgraph(graph);
          const double core_app_time = timer.ElapsedSeconds();

          timer.Reset();
          const DensestSubgraphResult opt_d = OptDDensestSubgraph(graph);
          const double opt_d_time = timer.ElapsedSeconds();

          const std::vector<VertexId> clique = FindMaximumClique(graph);
          std::vector<bool> in_s(graph.NumVertices(), false);
          for (const VertexId v : opt_d.vertices) in_s[v] = true;
          contained = !clique.empty();
          for (const VertexId v : clique) contained = contained && in_s[v];

          rec.SetSeconds(opt_d_time);
          rec.Counter("core_app_seconds", core_app_time);
          rec.Counter("core_app_davg", core_app.average_degree);
          rec.Counter("opt_d_davg", opt_d.average_degree);
          rec.Counter("opt_d_size",
                      static_cast<double>(opt_d.vertices.size()));
          rec.Counter("clique_size", static_cast<double>(clique.size()));
          rec.Counter("clique_contained", contained ? 1.0 : 0.0);

          const double fraction =
              100.0 * static_cast<double>(opt_d.vertices.size()) /
              static_cast<double>(graph.NumVertices());
          printed = {dataset.short_name,
                     TablePrinter::FormatDouble(core_app.average_degree, 3),
                     TablePrinter::FormatSeconds(core_app_time),
                     TablePrinter::FormatDouble(opt_d.average_degree, 3),
                     TablePrinter::FormatSeconds(opt_d_time),
                     contained ? "yes" : "no",
                     TablePrinter::FormatDouble(fraction, 2) + "%"};
        });
    if (result == nullptr) continue;
    contained_count += contained ? 1 : 0;
    ++dataset_count;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);

  std::cout << "\nMC contained in S* on " << contained_count << "/"
            << dataset_count
            << " datasets (paper: 6/10).\nExpected shape (paper): Opt-D "
               "davg >= CoreApp davg on every dataset; |S*|/n mostly "
               "within a few percent.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(table8_densest_clique, corekit::bench::RunTable8);
COREKIT_BENCH_MAIN()
