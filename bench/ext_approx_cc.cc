// Extension bench: approximate vs exact triangle statistics.
//
// The exact Algorithm 3 path is the paper's O(m^1.5) bottleneck (the cc
// columns of Figure 7).  Wedge sampling estimates the same global
// clustering coefficient in milliseconds with a quantified error; the
// table reports speed and relative error per dataset, per sample budget.

#include <cmath>
#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtApproxCc(BenchRunner& run) {
  std::cout << "== Extension: wedge-sampling approximation of the "
               "clustering coefficient ==\n";
  TablePrinter table({"Dataset", "exact cc", "exact time", "cc@10k",
                      "err@10k", "cc@100k", "err@100k", "approx time"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_approx_cc/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          const CoreDecomposition cores = ComputeCoreDecomposition(graph);
          const OrderedGraph ordered(graph, cores);

          Timer timer;
          const auto triangles = static_cast<double>(CountTriangles(ordered));
          const auto triplets = static_cast<double>(CountTriplets(graph));
          const double exact_time = timer.ElapsedSeconds();
          const double exact_cc =
              triplets == 0 ? 0.0 : 3.0 * triangles / triplets;

          timer.Reset();
          const ApproxTriangleStats coarse = EstimateTriangles(
              graph, 10000, SeedFromString(dataset.short_name));
          const ApproxTriangleStats fine = EstimateTriangles(
              graph, 100000, SeedFromString(dataset.short_name) + 1);
          const double approx_time = timer.ElapsedSeconds();

          auto cc_of = [&](const ApproxTriangleStats& stats) {
            return stats.triplets == 0
                       ? 0.0
                       : 3.0 * stats.triangles /
                             static_cast<double>(stats.triplets);
          };
          auto rel_err = [&](double estimate) {
            return exact_cc == 0.0 ? 0.0
                                   : std::abs(estimate - exact_cc) / exact_cc;
          };

          rec.SetSeconds(exact_time);
          rec.Counter("exact_cc", exact_cc);
          rec.Counter("approx_seconds", approx_time);
          rec.Counter("rel_err_10k", rel_err(cc_of(coarse)));
          rec.Counter("rel_err_100k", rel_err(cc_of(fine)));

          printed = {
              dataset.short_name,
              TablePrinter::FormatDouble(exact_cc, 5),
              TablePrinter::FormatSeconds(exact_time),
              TablePrinter::FormatDouble(cc_of(coarse), 5),
              TablePrinter::FormatDouble(100 * rel_err(cc_of(coarse)), 2) +
                  "%",
              TablePrinter::FormatDouble(cc_of(fine), 5),
              TablePrinter::FormatDouble(100 * rel_err(cc_of(fine)), 2) + "%",
              TablePrinter::FormatSeconds(approx_time)};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: ~1% error at 100k samples at a fraction "
               "of the exact cost; error shrinks ~1/sqrt(samples).\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_approx_cc, corekit::bench::RunExtApproxCc);
COREKIT_BENCH_MAIN()
