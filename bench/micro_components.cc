// Component micro-benchmarks (google-benchmark): per-stage costs of the
// pipeline — decomposition, ordering, forest, and the four scoring paths —
// swept over graph size to expose the O(m) / O(m^1.5) scaling the paper's
// complexity analysis claims.

#include <benchmark/benchmark.h>

#include "corekit/corekit.h"

namespace {

using namespace corekit;

Graph MakeGraph(std::int64_t scale) {
  RmatParams params;
  params.scale = static_cast<std::uint32_t>(scale);
  params.num_edges = static_cast<EdgeId>(8) << scale;  // davg ~16
  params.seed = 42;
  return GenerateRmat(params);
}

void BM_CoreDecomposition(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCoreDecomposition(graph));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_CoreDecomposition)->DenseRange(12, 16, 2);

void BM_VertexOrdering(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  for (auto _ : state) {
    const OrderedGraph ordered(graph, cores);
    benchmark::DoNotOptimize(&ordered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_VertexOrdering)->DenseRange(12, 16, 2);

void BM_ForestConstruction(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  for (auto _ : state) {
    const CoreForest forest(graph, cores);
    benchmark::DoNotOptimize(&forest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_ForestConstruction)->DenseRange(12, 16, 2);

void BM_ScoreCoreSetBasic(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindBestCoreSet(ordered, Metric::kAverageDegree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumVertices()));
}
BENCHMARK(BM_ScoreCoreSetBasic)->DenseRange(12, 16, 2);

void BM_ScoreCoreSetTriangles(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindBestCoreSet(ordered, Metric::kClusteringCoefficient));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_ScoreCoreSetTriangles)->DenseRange(12, 16, 2);

void BM_ScoreSingleCores(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindBestSingleCore(ordered, forest, Metric::kAverageDegree));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumVertices()));
}
BENCHMARK(BM_ScoreSingleCores)->DenseRange(12, 16, 2);

void BM_TriangleCounting(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(ordered));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_TriangleCounting)->DenseRange(12, 16, 2);

void BM_GraphBuild(benchmark::State& state) {
  const Graph graph = MakeGraph(state.range(0));
  const EdgeList edges = graph.ToEdgeList();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GraphBuilder::FromEdges(graph.NumVertices(), edges));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_GraphBuild)->DenseRange(12, 16, 2);

}  // namespace

BENCHMARK_MAIN();
