// Table III: statistics of the (stand-in) datasets — n, m, davg, kmax.
//
// Paper reference (original networks):
//   Astro-Ph 18.8k/198k davg 21.1 kmax 56 ... FriendSter 65.6M/1.8B
//   davg 55.1 kmax 304.
// The stand-ins reproduce the *ordering* by size and the qualitative
// spread of density and degeneracy at laptop scale.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  std::cout << "== Table III: statistics of datasets (synthetic stand-ins, "
               "scale="
            << BenchScale() << ") ==\n";
  TablePrinter table(
      {"Dataset", "stands in for", "n", "m", "davg", "kmax", "components"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const Graph graph = dataset.make();
    const GraphStats stats = ComputeGraphStats(graph);
    table.AddRow({dataset.short_name, dataset.full_name,
                  std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  TablePrinter::FormatDouble(stats.average_degree, 1),
                  std::to_string(stats.degeneracy),
                  std::to_string(stats.num_components)});
  }
  table.Print(std::cout);
  return 0;
}
