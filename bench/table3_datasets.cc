// Table III: statistics of the (stand-in) datasets — n, m, davg, kmax.
//
// Paper reference (original networks):
//   Astro-Ph 18.8k/198k davg 21.1 kmax 56 ... FriendSter 65.6M/1.8B
//   davg 55.1 kmax 304.
// The stand-ins reproduce the *ordering* by size and the qualitative
// spread of density and degeneracy at laptop scale.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunTable3(BenchRunner& run) {
  std::cout << "== Table III: statistics of datasets (synthetic stand-ins, "
               "scale="
            << BenchScale() << ") ==\n";
  TablePrinter table(
      {"Dataset", "stands in for", "n", "m", "davg", "kmax", "components"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    GraphStats stats;
    const CaseResult* result = run.Case(
        {"table3/" + dataset.short_name,
         SuitesPlusSmoke("paper", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          Timer timer;
          stats = ComputeGraphStats(graph);
          rec.SetSeconds(timer.ElapsedSeconds());
          rec.Counter("n", static_cast<double>(stats.num_vertices));
          rec.Counter("m", static_cast<double>(stats.num_edges));
          rec.Counter("davg", stats.average_degree);
          rec.Counter("kmax", static_cast<double>(stats.degeneracy));
          rec.Counter("components",
                      static_cast<double>(stats.num_components));
        });
    if (result == nullptr) continue;
    table.AddRow({dataset.short_name, dataset.full_name,
                  std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  TablePrinter::FormatDouble(stats.average_degree, 1),
                  std::to_string(stats.degeneracy),
                  std::to_string(stats.num_components)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(table3_datasets, corekit::bench::RunTable3);
COREKIT_BENCH_MAIN()
