// Extension bench: compressed CSR storage and the SIMD intersection
// kernels.
//
// Two measurements per dataset.  First, storage: the group-varint
// delta-encoded CSR versus the plain arrays, reported as bytes per
// undirected edge (what a .ckg file of each flavor stores for the
// adjacency).  Second, compute: the triangle-count pass over the rank
// arrays — the hottest intersection consumer — pinned to the scalar
// kernel and then to the dispatched kernel (AVX2 where the CPU has
// it), with the speedup column.  Both kernels are exact, so the
// triangle totals must agree bitwise; only the seconds may differ.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtCompression(BenchRunner& run) {
  std::cout << "== Extension: compressed CSR + SIMD intersection kernels ("
            << simd::IsaName(simd::ActiveIsa()) << " dispatch) ==\n";
  TablePrinter table({"Dataset", "n", "m", "plain B/e", "ckg B/e", "ratio",
                      "scalar", simd::CpuSupportsAvx2() ? "avx2" : "scalar2",
                      "speedup"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const CaseOptions encode_options{
        "compression/encode/" + dataset.short_name,
        SuitesPlusSmoke("ext", dataset.short_name)};
    const CaseOptions scalar_options{
        "compression/intersect_scalar/" + dataset.short_name,
        SuitesPlusSmoke("ext", dataset.short_name)};
    const CaseOptions simd_options{
        "compression/intersect_simd/" + dataset.short_name,
        SuitesPlusSmoke("ext", dataset.short_name)};
    if (!run.ShouldRun(encode_options) && !run.ShouldRun(scalar_options) &&
        !run.ShouldRun(simd_options)) {
      continue;
    }

    const Graph graph = dataset.make();
    const double m = static_cast<double>(graph.NumEdges());
    const double plain_bytes =
        static_cast<double>(graph.Offsets().size_bytes() +
                            graph.NeighborArray().size_bytes());

    double compressed_per_edge = 0.0;
    const CaseResult* encode = run.Case(encode_options, [&](CaseRecorder& rec) {
      Timer timer;
      const CompressedCsr csr = CompressedCsr::FromGraph(graph);
      rec.SetSeconds(timer.ElapsedSeconds());
      COREKIT_CHECK(csr.NumEdges() == graph.NumEdges());
      compressed_per_edge = csr.BytesPerEdge();
      rec.Counter("n", static_cast<double>(graph.NumVertices()));
      rec.Counter("m", m);
      rec.Counter("plain_bytes", plain_bytes);
      rec.Counter("compressed_bytes", static_cast<double>(csr.TotalBytes()));
    });

    // Shared substrate for both kernel cases; built outside the timed
    // bodies so only the triangle pass is measured.
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);

    std::uint64_t scalar_triangles = 0;
    double scalar_seconds = 0.0;
    const CaseResult* scalar = run.Case(scalar_options, [&](CaseRecorder& rec) {
      simd::SetIsaForTesting(simd::IsaLevel::kScalar);
      Timer timer;
      scalar_triangles = CountTriangles(ordered);
      rec.SetSeconds(timer.ElapsedSeconds());
      simd::ResetIsaForTesting();
      rec.Counter("triangles", static_cast<double>(scalar_triangles));
    });
    if (scalar != nullptr) scalar_seconds = scalar->seconds_min;

    double simd_seconds = 0.0;
    const CaseResult* dispatched =
        run.Case(simd_options, [&](CaseRecorder& rec) {
          if (simd::CpuSupportsAvx2()) {
            simd::SetIsaForTesting(simd::IsaLevel::kAvx2);
          }
          Timer timer;
          const std::uint64_t triangles = CountTriangles(ordered);
          rec.SetSeconds(timer.ElapsedSeconds());
          simd::ResetIsaForTesting();
          if (scalar_triangles != 0) {
            COREKIT_CHECK(triangles == scalar_triangles);
          }
          rec.Counter("triangles", static_cast<double>(triangles));
        });
    if (dispatched != nullptr) simd_seconds = dispatched->seconds_min;

    if (encode == nullptr && scalar == nullptr && dispatched == nullptr) {
      continue;
    }
    std::string speedup = "-";
    if (scalar_seconds > 0 && simd_seconds > 0) {
      speedup = TablePrinter::FormatDouble(scalar_seconds / simd_seconds, 2) +
                "x";
    }
    const double plain_per_edge = m > 0 ? plain_bytes / m : 0.0;
    table.AddRow(
        {dataset.short_name, std::to_string(graph.NumVertices()),
         std::to_string(graph.NumEdges()),
         TablePrinter::FormatDouble(plain_per_edge, 2),
         compressed_per_edge > 0
             ? TablePrinter::FormatDouble(compressed_per_edge, 2)
             : "-",
         compressed_per_edge > 0
             ? TablePrinter::FormatDouble(plain_per_edge / compressed_per_edge,
                                          2) +
                   "x"
             : "-",
         scalar_seconds > 0 ? TablePrinter::FormatSeconds(scalar_seconds)
                            : "-",
         simd_seconds > 0 ? TablePrinter::FormatSeconds(simd_seconds) : "-",
         std::move(speedup)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: ckg B/e beats plain on every dataset "
               "(the gap widens with average degree); the kernel speedup "
               "needs AVX2 hardware — on machines without it both kernel "
               "columns run the scalar path and the ratio sits near 1x.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_compression, corekit::bench::RunExtCompression);
COREKIT_BENCH_MAIN()
