// Extension bench: the alternative decomposition substrates.
//
//   * distributed ([43]): rounds to convergence and messages of the
//     h-index protocol vs the centralized O(m) peel;
//   * semi-external ([61]): passes over the on-disk graph, bytes
//     streamed, and runtime with O(n) memory vs in-memory.
//
// Both produce the exact coreness; the table verifies that and reports
// their costs per dataset.

#include <cstdio>
#include <iostream>
#include <string>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtSubstrates(BenchRunner& run) {
  std::cout << "== Extension: distributed [43] and semi-external [61] core "
               "decomposition ==\n";
  TablePrinter table({"Dataset", "in-mem", "dist rounds", "dist msgs",
                      "dist time", "ext passes", "ext MB read", "ext time",
                      "exact"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_substrates/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();

          Timer timer;
          const CoreDecomposition exact = ComputeCoreDecomposition(graph);
          const double exact_time = timer.ElapsedSeconds();

          timer.Reset();
          const DistributedCoreResult distributed =
              ComputeCoreDecompositionDistributed(graph);
          const double distributed_time = timer.ElapsedSeconds();

          const std::string path =
              "/tmp/corekit_bench_" + dataset.short_name + ".bin";
          const Status write_status = WriteBinaryGraph(graph, path);
          COREKIT_CHECK(write_status.ok()) << write_status.ToString();
          timer.Reset();
          const auto external = SemiExternalCoreDecomposition(path);
          const double external_time = timer.ElapsedSeconds();
          COREKIT_CHECK(external.ok()) << external.status().ToString();
          std::remove(path.c_str());

          const bool all_exact = distributed.converged &&
                                 distributed.coreness == exact.coreness &&
                                 external->coreness == exact.coreness;

          rec.SetSeconds(exact_time);
          rec.Counter("distributed_seconds", distributed_time);
          rec.Counter("distributed_rounds",
                      static_cast<double>(distributed.rounds));
          rec.Counter("distributed_messages",
                      static_cast<double>(distributed.messages));
          rec.Counter("external_seconds", external_time);
          rec.Counter("external_passes",
                      static_cast<double>(external->passes));
          rec.Counter("external_bytes_read",
                      static_cast<double>(external->bytes_read));
          rec.Counter("all_exact", all_exact ? 1.0 : 0.0);

          printed = {dataset.short_name,
                     TablePrinter::FormatSeconds(exact_time),
                     std::to_string(distributed.rounds),
                     std::to_string(distributed.messages),
                     TablePrinter::FormatSeconds(distributed_time),
                     std::to_string(external->passes),
                     TablePrinter::FormatDouble(
                         static_cast<double>(external->bytes_read) / 1e6, 1),
                     TablePrinter::FormatSeconds(external_time),
                     all_exact ? "yes" : "NO"};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape ([43], [61]): both reach the exact "
               "coreness; distributed rounds stay far below n (estimate "
               "locality); semi-external converges in a handful of "
               "sequential passes.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_substrates, corekit::bench::RunExtSubstrates);
COREKIT_BENCH_MAIN()
