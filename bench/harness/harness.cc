#include "harness.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "corekit/util/logging.h"
#include "corekit/util/timer.h"
#include "datasets.h"
#include "runtime_common.h"

namespace corekit::bench {

namespace {

std::vector<BenchUnit>& MutableRegistry() {
  // Leaked singleton: registrars run during static init, possibly before
  // any other static in this TU.
  static std::vector<BenchUnit>& units =
      *new std::vector<BenchUnit>();  // corekit-lint: allow(naked-new)
  return units;
}

double Median(std::vector<double> values) {
  COREKIT_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

Json StageRecordJson(const StageRecord& record) {
  Json stage = Json::Object();
  stage.Set("name", record.name);
  // Explicit loads: the counters are atomics, and atomic -> Json would
  // need two user-defined conversions.
  stage.Set("builds", record.builds.load());
  stage.Set("hits", record.hits.load());
  stage.Set("patches", record.patches.load());
  stage.Set("seconds", record.seconds.load());
  stage.Set("bytes", record.bytes.load());
  stage.Set("threads", static_cast<std::uint64_t>(record.threads.load()));
  return stage;
}

Json CaseJson(const CaseResult& result) {
  Json c = Json::Object();
  c.Set("name", result.name);
  c.Set("unit", result.unit);
  Json suites = Json::Array();
  for (const std::string& suite : result.suites) suites.Append(suite);
  c.Set("suites", std::move(suites));
  c.Set("warmup", result.warmup);
  c.Set("repeats", result.repeats);
  Json samples = Json::Array();
  for (const double sample : result.samples) samples.Append(sample);
  c.Set("seconds", std::move(samples));
  c.Set("seconds_min", result.seconds_min);
  c.Set("seconds_median", result.seconds_median);
  c.Set("rss_peak_bytes", result.rss_peak_bytes);
  Json counters = Json::Object();
  for (const auto& [key, value] : result.counters) counters.Set(key, value);
  c.Set("counters", std::move(counters));
  Json stages = Json::Array();
  for (const StageRecord& record : result.stages) {
    stages.Append(StageRecordJson(record));
  }
  c.Set("stages", std::move(stages));
  return c;
}

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite NAME] [--out PATH] [--only SUBSTR]\n"
      "          [--repeats N] [--warmup N] [--threads N] [--list] [--help]\n"
      "\n"
      "  --suite NAME   run only cases tagged NAME (smoke|paper|ext) and\n"
      "                 write BENCH_NAME.json (unless --out overrides)\n"
      "  --out PATH     write the BENCH JSON to PATH; merges with an\n"
      "                 existing report of the same suite by case name\n"
      "  --only SUBSTR  run only units whose name contains SUBSTR\n"
      "  --repeats N    timed runs per case (default 1; min/median are\n"
      "                 aggregated across them)\n"
      "  --warmup N     untimed runs per case before timing (default 0)\n"
      "  --threads N    worker threads for parallel cases (default:\n"
      "                 COREKIT_BENCH_THREADS, else hardware concurrency)\n"
      "  --list         list registered units and exit\n",
      argv0);
}

// 0 = no --threads override; BenchThreads() falls back to the env var /
// hardware count.
std::uint32_t g_bench_threads_override = 0;

}  // namespace

void CaseRecorder::Counter(std::string_view key, double value) {
  for (auto& [existing, stored] : counters_) {
    if (existing == key) {
      stored = value;
      return;
    }
  }
  counters_.emplace_back(std::string(key), value);
}

void CaseRecorder::EngineStages(const CoreEngine& engine) {
  stages_ = engine.stats().records();
}

bool BenchRunner::ShouldRun(const CaseOptions& options) const {
  if (config_.suite.empty()) return true;
  return std::find(options.suites.begin(), options.suites.end(),
                   config_.suite) != options.suites.end();
}

const CaseResult* BenchRunner::Case(
    const CaseOptions& options,
    const std::function<void(CaseRecorder&)>& body) {
  if (!ShouldRun(options)) return nullptr;
  const int warmup = std::max(0, config_.warmup);
  const int repeats = std::max(1, config_.repeats);
  for (int i = 0; i < warmup; ++i) {
    CaseRecorder discard;
    body(discard);
  }
  CaseResult result;
  result.name = options.name;
  result.unit = current_unit_;
  result.suites = options.suites;
  result.warmup = warmup;
  result.repeats = repeats;
  for (int i = 0; i < repeats; ++i) {
    CaseRecorder recorder;
    Timer timer;
    body(recorder);
    const double wall = timer.ElapsedSeconds();
    result.samples.push_back(recorder.seconds_.value_or(wall));
    // Counters and stages describe one run of the body; keep the last.
    result.counters = std::move(recorder.counters_);
    result.stages = std::move(recorder.stages_);
  }
  result.seconds_min =
      *std::min_element(result.samples.begin(), result.samples.end());
  result.seconds_median = Median(result.samples);
  result.rss_peak_bytes = PeakRssBytes();
  results_.push_back(std::move(result));
  return &results_.back();
}

std::vector<BenchUnit> RegisteredUnits() {
  std::vector<BenchUnit> units = MutableRegistry();
  std::sort(units.begin(), units.end(),
            [](const BenchUnit& a, const BenchUnit& b) {
              return a.name < b.name;
            });
  return units;
}

UnitRegistrar::UnitRegistrar(const char* name, BenchUnitFn fn) {
  MutableRegistry().push_back(BenchUnit{name, fn});
}

std::uint32_t BenchThreads() {
  if (g_bench_threads_override != 0) return g_bench_threads_override;
  if (const char* env = std::getenv("COREKIT_BENCH_THREADS");
      env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return static_cast<std::uint32_t>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void SetBenchThreads(std::uint32_t threads) {
  g_bench_threads_override = threads;
}

Json CaptureEnvironmentJson() {
  Json env = Json::Object();
  env.Set("cpu_count",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  env.Set("threads", static_cast<std::uint64_t>(BenchThreads()));
  env.Set("bench_scale", BenchScale());
  env.Set("bench_budget", BaselineBudgetSeconds());
  const char* datasets_filter = std::getenv("COREKIT_BENCH_DATASETS");
  env.Set("datasets_filter",
          datasets_filter != nullptr ? datasets_filter : "");
  const char* sha_env = std::getenv("COREKIT_GIT_SHA");
#ifdef COREKIT_GIT_SHA
  const char* sha_build = COREKIT_GIT_SHA;
#else
  const char* sha_build = "unknown";
#endif
  env.Set("git_sha", sha_env != nullptr ? sha_env : sha_build);
#ifdef COREKIT_BUILD_TYPE
  env.Set("build_type", COREKIT_BUILD_TYPE);
#else
  env.Set("build_type", "unknown");
#endif
  env.Set("stage_stats_schema_version", kStageStatsSchemaVersion);
  return env;
}

std::uint64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
}

Json BenchReportJson(const std::string& suite_label,
                     const std::deque<CaseResult>& results,
                     const Json* previous) {
  Json report = Json::Object();
  report.Set("schema_version", kBenchSchemaVersion);
  report.Set("suite", suite_label);
  report.Set("environment", CaptureEnvironmentJson());

  // Merge: previous cases first (in their order), each overwritten by a
  // fresh result of the same name; new names append.
  std::vector<std::pair<std::string, Json>> merged;
  auto find_fresh = [&results](std::string_view name) -> const CaseResult* {
    for (const CaseResult& result : results) {
      if (result.name == name) return &result;
    }
    return nullptr;
  };
  if (previous != nullptr && previous->is_object() &&
      previous->NumberOr("schema_version", -1) == kBenchSchemaVersion &&
      previous->StringOr("suite", "") == suite_label) {
    if (const Json* old_cases = previous->Find("cases");
        old_cases != nullptr && old_cases->is_array()) {
      for (const Json& old_case : old_cases->items()) {
        if (!old_case.is_object()) continue;
        const std::string name = old_case.StringOr("name", "");
        if (name.empty()) continue;
        const CaseResult* fresh = find_fresh(name);
        merged.emplace_back(name,
                            fresh != nullptr ? CaseJson(*fresh) : old_case);
      }
    }
  }
  for (const CaseResult& result : results) {
    const bool already = std::any_of(
        merged.begin(), merged.end(),
        [&result](const auto& entry) { return entry.first == result.name; });
    if (!already) merged.emplace_back(result.name, CaseJson(result));
  }

  Json cases = Json::Array();
  for (auto& [name, value] : merged) cases.Append(std::move(value));
  report.Set("cases", std::move(cases));
  return report;
}

int BenchMain(int argc, char** argv) {
  BenchConfig config;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value_of = [&](std::string_view flag,
                        std::string* out) -> bool {
      if (arg == flag) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                       std::string(flag).c_str());
          std::exit(2);
        }
        *out = argv[++i];
        return true;
      }
      if (arg.size() > flag.size() + 1 &&
          arg.substr(0, flag.size()) == flag && arg[flag.size()] == '=') {
        *out = std::string(arg.substr(flag.size() + 1));
        return true;
      }
      return false;
    };
    std::string value;
    if (value_of("--suite", &value)) {
      config.suite = value;
    } else if (value_of("--out", &value)) {
      config.out_path = value;
    } else if (value_of("--only", &value)) {
      config.only = value;
    } else if (value_of("--repeats", &value)) {
      config.repeats = std::max(1, std::atoi(value.c_str()));
    } else if (value_of("--warmup", &value)) {
      config.warmup = std::max(0, std::atoi(value.c_str()));
    } else if (value_of("--threads", &value)) {
      SetBenchThreads(
          static_cast<std::uint32_t>(std::max(0, std::atoi(value.c_str()))));
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   std::string(arg).c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  const std::vector<BenchUnit> units = RegisteredUnits();
  if (list_only) {
    for (const BenchUnit& unit : units) {
      std::printf("%s\n", unit.name.c_str());
    }
    return 0;
  }

  BenchRunner runner(config);
  for (const BenchUnit& unit : units) {
    if (!config.only.empty() &&
        unit.name.find(config.only) == std::string::npos) {
      continue;
    }
    runner.set_current_unit(unit.name);
    unit.fn(runner);
  }

  std::string out_path = config.out_path;
  if (out_path.empty() && !config.suite.empty()) {
    out_path = "BENCH_" + config.suite + ".json";
  }
  if (out_path.empty()) return 0;  // plain table run, no JSON requested

  const std::string suite_label =
      config.suite.empty() ? "all" : config.suite;
  Json previous;
  bool have_previous = false;
  if (std::ifstream in(out_path); in.good()) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<Json> parsed = Json::Parse(buffer.str());
    if (parsed.ok()) {
      previous = std::move(parsed).value();
      have_previous = true;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring unparseable existing report %s: %s\n",
                   out_path.c_str(),
                   parsed.status().message().c_str());
    }
  }
  const Json report = BenchReportJson(
      suite_label, runner.results(), have_previous ? &previous : nullptr);

  std::ofstream out(out_path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  out << report.Dump() << '\n';
  out.close();
  if (!out.good()) {
    std::fprintf(stderr, "error: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "BENCH: wrote %s (%zu case(s) this run, suite %s)\n",
               out_path.c_str(), runner.results().size(),
               suite_label.c_str());
  return 0;
}

std::vector<std::string> SuitesPlusSmoke(const char* base,
                                         const std::string& dataset) {
  std::vector<std::string> suites{base};
  if (dataset == "AP" || dataset == "G") suites.emplace_back("smoke");
  return suites;
}

}  // namespace corekit::bench
