// The unified benchmark runner: every bench unit in bench/ is linked in
// (compiled without COREKIT_BENCH_STANDALONE, so their COREKIT_BENCH_MAIN()
// expands to nothing) and this file supplies the single entry point.
//
//   bench_runner --list
//   bench_runner --suite smoke --repeats 3 --warmup 1 --out BENCH_smoke.json
//   bench_runner --suite paper --only fig7

#include "harness.h"

int main(int argc, char** argv) {
  return corekit::bench::BenchMain(argc, argv);
}
