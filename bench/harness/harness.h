// The unified benchmark runner every bench binary registers into.
//
// The paper's claims are quantitative (O(m) best-k scoring vs the
// O(m·kmax) baseline, Figures 7/8); the human-readable tables the bench
// binaries print cannot be regression-tested.  This harness adds the
// machine-readable layer: each binary is a *unit* (COREKIT_BENCH_UNIT)
// whose body registers named *cases* tagged with suites ("smoke",
// "paper", "ext").  The harness runs each case warmup+repeat times,
// aggregates min/median wall seconds, samples peak RSS, lifts per-stage
// timings from CoreEngine::StageStats, captures the run environment
// (CPU count, COREKIT_BENCH_SCALE, git sha, build type), and emits a
// schema-versioned BENCH_<suite>.json next to the human tables.
//
//   void RunFig7(BenchRunner& run) {
//     for (const BenchDataset& dataset : ActiveDatasets()) {
//       Row row;
//       const CaseResult* r = run.Case(
//           {"fig7/" + dataset.short_name,
//            SuitesPlusSmoke("paper", dataset.short_name)},
//           [&](CaseRecorder& rec) {
//             const Graph graph = dataset.make();  // fresh per repeat
//             CoreEngine engine(graph);
//             ...
//             rec.SetSeconds(optimal_path_seconds);
//             rec.Counter("m", graph.NumEdges());
//             rec.EngineStages(engine);
//           });
//       if (r != nullptr) table.AddRow(...);  // nullptr: suite-filtered
//     }
//   }
//   COREKIT_BENCH_UNIT(fig7_runtime_coreset, RunFig7)
//   COREKIT_BENCH_MAIN()
//
// Case bodies MUST be self-contained and re-runnable (build their own
// graphs/engines/indexes); the harness calls them once per warmup and
// once per repeat.  tools/bench_diff compares two emitted JSON files and
// gates CI on regressions; EXPERIMENTS.md documents the schema.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corekit/engine/core_engine.h"
#include "corekit/engine/stage_stats.h"
#include "corekit/util/json.h"

namespace corekit::bench {

// Version of the BENCH_<suite>.json layout.  Bump on any rename of a
// field key; bench_diff refuses to compare mismatched versions.
inline constexpr int kBenchSchemaVersion = 1;

struct CaseOptions {
  // Unique across every bench unit, conventionally "<figure>/<dataset>"
  // ("fig7/LJ", "ext_dynamic/AP", "ablation/s16").
  std::string name;
  // Suites this case belongs to; {"paper"}, {"ext"}, or either plus
  // "smoke" for the CI perf-smoke subset.
  std::vector<std::string> suites;
};

// Handed to the case body on every (warmup or timed) run.
class CaseRecorder {
 public:
  // Overrides the sample the harness aggregates.  Without this the
  // sample is the wall time of the whole body — which includes dataset
  // generation, so benches that measure a specific phase must call it.
  void SetSeconds(double seconds) { seconds_ = seconds; }

  // Free-form numeric fact attached to the case (n, m, kmax, speedup,
  // per-metric timings...).  Re-recording a key overwrites it; the last
  // timed repeat's counters are the ones serialized.
  void Counter(std::string_view key, double value);

  // Copies the engine's per-stage records (build/hit counters, wall
  // seconds, bytes, threads) into the case.
  void EngineStages(const CoreEngine& engine);

 private:
  friend class BenchRunner;
  std::optional<double> seconds_;
  std::vector<std::pair<std::string, double>> counters_;
  std::vector<StageRecord> stages_;
};

struct CaseResult {
  std::string name;
  std::string unit;  // registering unit ("fig7_runtime_coreset")
  std::vector<std::string> suites;
  int warmup = 0;
  int repeats = 1;
  std::vector<double> samples;  // seconds, one per timed repeat
  double seconds_min = 0.0;
  double seconds_median = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<StageRecord> stages;
  // Process peak RSS observed when the case finished (monotonic across
  // the run; meaningful as "the high-water mark up to and including this
  // case").
  std::uint64_t rss_peak_bytes = 0;
};

struct BenchConfig {
  // Run only cases tagged with this suite; empty runs everything.
  std::string suite;
  // Explicit JSON output path; empty derives BENCH_<suite>.json from the
  // suite (and writes nothing when no suite is selected either).
  std::string out_path;
  // Substring filter on unit names (bench_runner --only fig7).
  std::string only;
  int repeats = 1;
  int warmup = 0;
};

class BenchRunner {
 public:
  explicit BenchRunner(BenchConfig config) : config_(std::move(config)) {}

  const BenchConfig& config() const { return config_; }

  // Whether `options` passes the suite filter (useful to skip expensive
  // shared setup when every case of a loop is filtered out).
  bool ShouldRun(const CaseOptions& options) const;

  // Runs `body` config().warmup times untimed, then config().repeats
  // times timed, and records the aggregated case.  Returns the stored
  // result (valid for the runner's lifetime), or nullptr when the case
  // is suite-filtered — callers skip their table row then.
  const CaseResult* Case(const CaseOptions& options,
                         const std::function<void(CaseRecorder&)>& body);

  const std::deque<CaseResult>& results() const { return results_; }

  // Set by BenchMain before invoking each unit.
  void set_current_unit(std::string name) { current_unit_ = std::move(name); }

 private:
  BenchConfig config_;
  std::string current_unit_;
  // deque: pointers returned by Case() stay valid as cases accumulate.
  std::deque<CaseResult> results_;
};

// --- Unit registry ----------------------------------------------------------

using BenchUnitFn = void (*)(BenchRunner&);

struct BenchUnit {
  std::string name;
  BenchUnitFn fn;
};

// Units registered in this binary, sorted by name.
std::vector<BenchUnit> RegisteredUnits();

struct UnitRegistrar {
  UnitRegistrar(const char* name, BenchUnitFn fn);
};

// --- Reporting --------------------------------------------------------------

// Effective worker-thread count for parallel bench cases: the --threads
// flag (via SetBenchThreads) overrides COREKIT_BENCH_THREADS, which
// defaults to the hardware concurrency.  Never returns 0, so the value
// can be handed straight to ThreadPool / CoreEngineOptions.
std::uint32_t BenchThreads();

// Records the --threads override (0 restores the env/hardware default).
// BenchMain calls this before running any unit.
void SetBenchThreads(std::uint32_t threads);

// {"cpu_count":..,"threads":..,"bench_scale":..,"bench_budget":..,
//  "git_sha":..,"build_type":..,"datasets_filter":..} — the knobs that
// make two BENCH files comparable (bench_diff prints both sides'
// environments).
Json CaptureEnvironmentJson();

// Process-wide peak resident set size in bytes (0 where unsupported).
std::uint64_t PeakRssBytes();

// Assembles the schema-versioned document.  When `previous` is a report
// for the same suite and schema version, its cases are carried over and
// overwritten by name — so running several standalone binaries with the
// same --out accumulates one suite file.
Json BenchReportJson(const std::string& suite_label,
                     const std::deque<CaseResult>& results,
                     const Json* previous);

// Shared entry point: parses --suite/--out/--only/--repeats/--warmup,
// runs the registered units, writes the suite JSON.  Returns the process
// exit code.
int BenchMain(int argc, char** argv);

// {base} plus "smoke" for the small stand-ins (AP, G): the per-dataset
// tagging rule the paper harnesses share, keeping the CI smoke suite
// fast and its case set stable.
std::vector<std::string> SuitesPlusSmoke(const char* base,
                                         const std::string& dataset);

}  // namespace corekit::bench

// Registers `fn` as the body of bench unit `ident`.  Every unit is
// linked into both its standalone binary and the unified bench_runner.
#define COREKIT_BENCH_UNIT(ident, fn)          \
  static const ::corekit::bench::UnitRegistrar \
      corekit_bench_unit_registrar_##ident(#ident, (fn))

// Expands to main() in standalone per-binary builds (compiled with
// -DCOREKIT_BENCH_STANDALONE); expands to nothing inside bench_runner,
// which provides its own main.
#ifdef COREKIT_BENCH_STANDALONE
#define COREKIT_BENCH_MAIN()                        \
  int main(int argc, char** argv) {                 \
    return ::corekit::bench::BenchMain(argc, argv); \
  }
#else
#define COREKIT_BENCH_MAIN()
#endif
